"""Tour of the spin-qubit hardware model: Table I, Fig. 1 physics, protocols.

Run with ``python examples/spin_device_tour.py``.
"""

import numpy as np

from repro.hardware import (
    TABLE1_DURATION_D0,
    TABLE1_DURATION_D1,
    TABLE1_FIDELITY,
    crot_regime_pair,
    eigenenergies_vs_detuning,
    spin_qubit_target,
    swap_regime_pair,
)


def main() -> None:
    print("Table I — native gate set of the semiconducting spin-qubit platform")
    print(f"{'gate':<8} {'fidelity':>9} {'D0 [ns]':>9} {'D1 [ns]':>9}")
    for gate in ("su2", "cz", "cz_d", "crot", "swap_d", "swap_c"):
        print(
            f"{gate:<8} {TABLE1_FIDELITY[gate]:>9.3f} "
            f"{TABLE1_DURATION_D0[gate]:>9.0f} {TABLE1_DURATION_D1[gate]:>9.0f}"
        )

    target = spin_qubit_target(4, "D0")
    print(f"\nTarget '{target.name}': {target.num_qubits} qubits on a chain, "
          f"T1 = {target.t1:.0f} ns, T2 = {target.t2:.0f} ns")

    print("\nFig. 1a — swap regime (J >> dEz): eigenenergies vs detuning")
    swap_pair = swap_regime_pair()
    sweep = eigenenergies_vs_detuning(swap_pair, np.linspace(0, 80, 5))
    for i, detuning in enumerate(sweep["detuning"]):
        energies = ", ".join(f"{sweep[f'E{k}'][i]:+.3f}" for k in range(4))
        print(f"  eps = {detuning:5.1f} GHz : {energies}")

    print("\nFig. 1b — CROT/CPHASE regime (dEz >> J): eigenenergies vs detuning")
    crot_pair = crot_regime_pair()
    sweep = eigenenergies_vs_detuning(crot_pair, np.linspace(0, 90, 5))
    for i, detuning in enumerate(sweep["detuning"]):
        energies = ", ".join(f"{sweep[f'E{k}'][i]:+.3f}" for k in range(4))
        print(f"  eps = {detuning:5.1f} GHz : {energies}")

    print("\nProtocol-level gate durations derived from the physics model:")
    print(f"  swap   (J = {swap_pair.exchange(80.0):.3f} GHz)      : "
          f"{swap_pair.swap_gate_duration(80.0):7.1f} ns")
    print(f"  cphase (J = {crot_pair.exchange(60.0):.3f} GHz)      : "
          f"{crot_pair.cphase_gate_duration(60.0):7.1f} ns")
    print(f"  crot   (Rabi = 0.76 MHz)         : "
          f"{crot_pair.crot_gate_duration(0.00076):7.1f} ns")
    print("\nThe ordering (swap fastest, CROT slowest) matches Table I.")


if __name__ == "__main__":
    main()
