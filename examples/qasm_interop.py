"""QASM interop tour: load a bundled benchmark, adapt it, export it.

Run with ``python examples/qasm_interop.py``.
"""

import repro
from repro.interop import circuit_to_qasm, load_suite, qasm_to_circuit


def main() -> None:
    # The bundled suite: paper-style 3-8 qubit OpenQASM benchmarks.
    print(f"{len(repro.suite_names())} bundled benchmarks:")
    for entry in load_suite():
        meta = entry.metadata()
        print(
            f"  {entry.name:<14} {meta['qubits']}q  depth {meta['depth']:>3}  "
            f"{meta['two_qubit_gates']:>3} two-qubit gates  — {entry.description}"
        )

    # Pick one, adapt it to the spin-qubit device with the paper's method.
    entry = load_suite(["teleport_n3"])[0]
    circuit = entry.circuit()
    target = repro.spin_qubit_target(circuit.num_qubits, durations="D0")
    result = repro.compile(circuit, target, technique="sat_p")

    print(f"\nAdapted {entry.name} with sat_p:")
    print(f"  gates     {result.cost.gate_count}")
    print(f"  2q gates  {result.cost.two_qubit_gate_count}")
    print(f"  duration  {result.cost.duration:.0f} ns")
    print(f"  fidelity  {result.cost.gate_fidelity_product:.4f}")

    # Export the adapted circuit back to OpenQASM 2.0.  Spin-native gates
    # (crot, cz_d, ...) are emitted with explicit gate definitions, so the
    # file loads in any QASM consumer.
    text = circuit_to_qasm(result.adapted_circuit)
    print("\nAdapted circuit as OpenQASM 2.0:")
    print(text)

    # And it round-trips: re-importing reproduces the same gate sequence.
    back = qasm_to_circuit(text)
    print(f"re-imported: {len(back.instructions)} instructions "
          f"on {back.num_qubits} qubits")

    # repro.compile also ingests QASM directly - source strings or .qasm
    # paths - so external circuit files are one call away:
    again = repro.compile(entry.qasm, target, technique="direct")
    print(f"compiled straight from QASM source: "
          f"{again.cost.gate_count} gates via {again.technique}")


if __name__ == "__main__":
    main()
