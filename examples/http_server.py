"""Serving tour: boot the HTTP gateway, compile through the client.

Run with ``python examples/http_server.py``.  Everything happens over a
real loopback HTTP socket — the same wire a remote client would use; in
production you would run ``python -m repro.server --port 8000`` instead
and point :class:`repro.server.ReproClient` at it from another machine.
"""

from repro.server import ReproClient, build_server


def main() -> None:
    # Boot the gateway on a free port (background thread; `python -m
    # repro.server` is the production entry point).
    server = build_server(workers=2).start_background()
    print(f"serving on {server.url}")

    client = ReproClient(server.url)
    print(f"health: {client.healthz()['status']}")

    # The server bundles the interop benchmark suite; list a few.
    benchmarks = client.suite()
    print(f"\n{len(benchmarks)} bundled benchmarks, e.g.:")
    for entry in benchmarks[:4]:
        print(f"  {entry['name']:<14} {entry['qubits']}q  "
              f"{entry['gates']} gates — {entry['description']}")

    # Compile one of them server-side and read back the cost report.
    # Technique options travel over the wire too (the round cap keeps the
    # OMT solver snappy for a demo).
    result = client.compile_suite("teleport_n3", technique="sat_p",
                                  max_improvement_rounds=60)
    print("\nAdapted teleport_n3 with sat_p over HTTP:")
    print(f"  gates     {result.cost.gate_count}")
    print(f"  2q gates  {result.cost.two_qubit_gate_count}")
    print(f"  duration  {result.cost.duration:.0f} ns")
    print(f"  fidelity  {result.cost.gate_fidelity_product:.4f}")
    print(f"  pipeline  {1e3 * result.report.total_seconds:.1f} ms "
          f"(cache_hit={result.report.cache_hit})")

    # Race techniques server-side; the winner's report lists every
    # contender with its score.
    best = client.compile_portfolio(
        'OPENQASM 2.0; include "qelib1.inc"; '
        "qreg q[3]; h q[0]; cx q[0],q[1]; cx q[1],q[2];",
        techniques=["direct", "kak_cz", "sat_p"],
    )
    print(f"\nportfolio winner: {best.technique}")
    for contender in best.report.contenders:
        marker = "*" if contender.get("winner") else " "
        print(f" {marker} {contender['technique']:<10} "
              f"score={contender.get('score', float('nan')):.4f}")

    # Request telemetry accumulates in /metrics.
    requests = client.metrics()["requests"]
    print("\nrequest latencies so far:")
    for route, stats in sorted(requests.items()):
        print(f"  {route:<32} n={stats['count']:<3} "
              f"p50={stats['p50_ms_lifetime']:.1f}ms "
              f"p95={stats['p95_ms_lifetime']:.1f}ms")

    server.stop(drain=True)
    print("\nserver drained and stopped")


if __name__ == "__main__":
    main()
