"""Golden-quality tour: baselines, the regression gate, rebaselining.

Run with ``python examples/golden_check.py``.  The perf harness tracks
*speed*; the golden harness tracks the quantity the paper optimizes —
*solution quality*.  Every benchmark × technique cell has a checked-in
golden record (gates, 2q count, depth, duration, fidelity, combined
cost) in ``benchmarks/golden/baseline.json``, and
``python -m repro.golden`` fails CI when any metric slips past its
tolerance.  This tour builds a private baseline in a temp directory so
it is self-contained, then demonstrates a deliberate regression
tripping the gate.
"""

import os
import tempfile

from repro.golden import (
    GoldenBaseline,
    default_baseline_path,
    quality_summary,
    run_golden,
)

#: Three cheap cells across three techniques — enough to see verdicts.
CELLS = ["toffoli_n3:direct", "wstate_n3:template_f", "ghz_n5:kak_cz"]


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        baseline_path = os.path.join(scratch, "baseline.json")
        report_path = os.path.join(scratch, "BENCH_quality.json")

        # 1. Adopt the current tree as golden (what --rebaseline does).
        report = run_golden(baseline_path=baseline_path, only=CELLS,
                            rebaseline=True, note="example seed")
        print(f"rebaselined {len(report.records)} cells -> "
              f"{os.path.basename(baseline_path)}")

        # 2. A clean re-run compares all-within: the gate passes.
        report = run_golden(baseline_path=baseline_path, only=CELLS,
                            output=report_path)
        print("\nunmodified tree:")
        print(report.table())
        print(report.summary_line(), f"(exit {report.exit_code})")

        # 3. A deliberate quality mutation — disabling single-qubit
        #    merging — regresses gate counts and fails the gate, which
        #    is exactly how CI proves the harness has teeth.
        report = run_golden(baseline_path=baseline_path, only=CELLS,
                            extra_options={"merge_single_qubit_gates": False})
        print("\nwith merge_single_qubit_gates=false:")
        print(report.table())
        print(report.summary_line(), f"(exit {report.exit_code})")

        # 4. The last run also feeds the HTTP gateway's GET /metrics.
        quality = quality_summary()
        worst = quality["worst_regression"]
        print(f"\n/metrics quality block: failed={quality['failed']}, "
              f"worst: {worst['benchmark']}:{worst['technique']} "
              f"{worst['metric']} {worst['baseline']} -> {worst['actual']}")

    # The real gate runs against the checked-in golden file:
    path = default_baseline_path()
    if os.path.exists(path):
        baseline = GoldenBaseline.load(path)
        timeouts = baseline.expected_timeout_cells()
        print(f"\nchecked-in baseline: {len(baseline.benchmarks())} "
              f"benchmarks x {len(baseline.techniques())} techniques, "
              f"{len(timeouts)} expected_timeout cells")


if __name__ == "__main__":
    main()
