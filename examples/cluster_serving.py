"""Multi-node serving tour: auth, rate limits, event streams, peer fetch.

Run with ``python examples/cluster_serving.py``.  Two gateways share one
*replicated* store root (each with a private tier plus HTTP peer fetch),
API keys gate every ``/v1`` route, and job lifecycles stream back over
server-sent events — the same pieces ``python -m repro.server --shards N
--store replicated:DIR --auth-keys keys.json`` wires up in production.
"""

import json
import tempfile

from repro.server import (
    AuthenticationError,
    RateLimitedError,
    ReproClient,
    build_server,
)

QASM = ('OPENQASM 2.0; include "qelib1.inc"; '
        "qreg q[3]; h q[0]; cx q[0],q[1]; cx q[1],q[2];")

KEYS = {"keys": [
    {"key": "sk-demo", "name": "demo", "priority": 8,
     "rate": 50, "burst": 100},
    {"key": "sk-trial", "name": "trial", "priority": 1,
     "rate": 1.0, "burst": 1},
]}


def main() -> None:
    store_root = tempfile.mkdtemp(prefix="repro-cluster-")
    auth = json.dumps(KEYS)

    # One node first; a second joins later and warm-starts from its
    # peer.  Static peer lists here — a ShardRouter publishes peers.json
    # with live ports instead.
    node_a = build_server(workers=2, job_prefix="s0-", auth=auth,
                          store=f"replicated:{store_root}").start_background()
    print(f"node A on {node_a.url}  (store {store_root}/s0)")

    # /v1 routes demand a key; health stays open for probes.
    try:
        ReproClient(node_a.url, retries=0, api_key="").suite()
    except AuthenticationError as error:
        print(f"\nno key -> HTTP {error.status}: {error}")

    # An authenticated compile, following the job over its SSE stream.
    client_a = ReproClient(node_a.url, api_key="sk-demo")
    job = client_a.submit(QASM, technique="sat_p",
                          max_improvement_rounds=60)
    print(f"\nsubmitted {job.job_id}; streaming events:")
    for event, payload in job.stream(timeout=120):
        print(f"  event: {event:<9} status={payload.get('status')}")
    result = job.wait(timeout=60)
    print(f"adapted: {result.cost.gate_count} gates, "
          f"fidelity {result.cost.gate_fidelity_product:.4f}")

    # Scale out: node B joins with its own (empty) store tier and node A
    # as a peer.  Its first compile of the same circuit misses locally,
    # peer-fetches node A's entry, adopts it, and returns warm.  (Both
    # demo nodes share this process's L1 memory cache; real deployments
    # run one process per node.  Clear it so node B has to go through
    # its own store tier.)
    from repro.api import clear_compilation_cache

    node_b = build_server(
        workers=2, job_prefix="s1-", auth=auth,
        store=f"replicated:{store_root}?peers={node_a.url}",
    ).start_background()
    print(f"\nnode B joined on {node_b.url}  (store {store_root}/s1)")
    clear_compilation_cache()
    client_b = ReproClient(node_b.url, api_key="sk-demo")
    warm = client_b.compile(QASM, technique="sat_p",
                            max_improvement_rounds=60)
    stats = client_b.metrics()["service"]["l2"]
    print(f"node B served it via peer fetch: cost match "
          f"{warm.cost == result.cost}, peer_hits={stats['peer_hits']}")

    # The trial key's bucket holds one token: the second call is 429
    # with a Retry-After hint (the client retries it automatically when
    # retries are enabled).
    trial = ReproClient(node_b.url, retries=0, api_key="sk-trial")
    trial.suite()
    try:
        trial.suite()
    except RateLimitedError as error:
        print(f"\ntrial key throttled -> HTTP {error.status}, "
              f"retry after {error.payload['retry_after']:.2f}s")

    # Keyed decisions land on the auth metrics.
    auth_metrics = client_a.metrics()["auth"]
    print(f"\nauth on node A: enabled={auth_metrics['enabled']}, "
          f"keys={auth_metrics['keys']}")

    node_b.stop(drain=True)
    node_a.stop(drain=True)
    print("drained both nodes.")


if __name__ == "__main__":
    main()
