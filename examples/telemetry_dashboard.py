"""Telemetry tour: metrics registry, Prometheus scrape, console dashboard.

Run with ``python examples/telemetry_dashboard.py``.  Boots the gateway
in-process, compiles a couple of circuits to generate traffic, then
shows the three faces of the same metric registry:

1. the JSON ``/metrics`` document (lifetime + windowed percentiles),
2. the Prometheus text exposition at ``/metrics?format=prometheus``,
3. one frame of the ``python -m repro.telemetry`` console dashboard.

Against a live deployment you would run the dashboard directly::

    python -m repro.telemetry --url http://localhost:8000 --interval 2
"""

import urllib.request

from repro.server import ReproClient, build_server
from repro.telemetry.dashboard import fetch_metrics, render_dashboard
from repro.telemetry.prometheus import validate_prometheus


def main() -> None:
    server = build_server(workers=2).start_background()
    print(f"serving on {server.url}")

    # Generate a little traffic: two techniques, one repeat (cache hit).
    client = ReproClient(server.url)
    qasm = ('OPENQASM 2.0; include "qelib1.inc"; '
            "qreg q[3]; h q[0]; cx q[0],q[1]; cx q[1],q[2];")
    for technique in ("direct", "kak_cz", "direct"):
        result = client.compile(qasm, technique=technique)
        print(f"  compiled with {technique:<8} -> "
              f"{result.cost.gate_count} gates "
              f"(cache_hit={result.report.cache_hit})")

    # 1. JSON: windowed request percentiles next to lifetime counters.
    requests = client.metrics()["requests"]
    print("\nper-route request latency (JSON /metrics):")
    for route, stats in sorted(requests.items()):
        one_minute = stats["windows"]["1m"]
        print(f"  {route:<28} n={stats['count']:<3} "
              f"lifetime p95={stats['p95_ms_lifetime']:.1f}ms "
              f"1m p95={one_minute['p95_ms']:.1f}ms")

    # 2. Prometheus text format, checked by the in-repo scraper.
    with urllib.request.urlopen(server.url + "/metrics?format=prometheus",
                                timeout=10) as response:
        document = response.read().decode("utf-8")
    families = validate_prometheus(document)
    print(f"\nPrometheus scrape: {len(families)} conformant families, e.g.")
    for line in document.splitlines():
        if line.startswith("repro_http_requests_total{"):
            print(f"  {line}")

    # 3. One dashboard frame (the CLI repaints this continuously).
    print("\n" + render_dashboard(fetch_metrics(server.url)))

    server.stop(drain=True)
    print("server drained and stopped")


if __name__ == "__main__":
    main()
