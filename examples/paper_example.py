"""The Fig. 4 / Eq. (11) worked example: adapting an IBM-basis circuit.

The script builds a three-qubit circuit with the block structure of the
paper's worked example, shows the per-block substitution candidates with
their duration deltas (the Eq. (11) terms), and compares the adaptations
produced by the three SMT objectives against the baselines.

Run with ``python examples/paper_example.py``.
"""

import repro
from repro.circuits import QuantumCircuit
from repro.core import evaluate_rules, preprocess, standard_rules
from repro.hardware import spin_qubit_target


def example_circuit() -> QuantumCircuit:
    """Three two-qubit blocks mixing CNOTs and SWAPs (Fig. 4 structure)."""
    circuit = QuantumCircuit(3, name="paper_example")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(0, 1)
    circuit.rz(0.5, 1)
    circuit.cx(1, 2)
    circuit.swap(1, 2)
    circuit.cx(0, 1)
    circuit.h(2)
    return circuit


def main() -> None:
    circuit = example_circuit()
    # The worked example excludes the diabatic CZ realization.
    target = spin_qubit_target(3, "D0", include_diabatic_cz=False)

    preprocessed = preprocess(circuit, target)
    substitutions = evaluate_rules(preprocessed, standard_rules())

    print("Blocks and reference costs (direct CZ translation):")
    for block in preprocessed.blocks:
        print(
            f"  block {block.index}: qubits={block.block.qubits}, "
            f"gates={block.block.gate_names()}, "
            f"reference duration={block.reference_duration:.0f} ns"
        )

    print("\nSubstitution candidates (the Eq. 11 duration terms):")
    for substitution in substitutions:
        print(
            f"  block {substitution.block_index}: {substitution.rule_name:7s} "
            f"duration delta {substitution.duration_delta:+7.0f} ns, "
            f"log-fidelity delta {substitution.log_fidelity_delta:+.5f}"
        )

    techniques = [
        "direct",
        "kak_cz",
        "template_f",
        "template_r",
        "sat_f",
        "sat_r",
        "sat_p",
    ]
    print("\n{:<18} {:>10} {:>12} {:>12}".format("technique", "fidelity", "duration", "idle time"))
    for technique in techniques:
        result = repro.compile(circuit, target, technique=technique)
        print(
            f"{result.technique:<18} {result.cost.gate_fidelity_product:>10.5f} "
            f"{result.cost.duration:>10.0f}ns {result.cost.total_idle_time:>10.0f}ns"
        )


if __name__ == "__main__":
    main()
