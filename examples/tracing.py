"""Observability tour: trace a compilation and read the trace back.

Run with ``python examples/tracing.py``.  Tracing is opt-in: pass
``trace="file.jsonl"`` to one :func:`repro.compile` call, hand a path to
the service or server, or set ``REPRO_TRACE`` to cover a whole process.
When nothing enables it, every hook is a single global-flag check.
"""

import os
import tempfile

import repro
from repro.hardware import spin_qubit_target
from repro.trace import load_events, pass_totals, summarize, validate_trace
from repro.workloads import ghz_circuit


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(prefix="repro_trace_"),
                        "compile.jsonl")

    # One traced compilation: spans from the facade, every pipeline pass,
    # and sampled solver internals all land in one JSONL file.
    circuit = ghz_circuit(3)
    target = spin_qubit_target(3, "D0")
    result = repro.compile(circuit, target, "sat_p", use_cache=False,
                           trace=path)
    print(f"compiled {circuit.name} with sat_p; trace at {path}")

    events = load_events(path)
    validate_trace(events)  # schema + nesting + monotonic timestamps
    print(f"{len(events)} events, all valid")

    # The same aggregation `python -m repro.trace <file>` prints.
    summary = summarize(events)
    print(f"layers: {', '.join(summary['layers'])}")

    print("\nper-pass wall time (from the trace):")
    report_seconds = result.report.stage_seconds()
    for name, seconds in sorted(pass_totals(summary).items(),
                                key=lambda item: -item[1]):
        print(f"  {name:<16} {1e3 * seconds:8.3f} ms "
              f"(report says {1e3 * report_seconds[name]:8.3f} ms)")

    print("\nsampled solver events:")
    for name, rollup in summary["solver"].items():
        extras = ", ".join(f"{key}={value}" for key, value in rollup.items()
                           if key != "count")
        print(f"  {name:<16} x{rollup['count']}  ({extras})")

    print("\nslowest spans:")
    for entry in summary["slowest"][:5]:
        print(f"  {entry['duration_ms']:8.3f} ms  "
              f"{entry['layer']}:{entry['name']}")

    print(f"\ninspect offline with: python -m repro.trace {path}")


if __name__ == "__main__":
    main()
