"""Noisy evaluation of adaptation techniques (a miniature Figure 5-7 run).

Adapts a quantum-volume circuit and a random template circuit with every
registered technique through :func:`repro.compile`, then simulates each
adapted circuit with the depolarizing + thermal-relaxation noise model and
reports fidelity, idle time and Hellinger fidelity relative to direct
basis translation.

Run with ``python examples/noisy_evaluation.py``.
"""

import repro
from repro.api import PAPER_TECHNIQUES
from repro.hardware import spin_qubit_target
from repro.simulator import DensityMatrixSimulator
from repro.workloads import quantum_volume_circuit, random_template_circuit


def evaluate(circuit, durations="D0"):
    target = spin_qubit_target(max(2, circuit.num_qubits), durations)
    simulator = DensityMatrixSimulator(target)
    results = {}
    reference = None
    for technique in PAPER_TECHNIQUES:
        adaptation = repro.compile(circuit, target, technique=technique)
        if technique == "direct":
            reference = adaptation.adapted_circuit
        simulation = simulator.run(adaptation.adapted_circuit, ideal_circuit=reference)
        results[technique] = (adaptation, simulation)
    return results


def report(title, results):
    print(f"\n=== {title} ===")
    print(f"{'technique':<12} {'fid. product':>12} {'idle [ns]':>10} {'Hellinger':>10} {'time [ms]':>10}")
    for name, (adaptation, simulation) in results.items():
        print(
            f"{name:<12} {adaptation.cost.gate_fidelity_product:>12.5f} "
            f"{adaptation.cost.total_idle_time:>10.0f} {simulation.hellinger_fidelity:>10.4f} "
            f"{1e3 * adaptation.report.total_seconds:>10.1f}"
        )
    best = max(results, key=lambda name: results[name][1].hellinger_fidelity)
    print(f"best Hellinger fidelity: {best}")


def main() -> None:
    report("quantum volume, 3 qubits", evaluate(quantum_volume_circuit(3, seed=1)))
    report("random template circuit, 4 qubits, depth 30",
           evaluate(random_template_circuit(4, 30, seed=1)))


if __name__ == "__main__":
    main()
