"""Noisy evaluation of adaptation techniques (a miniature Figure 5-7 run).

Adapts a quantum-volume circuit and a random template circuit with every
technique, then simulates each adapted circuit with the depolarizing +
thermal-relaxation noise model and reports fidelity, idle time and Hellinger
fidelity relative to direct basis translation.

Run with ``python examples/noisy_evaluation.py``.
"""

from repro.core import (
    DirectTranslationAdapter,
    KakAdapter,
    SatAdapter,
    TemplateOptimizationAdapter,
)
from repro.hardware import spin_qubit_target
from repro.simulator import DensityMatrixSimulator
from repro.workloads import quantum_volume_circuit, random_template_circuit


def evaluate(circuit, durations="D0"):
    target = spin_qubit_target(max(2, circuit.num_qubits), durations)
    simulator = DensityMatrixSimulator(target)
    techniques = [
        ("direct", DirectTranslationAdapter()),
        ("kak", KakAdapter("cz")),
        ("kak_czd", KakAdapter("cz_d")),
        ("template_f", TemplateOptimizationAdapter("fidelity")),
        ("template_r", TemplateOptimizationAdapter("idle")),
        ("sat_f", SatAdapter(objective="fidelity")),
        ("sat_r", SatAdapter(objective="idle")),
        ("sat_p", SatAdapter(objective="combined")),
    ]
    results = {}
    reference = None
    for name, adapter in techniques:
        adaptation = adapter.adapt(circuit, target)
        if name == "direct":
            reference = adaptation.adapted_circuit
        simulation = simulator.run(adaptation.adapted_circuit, ideal_circuit=reference)
        results[name] = (adaptation, simulation)
    return results


def report(title, results):
    print(f"\n=== {title} ===")
    print(f"{'technique':<12} {'fid. product':>12} {'idle [ns]':>10} {'Hellinger':>10}")
    baseline_idle = results["direct"][0].cost.total_idle_time
    for name, (adaptation, simulation) in results.items():
        print(
            f"{name:<12} {adaptation.cost.gate_fidelity_product:>12.5f} "
            f"{adaptation.cost.total_idle_time:>10.0f} {simulation.hellinger_fidelity:>10.4f}"
        )
    best = max(results, key=lambda name: results[name][1].hellinger_fidelity)
    print(f"best Hellinger fidelity: {best}")


def main() -> None:
    report("quantum volume, 3 qubits", evaluate(quantum_volume_circuit(3, seed=1)))
    report("random template circuit, 4 qubits, depth 30",
           evaluate(random_template_circuit(4, 30, seed=1)))


if __name__ == "__main__":
    main()
