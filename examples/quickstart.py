"""Quickstart: adapt a small circuit to the spin-qubit platform.

Run with ``python examples/quickstart.py``.
"""

import repro


def main() -> None:
    # A 3-qubit circuit written in the IBM (CNOT/SWAP) basis.
    circuit = repro.QuantumCircuit(3, name="quickstart")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(1, 2)
    circuit.cx(0, 1)
    circuit.rz(0.25, 2)
    print("Input circuit:")
    print(circuit.to_text())

    # The target: the Table I spin-qubit device (D0 timings).
    target = repro.spin_qubit_target(num_qubits=3, durations="D0")

    # Baseline: direct basis translation (every foreign gate becomes CZ + 1q).
    direct = repro.compile(circuit, target, technique="direct")
    # The paper's method: SMT-optimized adaptation with the combined objective.
    sat = repro.compile(circuit, target, technique="sat_p", verify=True)

    print("\nAdapted circuit (SMT, combined objective):")
    print(sat.adapted_circuit.to_text())
    print("\nChosen substitutions:")
    for substitution in sat.chosen_substitutions:
        print(f"  {substitution}")

    print("\n{:<28} {:>12} {:>12}".format("metric", "direct", "sat"))
    rows = [
        ("gate fidelity product", direct.cost.gate_fidelity_product, sat.cost.gate_fidelity_product),
        ("circuit duration [ns]", direct.cost.duration, sat.cost.duration),
        ("total qubit idle time [ns]", direct.cost.total_idle_time, sat.cost.total_idle_time),
        ("two-qubit gate count", direct.cost.two_qubit_gate_count, sat.cost.two_qubit_gate_count),
    ]
    for name, direct_value, sat_value in rows:
        print(f"{name:<28} {direct_value:>12.4f} {sat_value:>12.4f}")

    print("\nPer-stage compilation report (sat_p):")
    print(sat.report.summary())


if __name__ == "__main__":
    main()
