"""Resilience tour: deadlines, degradation ladders and cancellation.

Run with ``python examples/deadlines.py``.  The SAT/SMT techniques are
exact solvers — worst-case exponential — so production callers bound
them: ``compile(timeout=...)`` raises a typed error at the next solver
checkpoint, and ``on_deadline="degrade"`` walks a fallback ladder of
cheaper techniques instead of failing.
"""

import repro
from repro.resilience import DEFAULT_LADDERS, CompileDeadlineExceeded
from repro.workloads import ghz_circuit


def main() -> None:
    circuit = ghz_circuit(4)
    target = repro.spin_qubit_target(4, "D0")

    # A generous deadline: the compile simply succeeds within budget.
    result = repro.compile(circuit, target, "sat_p", timeout=300.0,
                           use_cache=False)
    print(f"sat_p within budget: fidelity "
          f"{result.cost.gate_fidelity_product:.4f}, "
          f"{1e3 * result.report.total_seconds:.1f} ms")

    # An impossible deadline with the default policy raises a typed
    # error naming the checkpoint that observed it.
    try:
        repro.compile(circuit, target, "sat_p", timeout=0.0, use_cache=False)
    except CompileDeadlineExceeded as error:
        print(f"\ntimeout=0 raised {type(error).__name__} "
              f"at checkpoint {error.checkpoint!r} "
              f"after {error.elapsed:.3f}s")

    # on_deadline="degrade" walks the technique's fallback ladder
    # instead: each rung gets a short grace budget, and the first one
    # that finishes wins.  The report records the full story.
    print(f"\ndefault ladder for sat_p: "
          f"{' -> '.join(DEFAULT_LADDERS['sat_p'])}")
    result = repro.compile(circuit, target, "sat_p", timeout=0.0,
                           on_deadline="degrade", use_cache=False)
    print(f"degraded compile came back as {result.technique!r} "
          f"(requested {result.report.degraded_from!r})")
    for event in result.report.deadline_events:
        print(f"  deadline event: {event['reason']} at "
              f"{event.get('checkpoint', '?')} after "
              f"{event.get('elapsed_seconds', 0.0):.3f}s")

    # The same budget flows through the async service: submit with a
    # timeout, and cancel() interrupts even a *running* compile at the
    # next solver checkpoint.
    with repro.CompilationService(workers=2) as service:
        handle = service.submit(circuit, target, "sat_p", use_cache=False,
                                timeout=0.0, on_deadline="degrade",
                                fallback="direct")
        result = handle.result(timeout=60)
        print(f"\nservice job degraded to {result.technique!r}; "
              f"counters: degraded="
              f"{service.statistics()['degraded']}")


if __name__ == "__main__":
    main()
