"""Figure 6: decrease in qubit idle time vs the direct-translation baseline."""

import pytest

import repro
from benchmarks._common import evaluation_sweep, techniques, write_table
from repro.hardware import spin_qubit_target
from repro.workloads import random_template_circuit

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("durations", ["D0", "D1"])
def test_fig6_idle_time_decrease(benchmark, durations):
    """Regenerate the Fig. 6 series: relative idle-time decrease per technique."""
    circuit = random_template_circuit(3, 20, seed=0)
    target = spin_qubit_target(3, durations)
    benchmark(repro.compile, circuit, target, "sat_r", use_cache=False)

    sweep = evaluation_sweep(durations)
    technique_names = techniques()
    rows = []
    for workload, per_technique in sweep.items():
        baseline = per_technique["direct"].cost.total_idle_time
        row = [workload]
        for name in technique_names:
            if baseline > 0:
                decrease = (baseline - per_technique[name].cost.total_idle_time) / baseline
            else:
                decrease = 0.0
            row.append(f"{100 * decrease:+.1f}%")
        rows.append(row)
    table = write_table(f"fig6_idle_{durations}.txt", ["workload"] + technique_names, rows)
    print(f"\nFigure 6 — decrease in qubit idle time vs direct translation ({durations})\n" + table)

    # Qualitative shape: the SAT idle-time objective never increases the idle
    # time and achieves the best (or tied-best) reduction among all techniques
    # for the larger circuits.
    for workload, per_technique in sweep.items():
        baseline = per_technique["direct"].cost.total_idle_time
        sat_idle = per_technique["sat_r"].cost.total_idle_time
        assert sat_idle <= baseline + 1e-6
    # On the larger circuits the SAT idle objective beats (or ties) the
    # baselines that optimize locally or not at all; the KAK baselines are
    # excluded from the hard assertion because the SMT model's block-level
    # schedule is an approximation of the measured instruction-level one.
    large = [w for w in sweep if w.endswith("x40") or w.startswith("qv-4")]
    for workload in large:
        per_technique = sweep[workload]
        sat_idle = per_technique["sat_r"].cost.total_idle_time
        for name in ("direct", "template_f", "template_r"):
            assert sat_idle <= per_technique[name].cost.total_idle_time + 1e-6
