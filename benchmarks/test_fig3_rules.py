"""Figure 3: the substitution rules are genuine equivalences with known costs."""

import math

from benchmarks._common import write_table
from repro.circuits import QuantumCircuit, allclose_up_to_global_phase, circuit_unitary
from repro.core import evaluate_rules, preprocess, standard_rules
from repro.hardware import spin_qubit_target


def _rule_catalogue():
    circuit = QuantumCircuit(2)
    circuit.cx(0, 1).swap(0, 1)
    target = spin_qubit_target(2, "D0")
    preprocessed = preprocess(circuit, target)
    return preprocessed, evaluate_rules(preprocessed, standard_rules())


def test_fig3_substitution_rules(benchmark):
    """Regenerate the rule catalogue with per-rule duration/fidelity deltas."""
    preprocessed, substitutions = benchmark(_rule_catalogue)
    rows = []
    for substitution in substitutions:
        rows.append(
            [
                substitution.rule_name,
                str(len(substitution.substituted_positions)),
                str(len(substitution.replacement)),
                f"{substitution.duration_delta:+.0f}",
                f"{substitution.log_fidelity_delta:+.5f}",
            ]
        )
    table = write_table(
        "fig3_rules.txt",
        ["rule", "gates_substituted", "gates_inserted", "delta_duration_ns", "delta_log_fidelity"],
        rows,
    )
    print("\nFigure 3 — substitution rule catalogue (CNOT+SWAP block, D0)\n" + table)

    # Every rule replacement implements the same unitary as the gates it replaces.
    block = preprocessed.blocks[0].block
    for substitution in substitutions:
        original = QuantumCircuit(2)
        for position in substitution.substituted_positions:
            instruction = block.instructions[position]
            original.append(instruction.gate, instruction.qubits)
        replacement = QuantumCircuit(2)
        for instruction in substitution.replacement:
            replacement.append(instruction.gate, instruction.qubits)
        assert allclose_up_to_global_phase(
            circuit_unitary(original), circuit_unitary(replacement), atol=1e-6
        ), substitution.rule_name
