"""Ablations called out in DESIGN.md: objective choice and rule-set content."""

import pytest

import repro
from benchmarks._common import write_table
from repro.core import standard_rules
from repro.hardware import spin_qubit_target
from repro.workloads import random_template_circuit

pytestmark = pytest.mark.slow


def test_ablation_objectives(benchmark):
    """SAT_F vs SAT_R vs SAT_P on the same workload (objective trade-off)."""
    circuit = random_template_circuit(4, 30, seed=1)
    target = spin_qubit_target(4, "D0")

    def run(objective):
        return repro.compile(circuit, target, f"sat_{objective}",
                             use_cache=False)

    fidelity_result = benchmark(run, "fidelity")
    idle_result = run("idle")
    combined_result = run("combined")

    rows = []
    for name, result in (("sat_f", fidelity_result), ("sat_r", idle_result), ("sat_p", combined_result)):
        rows.append(
            [
                name,
                f"{result.cost.gate_fidelity_product:.5f}",
                f"{result.cost.total_idle_time:.0f}",
                f"{result.cost.duration:.0f}",
            ]
        )
    table = write_table(
        "ablation_objectives.txt",
        ["objective", "fidelity_product", "idle_time_ns", "duration_ns"],
        rows,
    )
    print("\nAblation — SMT objective choice\n" + table)

    # The fidelity objective wins on fidelity, the idle objective on idle time.
    assert fidelity_result.cost.gate_fidelity_product >= idle_result.cost.gate_fidelity_product - 1e-9
    assert idle_result.cost.total_idle_time <= fidelity_result.cost.total_idle_time + 1e-6


def test_ablation_rule_set(benchmark):
    """Dropping the KAK rule from the SMT rule set reduces (or keeps) quality."""
    circuit = random_template_circuit(3, 25, seed=2)
    target = spin_qubit_target(3, "D0")

    def run(include_kak):
        rules = standard_rules(include_kak=include_kak)
        return repro.compile(circuit, target, "sat_r", rules=rules)

    with_kak = benchmark(run, True)
    without_kak = run(False)
    rows = [
        ["with_kak", f"{with_kak.cost.total_idle_time:.0f}", f"{with_kak.cost.duration:.0f}"],
        ["without_kak", f"{without_kak.cost.total_idle_time:.0f}", f"{without_kak.cost.duration:.0f}"],
    ]
    table = write_table("ablation_rules.txt", ["rule_set", "idle_time_ns", "duration_ns"], rows)
    print("\nAblation — substitution rule set (idle objective)\n" + table)

    # A strictly larger rule set can only help the (modelled) objective.
    assert with_kak.cost.duration <= without_kak.cost.duration + 300.0
