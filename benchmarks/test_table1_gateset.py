"""Table I: investigated gate durations and fidelities of the spin platform."""

from benchmarks._common import write_table
from repro.hardware import TABLE1_DURATION_D0, TABLE1_DURATION_D1, TABLE1_FIDELITY, spin_qubit_target


def test_table1_gate_set(benchmark):
    """Regenerate Table I from the target construction."""
    target_d0 = benchmark(spin_qubit_target, 4, "D0")
    target_d1 = spin_qubit_target(4, "D1")

    gates = ["su2", "cz", "cz_d", "crot", "swap_d", "swap_c"]
    rows = []
    for gate in gates:
        props_d0 = (
            target_d0.single_qubit_gates if gate == "su2" else target_d0.two_qubit_gates[gate]
        )
        props_d1 = (
            target_d1.single_qubit_gates if gate == "su2" else target_d1.two_qubit_gates[gate]
        )
        rows.append([gate, f"{props_d0.fidelity:.3f}", f"{props_d0.duration:.0f}", f"{props_d1.duration:.0f}"])
        assert props_d0.fidelity == TABLE1_FIDELITY[gate]
        assert props_d0.duration == TABLE1_DURATION_D0[gate]
        assert props_d1.duration == TABLE1_DURATION_D1[gate]
    table = write_table(
        "table1.txt", ["gate", "fidelity", "duration_D0_ns", "duration_D1_ns"], rows
    )
    print("\nTable I — gate durations and fidelities\n" + table)
