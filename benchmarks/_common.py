"""Shared helpers for the per-figure benchmark harnesses.

The evaluation sweep (all adaptation techniques over the workload suite) is
computed once per pytest session through :func:`repro.compile_many` and
cached, so the Figure 5, 6 and 7 benchmarks report different views of the
same experiment without repeating the adaptation work.  Every harness
writes its table to ``benchmarks/results/`` and prints it, so the
regenerated rows/series can be compared against the paper directly.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List

import repro
from repro.api import PAPER_TECHNIQUES
from repro.hardware import spin_qubit_target
from repro.simulator import DensityMatrixSimulator
from repro.workloads import quantum_volume_circuit, random_template_circuit

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


#: Workloads used by the Figure 5-7 harnesses.  The paper sweeps up to
#: 4 qubits and depth 160; the default harness uses a scaled-down grid so the
#: full benchmark suite stays laptop-runnable in minutes (set the environment
#: variable ``REPRO_FULL_SWEEP=1`` for the full-depth grid).
def workload_grid():
    full = os.environ.get("REPRO_FULL_SWEEP", "0") == "1"
    grid = [
        ("qv-2", quantum_volume_circuit(2, seed=0)),
        ("qv-3", quantum_volume_circuit(3, seed=0)),
        ("qv-4", quantum_volume_circuit(4, seed=0)),
        ("random-3x20", random_template_circuit(3, 20, seed=0)),
        ("random-4x40", random_template_circuit(4, 40, seed=0)),
    ]
    if full:
        grid += [
            ("random-4x80", random_template_circuit(4, 80, seed=0)),
            ("random-4x160", random_template_circuit(4, 160, seed=0)),
        ]
    return grid


def techniques() -> List[str]:
    """The adaptation technique registry keys compared in Section V."""
    return list(PAPER_TECHNIQUES)


@lru_cache(maxsize=None)
def evaluation_sweep(durations: str = "D0") -> Dict[str, Dict[str, object]]:
    """Adapt every workload with every technique; cache per duration set.

    Returns ``{workload: {technique: AdaptationResult}}``.  Every result
    carries its per-stage :class:`repro.pipeline.CompilationReport`.
    """
    results: Dict[str, Dict[str, object]] = {}
    grid = workload_grid()
    for technique in techniques():
        per_workload = repro.compile_many(
            grid, technique=technique, durations=durations
        )
        for workload, result in per_workload.items():
            results.setdefault(workload, {})[technique] = result
    return results


@lru_cache(maxsize=None)
def hellinger_sweep(durations: str = "D0") -> Dict[str, Dict[str, float]]:
    """Noisy-simulation Hellinger fidelities for every workload/technique."""
    sweep = evaluation_sweep(durations)
    output: Dict[str, Dict[str, float]] = {}
    for workload, per_technique in sweep.items():
        circuits = {name: result.adapted_circuit for name, result in per_technique.items()}
        num_qubits = next(iter(circuits.values())).num_qubits
        target = spin_qubit_target(max(2, num_qubits), durations)
        simulator = DensityMatrixSimulator(target)
        reference = per_technique["direct"].adapted_circuit
        output[workload] = {
            name: simulator.run(circuit, ideal_circuit=reference).hellinger_fidelity
            for name, circuit in circuits.items()
        }
    return output


def write_table(filename: str, header: List[str], rows: List[List[str]]) -> str:
    """Write a simple aligned text table to benchmarks/results and return it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    widths = [max(len(str(row[i])) for row in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
             for row in [header] + rows]
    text = "\n".join(lines) + "\n"
    with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
        handle.write(text)
    return text
