"""Chaos harness: fault-injected end-to-end resilience scenarios.

Each scenario boots real infrastructure (an in-process
:class:`repro.server.ShardRouter` with worker *processes*, or a
process-mode :class:`repro.service.CompilationService`), injects one
deterministic fault from :mod:`repro.resilience.faults`, and asserts the
recovery contract:

* ``shard_kill``      — SIGKILL one of two shards mid-traffic: every
                        submission still completes (failover), the shard
                        respawns, and the router reports healthy again.
* ``worker_kill``     — a process-pool compile worker dies on the first
                        dispatch: the job retries on a respawned pool and
                        completes.
* ``store_corruption`` — persisted results are garbled before reads: the
                        store quarantines them and recompiles; no client
                        ever sees a poisoned result.
* ``deadline_storm``  — a burst of impossible deadlines across the
                        gateway: every job resolves quickly (typed error
                        or degraded result), none wedge a worker.

Usage (from the repository root)::

    python benchmarks/perf/chaos_harness.py                 # all scenarios
    python benchmarks/perf/chaos_harness.py --scenario shard_kill
    python benchmarks/perf/chaos_harness.py -o chaos.json

Exit status is non-zero when any scenario's contract fails, so CI can
run this directly.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import time
from typing import Dict, List

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import repro  # noqa: E402
from repro.server.app import _percentile as percentile  # noqa: E402
from repro.workloads import ghz_circuit, qft_circuit  # noqa: E402


def _corpus(count: int):
    """Distinct small circuits so submissions spread over both shards."""
    from repro.workloads import random_template_circuit

    base = [ghz_circuit(3), ghz_circuit(4), qft_circuit(3)]
    while len(base) < count:
        base.append(random_template_circuit(3, 10, seed=len(base)))
    return base[:count]


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def scenario_shard_kill() -> Dict:
    """Kill one of two shards mid-traffic; traffic and health recover."""
    from repro.server import ReproClient, ShardRouter

    circuits = _corpus(10)
    latencies: List[float] = []
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as store:
        router = ShardRouter(shards=2, workers=2, store=store).start()
        try:
            client = ReproClient(router.url, retries=5, backoff=0.2,
                                 max_retry_seconds=30.0)
            victim = router._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            for circuit in circuits:
                start = time.perf_counter()
                try:
                    client.compile(circuit, technique="direct",
                                   use_cache=False, timeout=60.0)
                except Exception:
                    failures += 1
                latencies.append(time.perf_counter() - start)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (router.respawns().get(0, 0) >= 1
                        and len(router.live_shards()) == 2):
                    break
                time.sleep(0.2)
            health = client.healthz()
            respawned = (health.get("status") == "ok"
                         and health.get("live") == 2
                         and health.get("respawns", {}).get("s0", 0) >= 1)
        finally:
            router.shutdown()
    ordered = sorted(latencies)
    return {
        "requests": len(circuits),
        "failures": failures,
        "respawned": respawned,
        "p95_seconds": percentile(ordered, 0.95),
        "ok": failures == 0 and respawned,
    }


def scenario_worker_kill() -> Dict:
    """A process-pool worker dies on dispatch; the job retries through."""
    from repro.resilience.faults import (
        FaultPlan,
        FaultSpec,
        clear_fault_plan,
        install_fault_plan,
    )
    from repro.service import CompilationService

    circuit = ghz_circuit(3)
    target = repro.spin_qubit_target(3, "D0")
    install_fault_plan(FaultPlan([
        FaultSpec(site="worker.compile", action="die", nth=1),
    ]))
    try:
        service = CompilationService(workers=1, mode="process",
                                     worker_retries=2, retry_backoff=0.1)
        try:
            start = time.perf_counter()
            handle = service.submit(circuit, target, "direct", use_cache=False)
            result = handle.result(timeout=120)
            seconds = time.perf_counter() - start
            crashes = service.statistics()["worker_crashes"]
        finally:
            service.shutdown()
    finally:
        clear_fault_plan()
    return {
        "technique": result.technique,
        "worker_crashes": crashes,
        "seconds": seconds,
        "ok": result.technique == "direct" and crashes >= 1,
    }


def scenario_store_corruption() -> Dict:
    """Garbled store entries are quarantined, never served."""
    from repro.resilience.faults import (
        FaultPlan,
        FaultSpec,
        clear_fault_plan,
        install_fault_plan,
    )
    from repro.service import PersistentResultStore
    from repro.service.store import QUARANTINE_DIR
    from repro.api.cache import (
        clear_compilation_cache,
        install_persistent_store,
        uninstall_persistent_store,
    )

    circuit = ghz_circuit(3)
    target = repro.spin_qubit_target(3, "D0")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-store-") as root:
        store = PersistentResultStore(root)
        install_persistent_store(store)
        try:
            baseline = repro.compile(circuit, target, "direct")
            # Corrupt the next 3 store reads; L1 is cleared each round so
            # the reads really hit the disk tier.
            install_fault_plan(FaultPlan([
                FaultSpec(site="store.read", action="corrupt", nth=n)
                for n in (1, 2, 3)
            ]))
            mismatches = 0
            for _ in range(3):
                clear_compilation_cache()
                result = repro.compile(circuit, target, "direct")
                if (result.cost.gate_fidelity_product
                        != baseline.cost.gate_fidelity_product):
                    mismatches += 1
            stats = store.statistics()
            quarantined = len(os.listdir(os.path.join(root, QUARANTINE_DIR)))
        finally:
            clear_fault_plan()
            uninstall_persistent_store()
            clear_compilation_cache()
    return {
        "corrupted_reads": stats["corrupted"],
        "quarantined_files": quarantined,
        "result_mismatches": mismatches,
        "ok": stats["corrupted"] >= 1 and mismatches == 0,
    }


def scenario_deadline_storm() -> Dict:
    """A burst of impossible deadlines: fast typed failures, no wedging."""
    from repro.server import ReproClient, build_server
    from repro.server.client import CompilationFailedError

    circuits = _corpus(8)
    server = build_server(workers=2).start_background()
    outcomes = {"degraded": 0, "deadline_error": 0, "other": 0}
    latencies: List[float] = []
    try:
        client = ReproClient(server.url, retries=2, backoff=0.1)
        for index, circuit in enumerate(circuits):
            degrade = index % 2 == 0
            start = time.perf_counter()
            try:
                result = client.compile(
                    circuit, technique="sat_p", use_cache=False,
                    deadline=0.0,
                    on_deadline="degrade" if degrade else None)
                outcomes["degraded" if result.report.degraded_from
                         else "other"] += 1
            except CompilationFailedError as error:
                if "CompileDeadlineExceeded" in str(error):
                    outcomes["deadline_error"] += 1
                else:
                    outcomes["other"] += 1
            except Exception:
                outcomes["other"] += 1
            latencies.append(time.perf_counter() - start)
        # The service must be fully idle afterwards: nothing wedged.
        stats = server.gateway.service.statistics()
        stuck = stats["queue_depth"] + stats["busy_workers"]
    finally:
        server.stop()
    ordered = sorted(latencies)
    return {
        "requests": len(circuits),
        "outcomes": outcomes,
        "stuck_jobs": stuck,
        "p95_seconds": percentile(ordered, 0.95),
        "ok": (outcomes["other"] == 0 and stuck == 0
               and percentile(ordered, 0.95) < 30.0),
    }


SCENARIOS = {
    "shard_kill": scenario_shard_kill,
    "worker_kill": scenario_worker_kill,
    "store_corruption": scenario_store_corruption,
    "deadline_storm": scenario_deadline_storm,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=sorted(SCENARIOS), default=None,
                        help="run one scenario (default: all)")
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    names = [args.scenario] if args.scenario else sorted(SCENARIOS)
    report: Dict[str, Dict] = {}
    for name in names:
        print(f"chaos: {name} ...", flush=True)
        started = time.perf_counter()
        try:
            outcome = SCENARIOS[name]()
        except Exception as error:  # noqa: BLE001 - report, don't crash
            outcome = {"ok": False,
                       "error": f"{type(error).__name__}: {error}"}
        outcome["wall_seconds"] = time.perf_counter() - started
        report[name] = outcome
        print(f"chaos: {name} -> {'OK' if outcome.get('ok') else 'FAILED'} "
              f"({outcome['wall_seconds']:.1f}s) "
              f"{json.dumps({k: v for k, v in outcome.items() if k != 'ok'})}")
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0 if all(outcome.get("ok") for outcome in report.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
