"""Perf-benchmark suite: simulation kernels, SAT, SMT, end-to-end compile.

Every benchmark returns a JSON-serializable dict with wall times in
seconds and, where a legacy baseline exists, the measured
``speedup`` (baseline time / new time).  The suite is preset-driven:

* ``smoke`` — tiny sizes, runs in well under a minute (CI perf-smoke job);
* ``full``  — the sizes quoted in the README performance section.

The end-to-end section reuses the per-stage wall times that the pipeline
already records in each result's :class:`repro.pipeline.CompilationReport`,
so compile timings here agree with what users see in production.
"""

from __future__ import annotations

import platform
import time
from typing import Callable, Dict, List

import repro
from repro.circuits.unitary import circuit_unitary, circuit_unitary_dense
from repro.hardware import spin_qubit_target
from repro.sat import Solver as SatSolver
from repro.sat.encodings import at_most_one_pairwise
from repro.simulator import DensityMatrixSimulator, sample_counts, simulate_statevector, simulate_statevector_dense
from repro.simulator.statevector import statevector_probabilities
from repro.smt import CheckResult, Implies, Bool, Optimize, Real, RealVal
from repro.workloads import ghz_circuit, qft_circuit, quantum_volume_circuit, random_template_circuit

PRESETS = {
    "smoke": {
        "statevector_qubits": [6, 10],
        "statevector_depth": 24,
        "density_qubits": [3, 4],
        "unitary_qubits": [5],
        "sat_holes": 6,
        "smt_chain": 8,
        "compile_workloads": [("ghz-3", lambda: ghz_circuit(3))],
        "compile_techniques": ["sat_p"],
        "repeats": 1,
        "dense_repeats": 1,
        "service_manifest": [
            {"kind": "ghz", "num_qubits": 3},
            {"kind": "qv", "num_qubits": 2, "depth": 2, "seed": 0},
            {"kind": "qaoa_ring", "num_qubits": 3, "layers": 1, "seed": 0},
            {"kind": "vqe_hwe", "num_qubits": 3, "layers": 1, "seed": 0},
        ],
        "service_technique": "direct",
        "service_workers": 2,
        "suite_benchmarks": ["toffoli_n3", "teleport_n3", "ghz_n5"],
        "suite_technique": "direct",
    },
    "full": {
        "statevector_qubits": [6, 8, 10, 12],
        "statevector_depth": 48,
        "density_qubits": [3, 4, 5],
        "unitary_qubits": [5, 7],
        "sat_holes": 7,
        "smt_chain": 14,
        "compile_workloads": [
            ("ghz-4", lambda: ghz_circuit(4)),
            ("qft-3", lambda: qft_circuit(3)),
            ("qv-3", lambda: quantum_volume_circuit(3, seed=0)),
            ("random-4x20", lambda: random_template_circuit(4, 20, seed=0)),
        ],
        "compile_techniques": ["sat_p", "direct", "kak_cz"],
        "repeats": 3,
        # Dense baselines are asymptotically slow by design (8+ seconds per
        # 12-qubit statevector run); one measurement is plenty.
        "dense_repeats": 1,
        "service_manifest": [
            {"kind": "ghz", "num_qubits": 4},
            {"kind": "qv", "num_qubits": 3, "depth": 3, "seed": 0},
            {"kind": "random", "num_qubits": 3, "depth": 20, "seed": 0},
            {"kind": "random", "num_qubits": 3, "depth": 20, "seed": 1},
            {"kind": "qaoa_ring", "num_qubits": 4, "layers": 2, "seed": 0},
            {"kind": "vqe_hwe", "num_qubits": 4, "layers": 2, "seed": 0},
            {"kind": "qft", "num_qubits": 3},
        ],
        "service_technique": "sat_p",
        "service_workers": 4,
        "suite_benchmarks": None,  # the whole bundled suite
        "suite_technique": "direct",
    },
}


def _best_of(func: Callable[[], object], repeats: int) -> float:
    """Wall time of the fastest of ``repeats`` runs."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Simulation kernels
# ----------------------------------------------------------------------
def bench_statevector(preset: Dict) -> List[Dict]:
    """Local-kernel vs dense-matrix statevector simulation."""
    rows: List[Dict] = []
    for num_qubits in preset["statevector_qubits"]:
        circuit = random_template_circuit(
            num_qubits, preset["statevector_depth"], seed=17
        )
        fast = _best_of(lambda: simulate_statevector(circuit), preset["repeats"])
        dense = _best_of(
            lambda: simulate_statevector_dense(circuit), preset["dense_repeats"]
        )
        rows.append({
            "workload": circuit.name,
            "num_qubits": num_qubits,
            "num_gates": len(circuit.instructions),
            "kernel_seconds": fast,
            "dense_seconds": dense,
            "speedup": dense / fast if fast > 0 else float("inf"),
        })
    return rows


def bench_density(preset: Dict) -> List[Dict]:
    """Local-kernel vs dense-matrix noisy density-matrix simulation."""
    rows: List[Dict] = []
    for num_qubits in preset["density_qubits"]:
        target = spin_qubit_target(num_qubits)
        circuit = ghz_circuit(num_qubits)
        routed = repro.compile(circuit, target, "direct").adapted_circuit
        fast_sim = DensityMatrixSimulator(target)
        dense_sim = DensityMatrixSimulator(target, dense=True)
        fast = _best_of(lambda: fast_sim.evolve(routed), preset["repeats"])
        dense = _best_of(lambda: dense_sim.evolve(routed), preset["dense_repeats"])
        rows.append({
            "workload": circuit.name,
            "num_qubits": num_qubits,
            "num_gates": len(routed.instructions),
            "kernel_seconds": fast,
            "dense_seconds": dense,
            "speedup": dense / fast if fast > 0 else float("inf"),
        })
    return rows


def bench_unitary(preset: Dict) -> List[Dict]:
    """Local-kernel vs dense circuit-unitary construction."""
    rows: List[Dict] = []
    for num_qubits in preset["unitary_qubits"]:
        circuit = random_template_circuit(num_qubits, 8 * num_qubits, seed=5)
        fast = _best_of(lambda: circuit_unitary(circuit), preset["repeats"])
        dense = _best_of(lambda: circuit_unitary_dense(circuit), preset["dense_repeats"])
        rows.append({
            "workload": circuit.name,
            "num_qubits": num_qubits,
            "kernel_seconds": fast,
            "dense_seconds": dense,
            "speedup": dense / fast if fast > 0 else float("inf"),
        })
    return rows


def bench_sampling(preset: Dict) -> Dict:
    """Batched multinomial shot sampling from a simulated distribution."""
    circuit = quantum_volume_circuit(min(preset["statevector_qubits"]), seed=2)
    state = simulate_statevector(circuit)
    probabilities = statevector_probabilities(state, circuit.num_qubits)
    shots = 100000
    seconds = _best_of(
        lambda: sample_counts(probabilities, shots, seed=11), preset["repeats"]
    )
    return {"shots": shots, "outcomes": len(probabilities), "seconds": seconds}


# ----------------------------------------------------------------------
# Solver kernels
# ----------------------------------------------------------------------
def _pigeonhole_clauses(holes: int) -> List[List[int]]:
    """Pigeonhole principle PHP(holes+1, holes): UNSAT, propagation-heavy."""
    pigeons = holes + 1

    def var(pigeon: int, hole: int) -> int:
        return pigeon * holes + hole + 1

    clauses: List[List[int]] = []
    for pigeon in range(pigeons):
        clauses.append([var(pigeon, hole) for hole in range(holes)])
    for hole in range(holes):
        clauses.extend(
            at_most_one_pairwise([var(pigeon, hole) for pigeon in range(pigeons)])
        )
    return clauses


def bench_sat(preset: Dict) -> Dict:
    """CDCL propagation/conflict throughput on a pigeonhole instance."""
    holes = preset["sat_holes"]
    clauses = _pigeonhole_clauses(holes)

    def solve() -> None:
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is False

    seconds = _best_of(solve, preset["repeats"])
    # Collect counters from one instrumented run.
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    solver.solve()
    stats = solver.statistics.as_dict()
    return {
        "instance": f"php_{holes + 1}_{holes}",
        "num_clauses": len(clauses),
        "seconds": seconds,
        "conflicts": stats["conflicts"],
        "propagations": stats["propagations"],
        "propagations_per_second": stats["propagations"] / seconds if seconds else 0.0,
    }


def _build_scheduling_omt(opt: Optimize, chain: int):
    """A guarded chain-scheduling OMT instance shaped like the paper's model."""
    starts = [Real(f"s{i}") for i in range(chain)]
    picks = [Bool(f"pick{i}") for i in range(chain)]
    opt.add(starts[0] >= RealVal(0))
    for i in range(1, chain):
        # Each block runs for 4 or 7 time units depending on a selection bit.
        opt.add(Implies(picks[i - 1], starts[i] >= starts[i - 1] + RealVal(4)))
        opt.add(Implies(~picks[i - 1], starts[i] >= starts[i - 1] + RealVal(7)))
        opt.add(starts[i] <= RealVal(10 * chain))
    makespan = Real("makespan")
    opt.add(makespan >= starts[-1] + RealVal(4))
    return opt.minimize(makespan)


def bench_smt(preset: Dict) -> Dict:
    """Incremental vs rebuild-per-check theory engine on an OMT workload."""
    chain = preset["smt_chain"]
    results: Dict[str, Dict] = {}
    for mode, incremental in (("incremental", True), ("legacy_rebuild", False)):
        def solve() -> None:
            opt = Optimize(incremental_theory=incremental)
            handle = _build_scheduling_omt(opt, chain)
            assert opt.check() == CheckResult.SAT
            handle.value()

        seconds = _best_of(solve, preset["repeats"])
        opt = Optimize(incremental_theory=incremental)
        handle = _build_scheduling_omt(opt, chain)
        opt.check()
        stats = opt.statistics()
        results[mode] = {
            "seconds": seconds,
            "optimum": str(handle.value()),
            "theory_checks": stats["theory_checks"],
            "theory_pivots": stats["theory_pivots"],
            "improvement_rounds": stats["improvement_rounds"],
        }
    legacy = results["legacy_rebuild"]["seconds"]
    fast = results["incremental"]["seconds"]
    assert results["incremental"]["optimum"] == results["legacy_rebuild"]["optimum"]
    return {
        "instance": f"guarded_chain_{chain}",
        "modes": results,
        "speedup": legacy / fast if fast > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# End-to-end compilation
# ----------------------------------------------------------------------
def bench_compile(preset: Dict) -> List[Dict]:
    """End-to-end ``repro.compile`` per technique, with pipeline stage times."""
    rows: List[Dict] = []
    for name, build in preset["compile_workloads"]:
        circuit = build()
        target = spin_qubit_target(max(4, circuit.num_qubits))
        for technique in preset["compile_techniques"]:
            start = time.perf_counter()
            result = repro.compile(circuit, target, technique, use_cache=False)
            seconds = time.perf_counter() - start
            report = result.report
            rows.append({
                "workload": name,
                "technique": technique,
                "seconds": seconds,
                "stage_seconds": report.stage_seconds() if report else {},
                # Numeric counters plus the selection/reason strings the
                # heuristic techniques report (never an empty dict).
                "solver_statistics": {
                    key: value
                    for key, value in (result.statistics or {}).items()
                    if isinstance(value, (int, float, str, bool))
                },
            })
    return rows


def bench_theory_engine_ab(preset: Dict) -> List[Dict]:
    """Incremental vs legacy theory engine on real adaptation workloads.

    Times the full ``repro.compile`` and its OMT ``solve`` stage for the
    SAT-based technique with both theory engines; results are cost-identical
    (asserted), only the solver wall time differs.
    """
    rows: List[Dict] = []
    for name, build in preset["compile_workloads"]:
        circuit = build()
        target = spin_qubit_target(max(4, circuit.num_qubits))
        timings: Dict[str, Dict] = {}
        objective_values = set()
        for mode, incremental in (("incremental", True), ("legacy_rebuild", False)):
            start = time.perf_counter()
            result = repro.compile(
                circuit, target, "sat_p",
                use_cache=False, incremental_theory=incremental,
            )
            seconds = time.perf_counter() - start
            stage_seconds = result.report.stage_seconds() if result.report else {}
            timings[mode] = {
                "seconds": seconds,
                "solve_seconds": stage_seconds.get("solve", 0.0),
                "theory_checks": int((result.statistics or {}).get("theory_checks", 0)),
            }
            objective_values.add(result.objective_value)
        assert len(objective_values) == 1, "theory engines disagree on the optimum"
        legacy = timings["legacy_rebuild"]["solve_seconds"]
        fast = timings["incremental"]["solve_seconds"]
        rows.append({
            "workload": name,
            "technique": "sat_p",
            "modes": timings,
            "solve_speedup": legacy / fast if fast > 0 else float("inf"),
        })
    return rows


def bench_trace(preset: Dict) -> Dict:
    """Tracing overhead: traced vs untraced compile of the same workload.

    Two numbers back the subsystem's overhead claims over PRs:

    * ``enabled_overhead_percent`` — wall-time cost of compiling with a
      live JSONL tracer versus tracing off (best-of timing on both
      sides);
    * ``disabled_overhead_percent`` — estimated cost of the dormant
      hooks when tracing is off: the measured per-call cost of the
      disabled fast path times the number of events a traced compile
      emits, relative to the untraced compile time.
    """
    import os
    import tempfile

    from repro.trace import load_events
    from repro.trace.tracer import current_tracer

    name, build = preset["compile_workloads"][0]
    circuit = build()
    target = spin_qubit_target(max(4, circuit.num_qubits))
    technique = preset["compile_techniques"][0]
    repeats = max(2, preset["repeats"])

    untraced = _best_of(
        lambda: repro.compile(circuit, target, technique, use_cache=False),
        repeats,
    )

    # Per-call cost of the disabled fast path (one flag read + return).
    probe_calls = 200000
    start = time.perf_counter()
    for _ in range(probe_calls):
        current_tracer()
    disabled_hook_ns = 1e9 * (time.perf_counter() - start) / probe_calls

    handle, path = tempfile.mkstemp(suffix=".jsonl", prefix="repro-bench-trace-")
    os.close(handle)
    try:
        traced = _best_of(
            lambda: repro.compile(circuit, target, technique,
                                  use_cache=False, trace=path),
            repeats,
        )
        events_total = len(load_events(path))
    finally:
        os.unlink(path)
    events_per_compile = events_total / repeats
    disabled_estimate = events_per_compile * disabled_hook_ns * 1e-9
    return {
        "workload": name,
        "technique": technique,
        "untraced_seconds": untraced,
        "traced_seconds": traced,
        "enabled_overhead_percent": (
            100.0 * (traced - untraced) / untraced if untraced > 0 else 0.0
        ),
        "events_per_compile": events_per_compile,
        "disabled_hook_ns": disabled_hook_ns,
        "disabled_overhead_percent": (
            100.0 * disabled_estimate / untraced if untraced > 0 else 0.0
        ),
    }


def bench_telemetry(preset: Dict) -> Dict:
    """Metric-registry overhead: disabled hook cost + enabled compile cost.

    Two numbers back the telemetry subsystem's overhead claims:

    * ``disabled_counter_ns`` — per-call cost of ``Counter.inc()`` with
      telemetry off (one module-flag read and return), the hook that
      sits on the SAT conflict loop;
    * ``enabled_overhead_percent`` — wall-time cost of compiling with
      the registry live (pass timers, cache counters, solver flushes)
      versus telemetry off.
    """
    from repro.telemetry.instruments import SOLVER_EVENTS, record_cache
    from repro.telemetry.registry import (
        disable_telemetry,
        enable_telemetry,
        telemetry_enabled,
    )

    name, build = preset["compile_workloads"][0]
    circuit = build()
    target = spin_qubit_target(max(4, circuit.num_qubits))
    technique = preset["compile_techniques"][0]
    repeats = max(2, preset["repeats"])

    was_enabled = telemetry_enabled()
    disable_telemetry()
    try:
        counter = SOLVER_EVENTS.labels("conflicts")
        probe_calls = 200000
        start = time.perf_counter()
        for _ in range(probe_calls):
            counter.inc()
        disabled_counter_ns = 1e9 * (time.perf_counter() - start) / probe_calls
        start = time.perf_counter()
        for _ in range(probe_calls):
            record_cache("l1", True)
        disabled_helper_ns = 1e9 * (time.perf_counter() - start) / probe_calls

        disabled_seconds = _best_of(
            lambda: repro.compile(circuit, target, technique, use_cache=False),
            repeats,
        )
        enable_telemetry()
        enabled_seconds = _best_of(
            lambda: repro.compile(circuit, target, technique, use_cache=False),
            repeats,
        )
    finally:
        if was_enabled:
            enable_telemetry()
        else:
            disable_telemetry()
    return {
        "workload": name,
        "technique": technique,
        "disabled_counter_ns": disabled_counter_ns,
        "disabled_helper_ns": disabled_helper_ns,
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead_percent": (
            100.0 * (enabled_seconds - disabled_seconds) / disabled_seconds
            if disabled_seconds > 0 else 0.0
        ),
    }


def bench_resilience(preset: Dict) -> Dict:
    """Deadline-checkpoint overhead: disabled hook cost + degrade timing.

    The budget checkpoints (:func:`repro.resilience.check_budget`) sit
    on the SAT conflict loop, the SMT theory-check loop, the OMT rounds
    and every pipeline-pass boundary — i.e. the same hot paths as the
    trace hooks.  The contract is that a *disabled* checkpoint (no
    budget installed, the overwhelmingly common case) costs no more
    than ~2x the disabled trace hook.
    """
    from repro.resilience.budget import Budget, budget_scope, check_budget
    from repro.trace.tracer import current_tracer

    name, build = preset["compile_workloads"][0]
    circuit = build()
    target = spin_qubit_target(max(4, circuit.num_qubits))
    technique = preset["compile_techniques"][0]
    repeats = max(2, preset["repeats"])

    probe_calls = 200000
    # Disabled fast path: one module-flag read + return.
    start = time.perf_counter()
    for _ in range(probe_calls):
        check_budget("bench")
    disabled_hook_ns = 1e9 * (time.perf_counter() - start) / probe_calls

    # Armed path: contextvar read + charge/deadline comparison.
    with budget_scope(Budget(timeout=3600.0)):
        start = time.perf_counter()
        for _ in range(probe_calls):
            check_budget("bench")
        armed_hook_ns = 1e9 * (time.perf_counter() - start) / probe_calls

    # The reference cost this subsystem is allowed ~2x of.
    start = time.perf_counter()
    for _ in range(probe_calls):
        current_tracer()
    trace_hook_ns = 1e9 * (time.perf_counter() - start) / probe_calls

    plain = _best_of(
        lambda: repro.compile(circuit, target, technique, use_cache=False),
        repeats,
    )
    budgeted = _best_of(
        lambda: repro.compile(circuit, target, technique, use_cache=False,
                              timeout=3600.0),
        repeats,
    )

    # A deadline that always fires, resolved by the degradation ladder:
    # the whole detect-degrade-recompile round trip.
    start = time.perf_counter()
    degraded = repro.compile(circuit, target, "sat_p", use_cache=False,
                             timeout=0.0, on_deadline="degrade")
    degrade_seconds = time.perf_counter() - start
    assert degraded.report.degraded_from == "sat_p"

    return {
        "workload": name,
        "technique": technique,
        "disabled_check_ns": disabled_hook_ns,
        "armed_check_ns": armed_hook_ns,
        "trace_hook_ns": trace_hook_ns,
        "disabled_vs_trace_hook": (
            disabled_hook_ns / trace_hook_ns if trace_hook_ns > 0 else 0.0
        ),
        "plain_seconds": plain,
        "budgeted_seconds": budgeted,
        "budgeted_overhead_percent": (
            100.0 * (budgeted - plain) / plain if plain > 0 else 0.0
        ),
        "degrade_roundtrip_seconds": degrade_seconds,
        "degraded_to": degraded.technique,
    }


# ----------------------------------------------------------------------
# Service layer
# ----------------------------------------------------------------------
def bench_service(preset: Dict) -> Dict:
    """Service-throughput benchmark: cold vs warm persistent-store runs.

    Builds the preset's workload manifest, compiles it twice through a
    :class:`repro.service.CompilationService` backed by a fresh temporary
    :class:`repro.service.PersistentResultStore` — the first run cold
    (every result compiled and persisted), the second in a simulated
    fresh process (L1 emptied) so every result is served from disk.
    """
    import shutil
    import tempfile

    from repro.api import clear_compilation_cache
    from repro.hardware import spin_qubit_target
    from repro.service import CompilationService, PersistentResultStore
    from repro.workloads.manifest import parse_manifest

    workloads, _ = parse_manifest(preset["service_manifest"])
    technique = preset["service_technique"]
    workers = preset["service_workers"]
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    clear_compilation_cache()
    try:
        timings = {}
        hits = {}
        for phase in ("cold", "warm"):
            store = PersistentResultStore(root)
            clear_compilation_cache()  # Each phase starts with an empty L1.
            started = time.perf_counter()
            with CompilationService(workers=workers, store=store) as service:
                handles = [
                    service.submit(
                        circuit,
                        spin_qubit_target(max(2, circuit.num_qubits)),
                        technique,
                    )
                    for _, circuit in workloads
                ]
                for handle in handles:
                    handle.result()
            timings[phase] = time.perf_counter() - started
            hits[phase] = store.info().hits
        assert hits["warm"] > 0, "warm run must be served from the store"
        return {
            "workloads": len(workloads),
            "technique": technique,
            "workers": workers,
            "cold_seconds": timings["cold"],
            "warm_seconds": timings["warm"],
            "cold_circuits_per_second": len(workloads) / timings["cold"],
            "warm_circuits_per_second": len(workloads) / timings["warm"],
            "warm_store_hits": hits["warm"],
            "warm_speedup": (
                timings["cold"] / timings["warm"]
                if timings["warm"] > 0 else float("inf")
            ),
        }
    finally:
        clear_compilation_cache()
        shutil.rmtree(root, ignore_errors=True)


def bench_qasm_suite(preset: Dict) -> Dict:
    """Bundled-benchmark throughput: parse + compile circuits/second.

    Runs the QASM frontend and ``repro.compile`` end to end over the
    bundled interop suite (cache disabled, so every circuit pays the
    full pipeline) — the number that tells us how fast real benchmark
    files flow through the stack.
    """
    from repro.interop import load_suite, qasm_to_circuit

    entries = load_suite(preset["suite_benchmarks"])
    technique = preset["suite_technique"]
    rows: List[Dict] = []
    total = 0.0
    for entry in entries:
        target = spin_qubit_target(max(2, entry.metadata()["qubits"]))

        def compile_entry(entry=entry, target=target):
            # Parse from source each time, deliberately: the measured
            # number is frontend + full pipeline (target built outside,
            # like bench_compile).
            circuit = qasm_to_circuit(entry.qasm, name=entry.name)
            return repro.compile(circuit, target, technique, use_cache=False)

        seconds = _best_of(compile_entry, preset["repeats"])
        total += seconds
        metadata = entry.metadata()
        rows.append({
            "benchmark": entry.name,
            "qubits": metadata["qubits"],
            "input_gates": metadata["gates"],
            "seconds": seconds,
        })
    return {
        "technique": technique,
        "benchmarks": len(entries),
        "seconds": total,
        "circuits_per_second": len(entries) / total if total > 0 else float("inf"),
        "per_benchmark": rows,
    }


# ----------------------------------------------------------------------
def run_suite(preset_name: str) -> Dict:
    """Run every benchmark of the preset and return the report dict."""
    preset = PRESETS[preset_name]
    return {
        "preset": preset_name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "statevector": bench_statevector(preset),
        "density": bench_density(preset),
        "unitary": bench_unitary(preset),
        "sampling": bench_sampling(preset),
        "sat": bench_sat(preset),
        "smt": bench_smt(preset),
        "compile": bench_compile(preset),
        "trace": bench_trace(preset),
        "telemetry": bench_telemetry(preset),
        "resilience": bench_resilience(preset),
        "theory_engine_ab": bench_theory_engine_ab(preset),
        "service": bench_service(preset),
        "suite": bench_qasm_suite(preset),
    }
