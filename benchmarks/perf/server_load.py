"""HTTP load harness: cold vs warm serving throughput and latency.

Boots a real ``python -m repro.server`` process (fresh interpreter, so
the cold phase really is cold), hammers it with N concurrent clients
over loopback HTTP, restarts the server against the same persistent
store (a warm restart: empty L1, hot L2) and hammers it again.  Records
requests/second and p50/p95 latency per phase under the ``server`` key
of ``BENCH_perf.json`` — merged into the existing report, so the perf
trajectory stays in one artifact.

Usage (from the repository root)::

    python benchmarks/perf/server_load.py                     # 8 clients
    python benchmarks/perf/server_load.py --clients 16 --requests 8
    python benchmarks/perf/server_load.py --shards 2          # sharded
    python benchmarks/perf/server_load.py --scaling           # 1 vs 2 shards

``--scaling`` additionally compares req/s at 1 vs 2 shards over the
replicated store backend and then *scales out* to 3 shards against the
same store, counting warm cross-shard peer fetches.  Shard scaling is
process-level parallelism — the recorded ``cpu_count`` says how much
headroom the machine actually offered (a 1-core box can only timeshare).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.circuits.circuit import QuantumCircuit  # noqa: E402
from repro.server import ReproClient  # noqa: E402
from repro.server.app import _percentile as percentile  # noqa: E402
from repro.workloads import (  # noqa: E402
    ghz_circuit,
    hardware_efficient_ansatz,
    qaoa_ring_circuit,
    qft_circuit,
    quantum_volume_circuit,
    random_template_circuit,
)


def build_corpus() -> List[QuantumCircuit]:
    """Small distinct circuits: spreads work over shards and cache keys."""
    return [
        ghz_circuit(3),
        ghz_circuit(4),
        qft_circuit(3),
        quantum_volume_circuit(2, 2, seed=0),
        qaoa_ring_circuit(3, layers=1, seed=0),
        hardware_efficient_ansatz(3, layers=1, seed=0),
        random_template_circuit(3, 12, seed=0),
        random_template_circuit(3, 12, seed=1),
    ]


def boot_server(store: str, workers: int, shards: int,
                auth: str = None) -> Tuple[subprocess.Popen, str]:
    """Start ``python -m repro.server`` and wait for its banner line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "repro.server", "--port", "0",
               "--workers", str(workers), "--store", store]
    if shards > 1:
        command += ["--shards", str(shards)]
    if auth:
        command += ["--auth-keys", auth]
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True, env=env)
    banner = process.stdout.readline()
    match = re.search(r"http://\S+?(?=[\s)]|$)", banner)
    if match is None:
        process.kill()
        raise RuntimeError(f"server did not come up: {banner!r}")
    url = match.group(0)
    ReproClient(url).wait_until_ready(timeout=60)
    return process, url


def stop_server(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)


def run_phase(url: str, clients: int, requests_per_client: int,
              corpus: List[QuantumCircuit],
              technique: str) -> Tuple[List[float], float]:
    """Fire ``clients`` concurrent workers; returns (latencies, wall)."""
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        client = ReproClient(url, timeout=300.0)
        barrier.wait()
        try:
            for request in range(requests_per_client):
                circuit = corpus[(index + request) % len(corpus)]
                started = time.perf_counter()
                client.compile(circuit, technique=technique, timeout=300)
                latencies[index].append(time.perf_counter() - started)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return [value for per_client in latencies for value in per_client], wall


def phase_stats(latencies: List[float], wall: float) -> Dict[str, float]:
    latencies = sorted(latencies)  # _percentile expects a sorted sample.
    return {
        "requests": len(latencies),
        "seconds": wall,
        "requests_per_second": len(latencies) / wall if wall > 0 else float("inf"),
        "p50_ms": 1e3 * percentile(latencies, 0.50),
        "p95_ms": 1e3 * percentile(latencies, 0.95),
        "mean_ms": 1e3 * sum(latencies) / len(latencies) if latencies else 0.0,
    }


def bench_server(clients: int, requests_per_client: int, workers: int,
                 shards: int, technique: str) -> Dict[str, object]:
    corpus = build_corpus()
    store = tempfile.mkdtemp(prefix="repro-server-load-")
    report: Dict[str, object] = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "workers": workers,
        "shards": shards,
        "technique": technique,
        "corpus_circuits": len(corpus),
    }
    try:
        for phase in ("cold", "warm"):
            # A fresh server process per phase: the warm phase restarts
            # against the same store — empty L1, hot L2 — exactly like a
            # production rollout.
            process, url = boot_server(store, workers, shards)
            try:
                latencies, wall = run_phase(
                    url, clients, requests_per_client, corpus, technique)
                report[phase] = phase_stats(latencies, wall)
                if phase == "warm":
                    metrics = ReproClient(url).metrics()
                    if shards > 1:
                        hits = sum(
                            shard.get("service", {}).get("l2", {}).get("hits", 0)
                            for shard in metrics["per_shard"].values())
                    else:
                        hits = metrics["service"].get("l2", {}).get("hits", 0)
                    report["warm_l2_hits"] = hits
            finally:
                stop_server(process)
        cold_rps = report["cold"]["requests_per_second"]
        warm_rps = report["warm"]["requests_per_second"]
        report["warm_speedup"] = warm_rps / cold_rps if cold_rps > 0 else float("inf")
    finally:
        shutil.rmtree(store, ignore_errors=True)
    return report


def scaling_corpus(total: int) -> List[QuantumCircuit]:
    """One distinct circuit per request: every compile is real work."""
    return [random_template_circuit(3, 12, seed=seed) for seed in range(total)]


def run_unique_phase(url: str, clients: int, requests_per_client: int,
                     circuits: List[QuantumCircuit],
                     technique: str) -> Tuple[List[float], float]:
    """Like :func:`run_phase` but every request compiles its own circuit."""
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        client = ReproClient(url, timeout=300.0)
        barrier.wait()
        try:
            for request in range(requests_per_client):
                circuit = circuits[index * requests_per_client + request]
                started = time.perf_counter()
                client.compile(circuit, technique=technique, timeout=300)
                latencies[index].append(time.perf_counter() - started)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return [value for per_client in latencies for value in per_client], wall


def bench_scaling(clients: int, requests_per_client: int, workers: int,
                  technique: str) -> Dict[str, object]:
    """Shard scaling: req/s at 1 vs 2 shards, then a scale-out warm run.

    Three deployments over the same distinct-circuit corpus:

    1. one shard, its own store — the single-node baseline;
    2. two shards, a fresh *replicated* store — the scaling claim;
    3. three shards over the 2-shard run's store — rerouted fingerprints
       land on shards that never compiled them, so the peer-fetch backend
       serves them cross-shard (the ``cross_shard_l2_hits`` count).
    """
    circuits = scaling_corpus(clients * requests_per_client)
    report: Dict[str, object] = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "workers": workers,
        "technique": technique,
        "cpu_count": os.cpu_count(),
    }
    single_store = tempfile.mkdtemp(prefix="repro-scale-1-")
    cluster_store = tempfile.mkdtemp(prefix="repro-scale-2-")
    try:
        runs = (
            ("one_shard", 1, f"dir:{single_store}"),
            ("two_shards", 2, f"replicated:{cluster_store}"),
            # Scale-out: +1 shard over the SAME store; the modulo change
            # reroutes most fingerprints away from the tier that holds
            # them, forcing warm peer fetches.
            ("scale_out_warm", 3, f"replicated:{cluster_store}"),
        )
        for name, shards, store in runs:
            process, url = boot_server(store, workers, shards)
            try:
                latencies, wall = run_unique_phase(
                    url, clients, requests_per_client, circuits, technique)
                report[name] = phase_stats(latencies, wall)
                if name == "scale_out_warm":
                    stores = ReproClient(url).metrics().get("stores", {})
                    report["cross_shard_l2_hits"] = int(
                        stores.get("replicated", {}).get("peer_hits", 0))
            finally:
                stop_server(process)
        one = report["one_shard"]["requests_per_second"]
        two = report["two_shards"]["requests_per_second"]
        report["two_shard_speedup"] = two / one if one > 0 else float("inf")
    finally:
        shutil.rmtree(single_store, ignore_errors=True)
        shutil.rmtree(cluster_store, ignore_errors=True)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--requests", type=int, default=5,
                        help="requests per client per phase (default 5)")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker threads (default 4)")
    parser.add_argument("--shards", type=int, default=1,
                        help="server shard processes (default 1)")
    parser.add_argument("--technique", default="direct",
                        help="technique key every request compiles with "
                             "(default direct)")
    parser.add_argument("--scaling", action="store_true",
                        help="also run the 1-vs-2-shard scaling comparison "
                             "and the 3-shard scale-out warm run (adds a "
                             "'scaling' block to the 'server' key)")
    parser.add_argument("--scaling-technique", default="sat_p",
                        help="technique for the scaling runs (default "
                             "sat_p: CPU-bound compiles measure shard "
                             "scaling, not HTTP relay overhead)")
    parser.add_argument(
        "-o", "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_perf.json"),
        help="JSON report to merge the 'server' key into "
             "(default: BENCH_perf.json at the repo root)",
    )
    args = parser.parse_args(argv)

    report = bench_server(args.clients, args.requests, args.workers,
                          args.shards, args.technique)
    if args.scaling:
        report["scaling"] = bench_scaling(args.clients, args.requests,
                                          args.workers,
                                          args.scaling_technique)

    existing: Dict[str, object] = {}
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = {}
    existing["server"] = report
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote 'server' key to {args.output}")
    for phase in ("cold", "warm"):
        stats = report[phase]
        print(f"  {phase}: {stats['requests_per_second']:8.2f} req/s  "
              f"p50 {stats['p50_ms']:7.1f} ms  p95 {stats['p95_ms']:7.1f} ms  "
              f"({stats['requests']} requests, {args.clients} clients)")
    print(f"  warm speedup {report['warm_speedup']:.2f}x, "
          f"{report['warm_l2_hits']} L2 hits after restart")
    if args.scaling:
        scaling = report["scaling"]
        for name in ("one_shard", "two_shards", "scale_out_warm"):
            stats = scaling[name]
            print(f"  {name:<15} {stats['requests_per_second']:8.2f} req/s  "
                  f"p50 {stats['p50_ms']:7.1f} ms")
        print(f"  2-shard speedup {scaling['two_shard_speedup']:.2f}x "
              f"({scaling['cpu_count']} cpu), "
              f"{scaling['cross_shard_l2_hits']} cross-shard L2 hits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
