"""Tracked performance-benchmark harness (emits ``BENCH_perf.json``).

Run with::

    PYTHONPATH=src python benchmarks/perf/run_perf.py --preset smoke

See :mod:`benchmarks.perf.suite` for the individual kernels benchmarked
and the JSON schema of the report.
"""
