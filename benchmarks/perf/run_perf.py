"""CLI for the perf-benchmark harness; writes ``BENCH_perf.json``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/perf/run_perf.py --preset smoke
    PYTHONPATH=src python benchmarks/perf/run_perf.py --preset full -o BENCH_perf.json
    PYTHONPATH=src python benchmarks/perf/run_perf.py --preset quality

The ``quality`` preset refreshes *both* checked-in reports: the smoke
perf matrix into ``BENCH_perf.json`` and the fast golden-quality subset
(``python -m repro.golden``) into ``BENCH_quality.json``; its exit code
reflects the quality gate, so a regressed tree fails the refresh.

The script bootstraps ``sys.path`` itself, so a plain
``python benchmarks/perf/run_perf.py`` also works without PYTHONPATH.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
for entry in (os.path.join(_REPO_ROOT, "src"), os.path.dirname(os.path.dirname(os.path.abspath(__file__)))):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from perf.suite import PRESETS, run_suite  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", choices=sorted(PRESETS) + ["quality"],
                        default="full")
    parser.add_argument(
        "-o", "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_perf.json"),
        help="path of the JSON report (default: BENCH_perf.json at the repo root)",
    )
    parser.add_argument(
        "--quality-output",
        default=os.path.join(_REPO_ROOT, "BENCH_quality.json"),
        help="path of the golden-quality report written by --preset quality "
             "(default: BENCH_quality.json at the repo root)",
    )
    args = parser.parse_args(argv)

    # "quality" = the smoke perf matrix + the fast golden-quality gate.
    report = run_suite("smoke" if args.preset == "quality" else args.preset)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {args.output}")
    for row in report["statevector"]:
        print(
            f"statevector {row['num_qubits']:>2}q: {1e3 * row['kernel_seconds']:8.2f} ms "
            f"(dense {1e3 * row['dense_seconds']:8.2f} ms, {row['speedup']:8.1f}x)"
        )
    for row in report["density"]:
        print(
            f"density     {row['num_qubits']:>2}q: {1e3 * row['kernel_seconds']:8.2f} ms "
            f"(dense {1e3 * row['dense_seconds']:8.2f} ms, {row['speedup']:8.1f}x)"
        )
    smt = report["smt"]
    print(
        f"smt {smt['instance']}: incremental "
        f"{1e3 * smt['modes']['incremental']['seconds']:.2f} ms vs legacy "
        f"{1e3 * smt['modes']['legacy_rebuild']['seconds']:.2f} ms ({smt['speedup']:.2f}x)"
    )
    sat = report["sat"]
    print(
        f"sat {sat['instance']}: {1e3 * sat['seconds']:.2f} ms "
        f"({sat['propagations_per_second']:.0f} props/s)"
    )
    for row in report["compile"]:
        print(f"compile {row['workload']} [{row['technique']}]: {1e3 * row['seconds']:.2f} ms")
    trace = report["trace"]
    print(
        f"trace {trace['workload']} [{trace['technique']}]: "
        f"enabled {trace['enabled_overhead_percent']:+.1f}% "
        f"({trace['events_per_compile']:.0f} events/compile), "
        f"disabled ~{trace['disabled_overhead_percent']:.3f}% "
        f"({trace['disabled_hook_ns']:.0f} ns/hook)"
    )
    telemetry = report["telemetry"]
    print(
        f"telemetry {telemetry['workload']} [{telemetry['technique']}]: "
        f"enabled {telemetry['enabled_overhead_percent']:+.1f}%, "
        f"disabled counter {telemetry['disabled_counter_ns']:.0f} ns/inc, "
        f"helper {telemetry['disabled_helper_ns']:.0f} ns/call"
    )
    resilience = report["resilience"]
    print(
        f"resilience {resilience['workload']} [{resilience['technique']}]: "
        f"disabled check {resilience['disabled_check_ns']:.0f} ns "
        f"({resilience['disabled_vs_trace_hook']:.2f}x trace hook), "
        f"armed {resilience['armed_check_ns']:.0f} ns, "
        f"budgeted compile {resilience['budgeted_overhead_percent']:+.1f}%, "
        f"degrade roundtrip {1e3 * resilience['degrade_roundtrip_seconds']:.0f} ms"
    )
    for row in report["theory_engine_ab"]:
        inc = row["modes"]["incremental"]["solve_seconds"]
        leg = row["modes"]["legacy_rebuild"]["solve_seconds"]
        print(
            f"solve-stage {row['workload']}: incremental {1e3 * inc:.2f} ms vs "
            f"legacy {1e3 * leg:.2f} ms ({row['solve_speedup']:.2f}x)"
        )
    qasm_suite = report["suite"]
    print(
        f"suite [{qasm_suite['technique']}] {qasm_suite['benchmarks']} bundled "
        f"benchmarks: {qasm_suite['circuits_per_second']:.2f} circuits/s "
        f"({1e3 * qasm_suite['seconds']:.1f} ms total)"
    )
    service = report["service"]
    print(
        f"service [{service['technique']}] {service['workloads']} workloads, "
        f"{service['workers']} workers: cold {service['cold_circuits_per_second']:.2f} c/s, "
        f"warm {service['warm_circuits_per_second']:.2f} c/s "
        f"({service['warm_speedup']:.1f}x, {service['warm_store_hits']} store hits)"
    )

    if args.preset == "quality":
        from repro.golden import run_golden

        quality = run_golden(output=args.quality_output)
        print(quality.table())
        print(quality.summary_line())
        print(f"wrote {args.quality_output}")
        return quality.exit_code
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
