"""Figure 1: eigenenergies of the two-spin Hamiltonian in the two regimes."""

import numpy as np

from benchmarks._common import write_table
from repro.hardware import crot_regime_pair, eigenenergies_vs_detuning, swap_regime_pair


def test_fig1a_swap_regime(benchmark):
    """Fig. 1a: J >> dEz — the antiparallel branches split into S/T0 with detuning."""
    pair = swap_regime_pair()
    detunings = np.linspace(0.0, 85.0, 18)
    sweep = benchmark(eigenenergies_vs_detuning, pair, tuple(detunings))
    rows = [
        [f"{sweep['detuning'][i]:.1f}"] + [f"{sweep[f'E{k}'][i]:+.4f}" for k in range(4)]
        for i in range(len(detunings))
    ]
    table = write_table("fig1a.txt", ["detuning_GHz", "E0", "E1", "E2", "E3"], rows)
    print("\nFigure 1a — eigenenergies, swap regime (J >> dEz)\n" + table)
    # The singlet-triplet splitting (middle branches) grows with detuning.
    splitting_start = sweep["E2"][0] - sweep["E1"][0]
    splitting_end = sweep["E2"][-1] - sweep["E1"][-1]
    assert splitting_end > splitting_start


def test_fig1b_crot_regime(benchmark):
    """Fig. 1b: dEz >> J — antiparallel branches shift, parallel branches do not."""
    pair = crot_regime_pair()
    detunings = np.linspace(0.0, 90.0, 18)
    sweep = benchmark(eigenenergies_vs_detuning, pair, tuple(detunings))
    rows = [
        [f"{sweep['detuning'][i]:.1f}"] + [f"{sweep[f'E{k}'][i]:+.4f}" for k in range(4)]
        for i in range(len(detunings))
    ]
    table = write_table("fig1b.txt", ["detuning_GHz", "E0", "E1", "E2", "E3"], rows)
    print("\nFigure 1b — eigenenergies, CROT/CPHASE regime (dEz >> J)\n" + table)
    assert abs(sweep["E0"][0] - sweep["E0"][-1]) < 1e-9
    assert abs(sweep["E3"][0] - sweep["E3"][-1]) < 1e-9
    assert sweep["E1"][-1] < sweep["E1"][0]
