"""Fast perf-harness smoke test (runs in the default tier and in CI).

Executes the ``smoke`` preset end to end and checks the report invariants
that gate the perf trajectory: the JSON is serializable, the kernel paths
beat (or match) the dense baselines where promised, and both theory
engines agree on every optimum.
"""

import json

from perf.suite import run_suite


def test_perf_smoke_suite(tmp_path):
    report = run_suite("smoke")

    # The report must be valid machine-readable JSON.
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True))
    assert json.loads(path.read_text())["preset"] == "smoke"

    # Acceptance criterion: >= 10x on 10-qubit statevector simulation.
    ten_qubit = [row for row in report["statevector"] if row["num_qubits"] == 10]
    assert ten_qubit and ten_qubit[0]["speedup"] >= 10

    # Both theory engines must agree on the OMT optimum, and the
    # incremental engine must not do more theory work than the legacy one.
    smt = report["smt"]
    modes = smt["modes"]
    assert modes["incremental"]["optimum"] == modes["legacy_rebuild"]["optimum"]
    assert modes["incremental"]["theory_checks"] <= modes["legacy_rebuild"]["theory_checks"]

    # The end-to-end A/B on the adaptation workload agreed on the optimum
    # (asserted inside the bench) and recorded solve-stage times.
    for row in report["theory_engine_ab"]:
        assert row["modes"]["incremental"]["solve_seconds"] > 0
        assert row["modes"]["legacy_rebuild"]["solve_seconds"] > 0

    # Stage timings from the pipeline report are present for every compile.
    for row in report["compile"]:
        assert row["seconds"] > 0
        assert "solve" in row["stage_seconds"] or row["technique"] in ("direct", "kak_cz", "kak_dcz")

    # Service-layer throughput landed, and the warm (persistent-store)
    # pass really was served from disk.
    service = report["service"]
    assert service["cold_circuits_per_second"] > 0
    assert service["warm_circuits_per_second"] > 0
    assert service["warm_store_hits"] > 0

    # Bundled-benchmark (QASM interop) throughput landed, with one row
    # per benchmark actually compiled.
    suite = report["suite"]
    assert suite["circuits_per_second"] > 0
    assert suite["benchmarks"] == len(suite["per_benchmark"]) > 0
