"""Figure 7: Hellinger fidelity change vs idle-time decrease (noisy simulation)."""

import pytest

import repro
from benchmarks._common import evaluation_sweep, hellinger_sweep, techniques, write_table
from repro.hardware import spin_qubit_target
from repro.simulator import DensityMatrixSimulator
from repro.workloads import random_template_circuit

pytestmark = pytest.mark.slow


def test_fig7_hellinger_vs_idle(benchmark):
    """Regenerate the Fig. 7 scatter: (idle-time decrease, Hellinger change)."""
    circuit = random_template_circuit(3, 20, seed=0)
    target = spin_qubit_target(3, "D0")
    adapted = repro.compile(circuit, target, "sat_p").adapted_circuit
    benchmark(DensityMatrixSimulator(target).run, adapted)

    adaptation = evaluation_sweep("D0")
    hellinger = hellinger_sweep("D0")
    technique_names = techniques()
    rows = []
    for workload in adaptation:
        baseline_idle = adaptation[workload]["direct"].cost.total_idle_time
        baseline_hellinger = hellinger[workload]["direct"]
        for name in technique_names:
            idle = adaptation[workload][name].cost.total_idle_time
            idle_decrease = (baseline_idle - idle) / baseline_idle if baseline_idle > 0 else 0.0
            hellinger_change = (
                (hellinger[workload][name] - baseline_hellinger) / baseline_hellinger
                if baseline_hellinger > 0
                else 0.0
            )
            rows.append(
                [workload, name, f"{100 * idle_decrease:+.1f}%", f"{100 * hellinger_change:+.2f}%"]
            )
    table = write_table(
        "fig7_hellinger.txt",
        ["workload", "technique", "idle_time_decrease", "hellinger_fidelity_change"],
        rows,
    )
    print("\nFigure 7 — Hellinger fidelity change vs idle-time decrease (D0)\n" + table)

    # Qualitative shape: averaged over the workloads, the SMT approaches do
    # not lose Hellinger fidelity relative to direct translation and achieve
    # the largest idle-time reductions.
    def mean(values):
        values = list(values)
        return sum(values) / len(values)

    sat_idle_decrease = mean(
        (adaptation[w]["direct"].cost.total_idle_time - adaptation[w]["sat_r"].cost.total_idle_time)
        / max(adaptation[w]["direct"].cost.total_idle_time, 1e-9)
        for w in adaptation
    )
    baseline_like = mean(
        (adaptation[w]["direct"].cost.total_idle_time - adaptation[w]["template_r"].cost.total_idle_time)
        / max(adaptation[w]["direct"].cost.total_idle_time, 1e-9)
        for w in adaptation
    )
    assert sat_idle_decrease >= baseline_like - 1e-9
    sat_hellinger = mean(hellinger[w]["sat_p"] for w in adaptation)
    direct_hellinger = mean(hellinger[w]["direct"] for w in adaptation)
    assert sat_hellinger >= direct_hellinger - 0.02
