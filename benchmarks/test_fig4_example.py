"""Figure 4 / Eq. (11): the worked adaptation example and its block arithmetic."""

from benchmarks._common import write_table
from repro.circuits import QuantumCircuit
import repro
from repro.core import (
    AdaptationModel,
    OBJECTIVE_IDLE,
    evaluate_rules,
    preprocess,
    standard_rules,
)
from repro.hardware import spin_qubit_target


def example_circuit():
    """A 3-qubit circuit in the IBM basis with the Fig. 4 block structure
    (three two-qubit blocks containing CNOTs and SWAPs)."""
    circuit = QuantumCircuit(3, name="fig4_example")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(0, 1)
    circuit.rz(0.5, 1)
    circuit.cx(1, 2)
    circuit.swap(1, 2)
    circuit.cx(0, 1)
    circuit.h(2)
    return circuit


def test_fig4_worked_example(benchmark):
    """Regenerate the per-block duration terms and the chosen substitutions."""
    circuit = example_circuit()
    # The worked example excludes the diabatic CZ gate.
    target = spin_qubit_target(3, "D0", include_diabatic_cz=False)

    def run():
        preprocessed = preprocess(circuit, target)
        substitutions = evaluate_rules(preprocessed, standard_rules())
        solution = AdaptationModel(preprocessed, substitutions, OBJECTIVE_IDLE).solve()
        return preprocessed, substitutions, solution

    preprocessed, substitutions, solution = benchmark(run)

    rows = []
    for substitution in substitutions:
        rows.append(
            [
                f"block{substitution.block_index}",
                substitution.rule_name,
                f"{preprocessed.blocks[substitution.block_index].reference_duration:.0f}",
                f"{substitution.duration_delta:+.0f}",
                "chosen" if substitution in solution.chosen_substitutions else "-",
            ]
        )
    table = write_table(
        "fig4_example.txt",
        ["block", "rule", "reference_duration_ns", "delta_duration_ns", "selected"],
        rows,
    )
    print("\nFigure 4 / Eq. 11 — block duration terms and SMT selection (idle objective)\n" + table)

    # Eq. (11) structure: every block exposes a KAK term, the CNOT blocks a
    # CROT term, the SWAP-containing blocks both swap realizations.
    names_block0 = {s.rule_name for s in substitutions if s.block_index == 0}
    assert {"kak", "crot", "swap_d", "swap_c"} <= names_block0
    # The solved model applies at least one duration-reducing substitution.
    assert any(s.duration_delta < 0 for s in solution.chosen_substitutions)

    # End-to-end adaptation of the example with all three objectives.
    result = repro.compile(circuit, target, technique="sat_r", verify=True)
    assert result.cost.duration <= result.baseline_cost.duration + 1e-6
