"""Figure 5: change in circuit fidelity (product of gate fidelities) vs baseline."""

import pytest

import repro
from benchmarks._common import evaluation_sweep, techniques, write_table
from repro.hardware import spin_qubit_target
from repro.workloads import random_template_circuit

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("durations", ["D0", "D1"])
def test_fig5_circuit_fidelity_change(benchmark, durations):
    """Regenerate the Fig. 5 series: relative fidelity change per technique."""
    # Benchmark the headline technique on a representative workload; the full
    # sweep is computed (and cached) outside the timed region.
    circuit = random_template_circuit(3, 20, seed=0)
    target = spin_qubit_target(3, durations)
    benchmark(repro.compile, circuit, target, "sat_f", use_cache=False)

    sweep = evaluation_sweep(durations)
    technique_names = techniques()
    rows = []
    for workload, per_technique in sweep.items():
        baseline = per_technique["direct"].cost.gate_fidelity_product
        row = [workload]
        for name in technique_names:
            change = (per_technique[name].cost.gate_fidelity_product - baseline) / baseline
            row.append(f"{100 * change:+.2f}%")
        rows.append(row)
    table = write_table(f"fig5_fidelity_{durations}.txt", ["workload"] + technique_names, rows)
    print(f"\nFigure 5 — change in circuit fidelity vs direct translation ({durations})\n" + table)

    # Qualitative shape checks from the paper:
    for workload, per_technique in sweep.items():
        baseline = per_technique["direct"].cost.gate_fidelity_product
        # SAT_F never loses fidelity relative to the baseline.
        assert per_technique["sat_f"].cost.gate_fidelity_product >= baseline - 1e-9
        # SAT_F is at least as good as template optimization with the same goal.
        assert (
            per_technique["sat_f"].cost.gate_fidelity_product
            >= per_technique["template_f"].cost.gate_fidelity_product - 1e-9
        )
        # KAK with the diabatic CZ decreases the fidelity (Fig. 5 observation).
        assert per_technique["kak_dcz"].cost.gate_fidelity_product <= baseline + 1e-12
