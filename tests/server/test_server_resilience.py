"""Gateway/client/router resilience: deadline plumbing over the wire,
Retry-After backpressure, client retry caps, and shard crash recovery."""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

import repro
from repro.api import clear_compilation_cache
from repro.server import (
    BadRequestError,
    CompilationFailedError,
    ReproClient,
    ServerSaturatedError,
    ShardRouter,
    build_server,
)
from repro.server.app import DEADLINE_HEADER
from repro.workloads import ghz_circuit, qft_circuit


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


@pytest.fixture(scope="module")
def server():
    server = build_server(workers=2).start_background()
    yield server
    server.stop(drain=False)


@pytest.fixture(scope="module")
def client(server):
    return ReproClient(server.url, timeout=120.0)


def wire_circuit(variant=0):
    circuit = repro.QuantumCircuit(2, name=f"res_wire_{variant}")
    circuit.h(0)
    circuit.cx(0, 1)
    for _ in range(variant):
        circuit.rz(0.25, 0)
    return circuit


class TestDeadlinePlumbing:
    def test_deadline_in_the_body_degrades_over_the_wire(self, client):
        result = client.compile(wire_circuit(), technique="sat_p",
                                use_cache=False, deadline=0.0,
                                on_deadline="degrade", fallback="direct",
                                timeout=120)
        assert result.technique == "direct"
        assert result.report.degraded_from == "sat_p"
        events = result.report.deadline_events
        assert events and events[0]["reason"] == "deadline"

    def test_deadline_in_the_body_fails_the_job_typed(self, client):
        job = client.submit(wire_circuit(1), technique="sat_p",
                            use_cache=False, deadline=0.0)
        with pytest.raises(CompilationFailedError, match="Deadline"):
            job.result(timeout=120)

    def test_deadline_header_applies_when_the_body_has_none(self, server,
                                                            client):
        payload = {
            "circuit": wire_circuit(2).to_dict(),
            "technique": "sat_p",
            "use_cache": False,
            "on_deadline": "degrade",
            "fallback": "direct",
        }
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json",
                     DEADLINE_HEADER: "0.0"},
            method="POST")
        with urllib.request.urlopen(request, timeout=60) as response:
            job_id = json.loads(response.read())["job_id"]
        result = client.result(job_id, timeout=120)
        assert result.report.degraded_from == "sat_p"

    def test_body_timeout_wins_over_the_header(self, server, client):
        payload = {
            "circuit": wire_circuit(3).to_dict(),
            "technique": "direct",
            "use_cache": False,
            "timeout": 300.0,
        }
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json",
                     DEADLINE_HEADER: "0.0"},
            method="POST")
        with urllib.request.urlopen(request, timeout=60) as response:
            job_id = json.loads(response.read())["job_id"]
        result = client.result(job_id, timeout=120)
        assert result.technique == "direct"
        assert result.report.degraded_from is None

    def test_invalid_deadline_settings_are_rejected(self, client):
        with pytest.raises(BadRequestError):
            client.submit(wire_circuit(), technique="direct",
                          deadline=-1.0)
        with pytest.raises(BadRequestError):
            client.submit(wire_circuit(), technique="direct",
                          deadline=5.0, on_deadline="panic")

    def test_portfolio_with_a_deadline_is_rejected(self, client):
        with pytest.raises(BadRequestError, match="portfolio"):
            client.submit(wire_circuit(), portfolio=["direct", "sat_r"],
                          deadline=5.0)


class TestRetryAfterEmission:
    def test_saturated_gateway_answers_503_with_retry_after(self):
        server = build_server(workers=1, max_pending=1).start_background()
        try:
            client = ReproClient(server.url, timeout=60.0, retries=0)
            # Pin the single worker on a long (self-expiring) solve, then
            # fill the one queue slot.
            running = client.submit(qft_circuit(4), technique="sat_p",
                                    use_cache=False, deadline=30.0)
            queued = client.submit(wire_circuit(), technique="direct",
                                   use_cache=False)
            saturated = None
            for variant in range(1, 30):
                payload = {"circuit": wire_circuit(variant).to_dict(),
                           "technique": "direct", "use_cache": False}
                request = urllib.request.Request(
                    server.url + "/v1/jobs",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST")
                try:
                    urllib.request.urlopen(request, timeout=60).read()
                except urllib.error.HTTPError as error:
                    saturated = error
                    break
            assert saturated is not None, "gateway never saturated"
            assert saturated.code == 503
            assert saturated.headers["Retry-After"] == "1"
            body = json.loads(saturated.read())
            assert body["retry_after"] == 1.0
            assert body["retry"] is True
            # Unwedge: cancel the pinned solve; the queued job completes.
            client.cancel(running.job_id)
            assert queued.result(timeout=120).technique == "direct"
        finally:
            server.stop(drain=False)


class _Always503(BaseHTTPRequestHandler):
    """A server that is permanently busy, with a configurable hint."""

    retry_after = "1"

    def _answer(self):
        body = json.dumps({"error": "busy", "retry": True}).encode()
        self.send_response(503)
        self.send_header("Retry-After", self.retry_after)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _answer
    do_POST = _answer

    def log_message(self, *args):  # noqa: D102 - silence test output
        pass


@pytest.fixture
def busy_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _Always503)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()


class TestClientRetryDiscipline:
    def test_retry_after_overrides_the_backoff(self, busy_server):
        """With a 10s backoff but a 0s Retry-After hint, the retries run
        immediately — the server's horizon wins."""
        _Always503.retry_after = "0"
        client = ReproClient(busy_server, timeout=10.0, retries=2,
                             backoff=10.0, max_retry_seconds=60.0)
        started = time.monotonic()
        with pytest.raises(ServerSaturatedError):
            client.healthz()
        assert time.monotonic() - started < 5.0

    def test_max_retry_seconds_caps_the_total_wall_clock(self, busy_server):
        _Always503.retry_after = "1"
        client = ReproClient(busy_server, timeout=10.0, retries=10,
                             backoff=0.1, max_retry_seconds=1.5)
        started = time.monotonic()
        with pytest.raises(ServerSaturatedError):
            client.healthz()
        elapsed = time.monotonic() - started
        assert 0.5 <= elapsed < 5.0, elapsed


class TestShardRecovery:
    def test_generation_ids_route_back_to_their_shard(self):
        router = ShardRouter(shards=4, workers=1)
        assert router.shard_for_job("s2-j17") == 2
        assert router.shard_for_job("s2g3-j17") == 2
        assert router.shard_for_job("s0g1-j1") == 0
        assert router.shard_for_job("s9-j1") is None
        assert router.shard_for_job("s9g2-j1") is None
        assert router.shard_for_job("sXg1-j1") is None

    def test_killed_shard_respawns_and_mints_generation_ids(self, tmp_path):
        router = ShardRouter(shards=2, workers=1,
                             store=str(tmp_path)).start()
        try:
            client = ReproClient(router.url, timeout=120.0, retries=5,
                                 backoff=0.2, max_retry_seconds=30.0)
            os.kill(router._processes[0].pid, signal.SIGKILL)
            # Traffic keeps flowing while shard 0 is down (failover).
            for variant in range(4):
                result = client.compile(wire_circuit(variant),
                                        technique="direct", use_cache=False,
                                        timeout=120)
                assert result.technique == "direct"
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if (router.respawns().get(0, 0) >= 1
                        and len(router.live_shards()) == 2):
                    break
                time.sleep(0.2)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["live"] == 2
            assert health["respawns"]["s0"] >= 1
            # The respawned shard mints generation-tagged ids that route
            # back to it for result lookups.
            generation_job = None
            for variant in range(10, 30):
                job = client.submit(wire_circuit(variant),
                                    technique="direct", use_cache=False)
                if job.job_id.startswith("s0g"):
                    generation_job = job
                    break
            assert generation_job is not None, "no job landed on s0g*"
            assert generation_job.result(timeout=120).technique == "direct"
        finally:
            router.shutdown()
