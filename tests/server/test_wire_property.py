"""Property: the circuit JSON wire format round-trips bit-exactly over HTTP.

``QuantumCircuit.to_dict()`` goes out as the POST body, the server
decodes it into a real circuit and echoes its canonical wire form back;
``from_dict`` of the response must reproduce the original **bit-exactly**
(every gate name, parameter float and matrix entry) — JSON floats
round-trip exactly in Python, so nothing may be lost in between.

Circuits are random "library soup" over the full gate-builder library,
up to 5 qubits (the satellite bar).
"""

import random

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_BUILDERS
from repro.server import ReproClient, build_server

#: Parameter arities of every builder (probed once at import).
_ARITIES = {}
for _name, _builder in GATE_BUILDERS.items():
    for _params in ((), (0.5,), (0.5, 0.25), (0.5, 0.25, -0.5)):
        try:
            _builder(*_params)
            _ARITIES[_name] = len(_params)
            break
        except TypeError:
            continue


def random_library_circuit(num_qubits: int, depth: int, seed: int) -> QuantumCircuit:
    """A random circuit drawing uniformly from the whole gate library."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"wire_soup_{num_qubits}_{seed}")
    names = sorted(_ARITIES)
    for _ in range(depth):
        name = rng.choice(names)
        builder = GATE_BUILDERS[name]
        gate = builder(*(rng.uniform(-3.1, 3.1) for _ in range(_ARITIES[name])))
        if gate.num_qubits > num_qubits:
            continue
        qubits = rng.sample(range(num_qubits), gate.num_qubits)
        circuit.append(gate, qubits)
    return circuit


@pytest.fixture(scope="module")
def client():
    server = build_server(workers=1).start_background()
    yield ReproClient(server.url, timeout=60.0)
    server.stop(drain=False)


def assert_bit_exact(original: QuantumCircuit, client: ReproClient) -> None:
    echoed = client.validate_circuit(original)
    # The canonical wire form the server decoded must equal what was sent
    # (dict equality covers every float bit-exactly: JSON round-trips
    # Python floats through repr).
    assert echoed["circuit"] == original.to_dict()
    back = QuantumCircuit.from_dict(echoed["circuit"])
    assert back.num_qubits == original.num_qubits
    assert len(back.instructions) == len(original.instructions)
    for ours, theirs in zip(original.instructions, back.instructions):
        assert ours.gate.name == theirs.gate.name
        assert ours.qubits == theirs.qubits
        assert list(ours.gate.params) == list(theirs.gate.params)
        ours_matrix = np.asarray(ours.gate.matrix, dtype=complex)
        theirs_matrix = np.asarray(theirs.gate.matrix, dtype=complex)
        assert np.array_equal(ours_matrix, theirs_matrix)  # Exact, no tolerance.


@pytest.mark.parametrize("seed", range(12))
def test_random_soup_circuits_round_trip_bit_exactly(seed, client):
    rng = random.Random(1000 + seed)
    num_qubits = rng.randint(1, 5)
    depth = rng.randint(1, 24)
    assert_bit_exact(random_library_circuit(num_qubits, depth, seed), client)


def test_empty_and_single_gate_edges(client):
    assert_bit_exact(QuantumCircuit(1, name="empty"), client)
    tiny = QuantumCircuit(2, name="tiny")
    tiny.cx(1, 0)
    assert_bit_exact(tiny, client)
