"""Multi-node serving end-to-end: a real authenticated 2-shard deployment.

One process fixture (shards are not free) exercises the whole cluster
surface: API-key auth at the router edge, SSE event streams relayed
through it, the replicated store's cross-shard peer fetch, rate-limit
and quota rejections with ``Retry-After``, and the client honoring it.
"""

import json
import time

import pytest

import repro
from repro.api import clear_compilation_cache
from repro.server import (
    AuthenticationError,
    PermissionDeniedError,
    RateLimitedError,
    ReproClient,
    ShardRouter,
)

KEYS = {"keys": [
    {"key": "sk-prod", "name": "prod", "priority": 9,
     "rate": 1000, "burst": 1000},
    {"key": "sk-throttled", "name": "throttled", "priority": 3,
     "rate": 1.0, "burst": 1},
    {"key": "sk-metered", "name": "metered", "priority": 5,
     "rate": 1000, "burst": 1000, "daily_quota": 3},
    {"key": "sk-old", "name": "old", "expires": "2020-01-01"},
]}


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    store = str(tmp_path_factory.mktemp("cluster-store"))
    # Shards fork from this process: clear the global L1 first, or
    # circuits earlier tests compiled (the fingerprint ignores names)
    # get served from inherited memory and never touch the store.
    clear_compilation_cache()
    with ShardRouter(shards=2, workers=2, store=f"replicated:{store}",
                     auth=json.dumps(KEYS)) as router:
        yield router, ReproClient(router.url, timeout=120.0,
                                  api_key="sk-prod")


def _circuit(name):
    circuit = repro.QuantumCircuit(3, name=name)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    return circuit


class TestAuthAtTheEdge:
    def test_unauthenticated_submission_is_401(self, cluster):
        router, _ = cluster
        anonymous = ReproClient(router.url, retries=0, api_key="")
        with pytest.raises(AuthenticationError) as excinfo:
            anonymous.submit(_circuit("anon"), technique="direct")
        assert excinfo.value.status == 401

    def test_unknown_key_is_401(self, cluster):
        router, _ = cluster
        wrong = ReproClient(router.url, retries=0, api_key="sk-nope")
        with pytest.raises(AuthenticationError):
            wrong.submit(_circuit("wrong"), technique="direct")

    def test_expired_key_is_403(self, cluster):
        router, _ = cluster
        stale = ReproClient(router.url, retries=0, api_key="sk-old")
        with pytest.raises(PermissionDeniedError) as excinfo:
            stale.submit(_circuit("stale"), technique="direct")
        assert excinfo.value.status == 403

    def test_health_and_metrics_stay_open(self, cluster):
        router, _ = cluster
        anonymous = ReproClient(router.url, retries=0, api_key="")
        assert anonymous.healthz()["status"] in ("ok", "degraded")
        assert "shards" in anonymous.metrics()

    def test_events_require_a_key_too(self, cluster):
        router, _ = cluster
        anonymous = ReproClient(router.url, retries=0, api_key="")
        with pytest.raises(AuthenticationError):
            list(anonymous.stream("s0-j1"))


class TestAuthenticatedServing:
    def test_compile_streams_lifecycle_through_the_router(self, cluster):
        _, client = cluster
        job = client.submit(_circuit("sse"), technique="direct")
        names = [name for name, _ in job.stream(timeout=120)]
        assert names[-1] == "done"
        assert "queued" in names
        result = job.wait(timeout=60)
        assert result.cost.gate_count > 0

    def test_wait_returns_the_result_for_finished_jobs(self, cluster):
        # Replay-before-wait: streaming a long-done job ends immediately.
        _, client = cluster
        job = client.submit(_circuit("sse"), technique="direct")
        job.result(timeout=120)
        started = time.monotonic()
        assert job.wait(timeout=60).cost.gate_count > 0
        assert time.monotonic() - started < 30


class TestRateLimits:
    def test_throttled_key_gets_429_with_retry_after(self, cluster):
        router, _ = cluster
        throttled = ReproClient(router.url, retries=0,
                                api_key="sk-throttled")
        statuses = set()
        for i in range(3):
            try:
                throttled.job_status(f"s0-j{i}")
                statuses.add(200)
            except RateLimitedError as error:
                statuses.add(error.status)
                assert error.payload.get("retry_after", 0) > 0
            except Exception:
                statuses.add(404)  # Unknown job: the request was admitted.
        assert 429 in statuses

    def test_client_honors_retry_after_and_recovers(self, cluster):
        # burst 1 at 1 req/s: the second request is throttled with a
        # sub-second Retry-After; a retrying client sleeps and succeeds.
        router, _ = cluster
        patient = ReproClient(router.url, retries=3, api_key="sk-throttled")
        time.sleep(1.2)  # Refill the bucket from earlier tests.
        patient.healthz()  # Open route: no charge, warms the connection.
        started = time.monotonic()
        first = patient.submit(_circuit("patient-a"), technique="direct")
        second = patient.submit(_circuit("patient-b"), technique="direct")
        elapsed = time.monotonic() - started
        # The second submit had to wait for the bucket (~1 s at 1 req/s).
        assert elapsed >= 0.5
        for job in (first, second):
            assert job.result(timeout=120).cost.gate_count > 0

    def test_quota_exhausts_mid_batch(self, cluster):
        router, _ = cluster
        metered = ReproClient(router.url, retries=0, api_key="sk-metered")
        admitted, refused = 0, 0
        for i in range(5):
            try:
                metered.job_status(f"s0-missing-{i}")
                admitted += 1
            except RateLimitedError as error:
                refused += 1
                # Quota refusals point at the UTC midnight rollover.
                assert error.payload.get("retry_after", 0) > 0
            except Exception:
                admitted += 1  # 404 == admitted, just unknown.
        assert admitted == 3
        assert refused == 2


class TestCrossShardStore:
    def test_peer_fetch_serves_the_other_shards_results(self, cluster):
        router, client = cluster
        # Shards keep private store tiers; submitting the same circuit
        # *directly* to both shards forces the second one to peer-fetch.
        shard_clients = [
            ReproClient(router.shard_url(i), timeout=120.0, api_key="sk-prod")
            for i in (0, 1)
        ]
        circuit = _circuit("xshard")
        first = shard_clients[0].compile(circuit, technique="direct")
        second = shard_clients[1].compile(circuit, technique="direct")
        assert first.cost == second.cost

        merged = client.metrics()
        stores = merged.get("stores", {})
        assert "replicated" in stores
        assert stores["replicated"]["peer_hits"] >= 1

    def test_store_statistics_aggregate_per_backend(self, cluster):
        _, client = cluster
        stores = client.metrics()["stores"]
        replicated = stores["replicated"]
        assert replicated["shards"] == 2
        assert replicated["puts"] >= 1
