"""The HTTP gateway end to end: real sockets, real compilations.

Every test here talks to an in-process ``ThreadingHTTPServer`` over
loopback HTTP — the exact wire a remote client sees.  The acceptance
test submits QASM over the wire and checks the returned adapted circuit
is unitary-equivalent to a locally compiled one.
"""

import json
import threading
import time
import urllib.request

import pytest

import repro
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.hardware import spin_qubit_target
from repro.interop import qasm_to_circuit
from repro.server import (
    BadRequestError,
    CompilationFailedError,
    JobNotFoundError,
    ReproClient,
    ServerSaturatedError,
    ServerUnavailableError,
    build_server,
)
from repro.service.scheduler import CompilationService

QASM_BELL_CHAIN = (
    'OPENQASM 2.0; include "qelib1.inc"; '
    "qreg q[3]; h q[0]; cx q[0],q[1]; cx q[1],q[2];"
)


@pytest.fixture(scope="module")
def server():
    server = build_server(workers=2).start_background()
    yield server
    server.stop(drain=False)


@pytest.fixture(scope="module")
def client(server):
    return ReproClient(server.url, timeout=120.0)


class TestEndToEnd:
    def test_qasm_submitted_over_the_wire_is_unitary_equivalent_locally(
        self, client
    ):
        """Acceptance: wire-compiled == locally-compiled, up to global phase."""
        job = client.submit(QASM_BELL_CHAIN, technique="direct", name="bell3")
        remote = job.result(timeout=300)

        circuit = qasm_to_circuit(QASM_BELL_CHAIN)
        local = repro.compile(
            circuit, spin_qubit_target(3, "D0"), "direct", use_cache=False
        )
        assert allclose_up_to_global_phase(
            circuit_unitary(remote.adapted_circuit),
            circuit_unitary(local.adapted_circuit),
        )
        # And the QASM export in the raw payload re-imports equivalently.
        payload = client.result_payload(job.job_id, timeout=60)
        reimported = qasm_to_circuit(payload["qasm"])
        assert allclose_up_to_global_phase(
            circuit_unitary(reimported), circuit_unitary(circuit)
        )

    def test_circuit_json_submission_returns_full_adaptation_result(self, client):
        circuit = QuantumCircuit(2, name="wire2")
        circuit.h(0)
        circuit.cx(0, 1)
        result = client.compile(circuit, technique="direct", timeout=300)
        assert result.technique == "direct"
        assert result.cost.gate_count > 0
        assert result.report is not None
        assert result.report.technique == "direct"

    def test_job_lifecycle_reaches_done_and_keeps_report(self, client):
        job = client.submit(QASM_BELL_CHAIN, technique="direct")
        job.result(timeout=300)
        status = client.job_status(job.job_id)
        assert status["status"] == "done"
        assert status["kind"] == "technique"
        assert status["report"]["technique"] == "direct"

    def test_portfolio_submission_records_contenders(self, client):
        circuit = QuantumCircuit(2, name="race")
        circuit.h(0)
        circuit.cx(0, 1)
        result = client.compile_portfolio(
            circuit, techniques=["direct", "kak_cz"], timeout=300
        )
        raced = {c["technique"] for c in result.report.contenders}
        assert raced == {"direct", "kak_cz"}

    def test_suite_index_and_suite_compile(self, client):
        names = {entry["name"] for entry in client.suite()}
        assert "ghz_n5" in names
        result = client.compile_suite("ghz_n5", technique="direct", timeout=300)
        assert result.cost.gate_count > 0

    def test_batch_manifest_over_http(self, client):
        jobs = client.submit_batch({
            "technique": "direct",
            "workloads": [
                {"kind": "ghz", "num_qubits": 3},
                {"kind": "qv", "num_qubits": 2, "depth": 2, "seed": 0},
            ],
        })
        assert len(jobs) == 2
        for job in jobs:
            assert job.result(timeout=300).cost.gate_count > 0


class TestValidationErrors:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(JobNotFoundError):
            client.job_status("j999999")

    def test_bad_qasm_is_400_with_position(self, client):
        with pytest.raises(BadRequestError, match="invalid QASM"):
            client.submit("OPENQASM 2.0; qreg q[2]; nonsense q[0];",
                          technique="direct")

    def test_bad_circuit_json_is_400(self, client):
        with pytest.raises(BadRequestError, match="invalid circuit JSON"):
            client.submit({"not": "a circuit"}, technique="direct")

    def test_unknown_technique_is_400(self, client):
        with pytest.raises(BadRequestError, match="unknown technique"):
            client.submit(QASM_BELL_CHAIN, technique="definitely_not_a_key")

    def test_unknown_suite_benchmark_is_404(self, client):
        with pytest.raises(JobNotFoundError):
            client.compile_suite("no_such_benchmark", technique="direct")

    def test_batch_partial_rejection_returns_accepted_job_ids(self, client):
        """One bad workload must not orphan the rest: ids still come back."""
        with pytest.raises(BadRequestError) as excinfo:
            client.submit_batch({
                "technique": "direct",
                # The fixed 2-qubit target rejects the 3-qubit workload
                # at submit time; the 2-qubit one is already enqueued.
                "target": {"num_qubits": 2},
                "workloads": [
                    {"kind": "ghz", "num_qubits": 2, "name": "fits"},
                    {"kind": "ghz", "num_qubits": 3, "name": "too_wide"},
                ],
            })
        payload = excinfo.value.payload
        assert [e["name"] for e in payload["errors"]] == ["too_wide"]
        accepted = payload["jobs"]
        assert len(accepted) == 1 and accepted[0]["name"] == "fits"
        # The accepted job is live and pollable.
        assert client.result(accepted[0]["job_id"],
                             timeout=300).cost.gate_count > 0

    def test_batch_manifest_rejects_server_side_paths(self, client):
        with pytest.raises(BadRequestError, match="path"):
            client.submit_batch({
                "workloads": [{"kind": "qasm", "path": "/etc/passwd"}],
            })

    def test_target_too_small_is_400(self, client):
        with pytest.raises(BadRequestError, match="qubits"):
            client.submit(QASM_BELL_CHAIN, target={"num_qubits": 2},
                          technique="direct")

    def test_technique_and_portfolio_together_is_400(self, server):
        body = json.dumps({
            "circuit": QASM_BELL_CHAIN,
            "technique": "direct",
            "portfolio": ["direct"],
        }).encode()
        request = urllib.request.Request(
            server.url + "/v1/jobs", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_wrong_method_is_405(self, server):
        request = urllib.request.Request(server.url + "/v1/jobs", method="GET")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 405

    def test_unroutable_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/v2/nothing")
        assert excinfo.value.code == 404

    def test_negative_content_length_is_rejected_not_hung(self, server):
        """read(-1) would pin the handler thread until client EOF."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port,
                                                timeout=10)
        try:
            connection.putrequest("POST", "/v1/jobs")
            connection.putheader("Content-Length", "-1")
            connection.endheaders()
            response = connection.getresponse()  # Must answer, not block.
            assert response.status == 400
        finally:
            connection.close()

    def test_malformed_content_length_is_400(self, server):
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port,
                                                timeout=10)
        try:
            connection.putrequest("POST", "/v1/jobs")
            connection.putheader("Content-Length", "banana")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_unknown_technique_400_lists_available_keys(self, client):
        try:
            client.submit(QASM_BELL_CHAIN, technique="definitely_not_a_key")
            raise AssertionError("unknown technique accepted")
        except BadRequestError as error:
            assert "sat_p" in error.payload["available"]

    def test_non_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs", data=b"not json {", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400


class TestHealthAndMetrics:
    def test_healthz_reports_ok_and_job_counts(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "total" in health["jobs"]

    def test_unmatched_paths_share_one_metrics_label(self, server, client):
        for probe in ("/wp-admin", "/.env", "/scanner/12345"):
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + probe)
        requests = client.metrics()["requests"]
        assert requests["GET <unmatched>"]["count"] >= 3
        assert not any("/wp-admin" in route for route in requests)

    def test_keepalive_connection_survives_an_error_with_a_body(self, server):
        """An errored POST must not poison the next request on the socket."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port,
                                                timeout=30)
        try:
            body = json.dumps({"circuit": "ignored"}).encode()
            # Unroutable path WITH a body: the server answers before
            # reading it and must close the connection cleanly rather
            # than parse the body bytes as the next request line.
            connection.request("POST", "/v2/nothing", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 404
            assert response.headers.get("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_metrics_serialize_and_carry_latency_percentiles(self, client):
        client.healthz()  # Guarantee at least one observed request.
        metrics = client.metrics()
        json.dumps(metrics)  # Must be pure JSON all the way down.
        route = metrics["requests"]["GET /healthz"]
        assert route["count"] >= 1
        assert route["p50_ms_lifetime"] >= 0.0
        assert route["p95_ms_lifetime"] >= route["p50_ms_lifetime"] - 1e-9
        assert "le_inf" in route["histogram_ms"]
        # Windowed percentiles ride along, labelled by their window.
        assert set(route["windows"]) == {"1m", "5m", "15m"}
        assert route["windows"]["1m"]["count"] >= 1
        assert metrics["service"]["workers"] == 2


class TestBackpressureAndCancel:
    """Deterministic queue behaviour via an injected blocking compile_fn."""

    @pytest.fixture()
    def gated(self):
        release = threading.Event()
        started = threading.Event()

        def blocking_compile(circuit, target, technique, **kwargs):
            started.set()
            assert release.wait(timeout=60), "test never released the gate"
            return repro.compile(circuit, target, technique, use_cache=False)

        service = CompilationService(workers=1, max_pending=1,
                                     compile_fn=blocking_compile)
        server = build_server(service=service).start_background()
        try:
            yield server, ReproClient(server.url, timeout=30.0, retries=0), \
                release, started
        finally:
            release.set()
            server.stop(drain=False)

    def _distinct_circuit(self, tag: int) -> QuantumCircuit:
        circuit = QuantumCircuit(2, name=f"gated{tag}")
        circuit.rz(0.1 * (tag + 1), 0)
        circuit.cx(0, 1)
        return circuit

    def test_full_queue_is_503_and_result_long_poll_is_202(self, gated):
        server, client, release, started = gated
        running = client.submit(self._distinct_circuit(0), technique="direct")
        assert started.wait(timeout=30)
        queued = client.submit(self._distinct_circuit(1), technique="direct")
        with pytest.raises(ServerSaturatedError):
            client.submit(self._distinct_circuit(2), technique="direct")
        # The running job is not done: a bounded long-poll must say 202
        # (surfaced as TimeoutError client-side), not block forever.
        with pytest.raises(TimeoutError):
            client.result(running.job_id, timeout=0.2)
        release.set()
        assert running.result(timeout=60).cost.gate_count > 0
        assert queued.result(timeout=60).cost.gate_count > 0

    def test_queued_job_cancels_and_result_is_410(self, gated):
        from repro.server import JobCancelledError

        server, client, release, started = gated
        client.submit(self._distinct_circuit(0), technique="direct")
        assert started.wait(timeout=30)
        queued = client.submit(self._distinct_circuit(1), technique="direct")
        assert queued.cancel() is True
        assert queued.status() == "cancelled"
        with pytest.raises(JobCancelledError):
            queued.result(timeout=10)
        release.set()


class TestFailuresAndShutdown:
    def test_failed_compilation_is_422_with_the_cause(self):
        def exploding_compile(circuit, target, technique, **kwargs):
            raise RuntimeError("boom: no solution")

        service = CompilationService(workers=1, compile_fn=exploding_compile)
        server = build_server(service=service).start_background()
        try:
            client = ReproClient(server.url, timeout=30.0)
            job = client.submit(QASM_BELL_CHAIN, technique="direct")
            with pytest.raises(CompilationFailedError, match="boom"):
                job.result(timeout=60)
            assert client.job_status(job.job_id)["status"] == "failed"
        finally:
            server.stop(drain=False)

    def test_draining_stop_finishes_inflight_work_and_rejects_new(self):
        server = build_server(workers=1).start_background()
        client = ReproClient(server.url, timeout=60.0, retries=0)
        circuit = QuantumCircuit(2, name="drainme")
        circuit.h(0)
        circuit.cx(0, 1)
        job = client.submit(circuit, technique="direct")
        stopped = threading.Thread(target=server.stop, kwargs={"drain": True})
        stopped.start()
        stopped.join(timeout=120)
        assert not stopped.is_alive()
        # The in-flight job was drained to completion before the worker
        # pool wound down (checked on the in-process gateway object —
        # the listener itself is gone now).
        assert server.gateway._jobs[job.job_id].status() == "done"
        with pytest.raises(ServerUnavailableError):
            client.healthz()

    def test_unreachable_server_raises_after_retries(self):
        client = ReproClient("http://127.0.0.1:9", timeout=1.0,
                             retries=1, backoff=0.01)
        with pytest.raises(ServerUnavailableError):
            client.healthz()

    def test_internal_drain_endpoint_quiesces(self, ):
        server = build_server(workers=1).start_background()
        try:
            body = json.dumps({"timeout": 30}).encode()
            request = urllib.request.Request(
                server.url + "/internal/drain", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as response:
                payload = json.loads(response.read())
            assert payload["drained"] is True
        finally:
            server.stop(drain=False)
