"""The multi-process shard router: routing rules and one real deployment."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.server import ReproClient, ShardRouter


class TestRoutingRules:
    """Pure routing logic — no processes spawned."""

    @pytest.fixture()
    def router(self):
        router = ShardRouter(shards=4)
        router._shard_ports = {0: 1, 1: 2, 2: 3, 3: 4}  # Pretend-started.
        return router

    def test_identical_bodies_route_to_the_same_shard(self, router):
        body = b'{"circuit": "OPENQASM 2.0;", "technique": "sat_p"}'
        assert router.shard_for_body(body, "/v1/jobs") == \
            router.shard_for_body(body, "/v1/jobs")

    def test_key_order_does_not_change_the_shard(self, router):
        a = b'{"technique": "sat_p", "circuit": "OPENQASM 2.0;"}'
        b = b'{"circuit": "OPENQASM 2.0;", "technique": "sat_p"}'
        assert router.shard_for_body(a, "/v1/jobs") == \
            router.shard_for_body(b, "/v1/jobs")

    def test_bodies_spread_over_shards(self, router):
        shards = {
            router.shard_for_body(
                f'{{"circuit": "c{i}"}}'.encode(), "/v1/jobs")
            for i in range(64)
        }
        assert len(shards) > 1

    def test_job_ids_carry_their_shard(self, router):
        assert router.shard_for_job("s2-j17") == 2
        assert router.shard_for_job("s3-j1") == 3

    def test_malformed_job_ids_route_nowhere(self, router):
        assert router.shard_for_job("j17") is None
        assert router.shard_for_job("sX-j1") is None
        assert router.shard_for_job("s9-j1") is None  # No such shard.
        assert router.shard_for_job("s2") is None

    def test_router_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardRouter(shards=0)

    def test_store_must_be_a_path(self):
        with pytest.raises(TypeError):
            ShardRouter(shards=2, store=object())


class TestShardedDeployment:
    """One real 2-process deployment (compact: processes are not free)."""

    @pytest.fixture(scope="class")
    def deployment(self, tmp_path_factory):
        store = str(tmp_path_factory.mktemp("shard-store"))
        with ShardRouter(shards=2, workers=2, store=store) as router:
            yield router, ReproClient(router.url, timeout=120.0)

    def _circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(3, name="sharded")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        return circuit

    def test_compile_round_trip_and_sticky_routing(self, deployment):
        router, client = deployment
        job = client.submit(self._circuit(), technique="direct")
        assert job.job_id.startswith("s")
        result = job.result(timeout=300)
        assert result.cost.gate_count > 0
        # A byte-identical resubmission lands on the same shard: its L1
        # already holds the result.
        repeat = client.submit(self._circuit(), technique="direct")
        assert repeat.job_id.split("-")[0] == job.job_id.split("-")[0]
        assert repeat.result(timeout=300).cost.gate_count == \
            result.cost.gate_count

    def test_unknown_job_id_is_404_at_the_router(self, deployment):
        from repro.server import JobNotFoundError

        router, client = deployment
        with pytest.raises(JobNotFoundError):
            client.job_status("s7-j1")  # No shard 7.
        with pytest.raises(JobNotFoundError):
            client.job_status("bogus")

    def test_health_and_metrics_aggregate_across_shards(self, deployment):
        router, client = deployment
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["per_shard"]) == {"s0", "s1"}
        metrics = client.metrics()
        assert metrics["shards"] == 2
        assert metrics["aggregate"]["workers"] == 4  # 2 shards x 2 workers.
        assert set(metrics["per_shard"]) == {"s0", "s1"}

    def test_suite_index_is_served_through_the_router(self, deployment):
        from repro.interop import suite_names

        router, client = deployment
        assert len(client.suite()) == len(suite_names())

    def test_prometheus_scrape_is_conformant_and_shard_labelled(
            self, deployment):
        import urllib.request

        from repro.telemetry.prometheus import validate_prometheus

        router, client = deployment
        client.healthz()  # every shard has served at least one request
        request = urllib.request.Request(
            router.url + "/metrics?format=prometheus")
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            document = response.read().decode("utf-8")

        # The in-repo scraper doubles as the conformance oracle.
        families = validate_prometheus(document)
        for name in ("repro_http_requests_total",
                     "repro_http_request_duration_seconds",
                     "repro_scheduler_queue_depth",
                     "repro_scheduler_jobs_total",
                     "repro_process_resident_memory_bytes",
                     "repro_server_uptime_seconds"):
            assert name in families, f"missing family {name}"

        # Every sample in the merged document names its shard, and both
        # shards contribute series.
        shards = set()
        for family in families.values():
            for _sample_name, labels, _value in family.samples:
                assert "shard" in labels
                shards.add(labels["shard"])
        assert shards == {"s0", "s1"}
