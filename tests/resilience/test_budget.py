"""Budgets: deadlines, work limits, cancellation and the ambient scope."""

import threading
import time

import pytest

import repro
from repro.api import clear_compilation_cache, compilation_cache_info
from repro.hardware import spin_qubit_target
from repro.resilience import (
    Budget,
    CompileCancelled,
    CompileDeadlineExceeded,
    CompileInterrupted,
)
from repro.resilience.budget import budget_scope, check_budget, current_budget
from repro.resilience.degrade import DEFAULT_LADDERS
from repro.workloads import ghz_circuit, qft_circuit


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


class TestBudgetUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            Budget(timeout=-1.0)
        with pytest.raises(ValueError, match="on_deadline"):
            Budget(on_deadline="panic")

    def test_unbounded_budget_never_fires(self):
        budget = Budget()
        assert budget.remaining() is None
        assert not budget.expired
        for _ in range(100):
            budget.check("loop")
        assert budget.checks == 100

    def test_zero_timeout_fires_at_first_checkpoint(self):
        budget = Budget(timeout=0.0)
        assert budget.expired
        with pytest.raises(CompileDeadlineExceeded) as excinfo:
            budget.check("pass:route")
        assert excinfo.value.checkpoint == "pass:route"
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.elapsed is not None

    def test_unarmed_budget_starts_ticking_only_at_arm(self):
        budget = Budget(timeout=0.0, arm=False)
        budget.check("queued")  # no deadline while unarmed
        budget.arm()
        with pytest.raises(CompileDeadlineExceeded):
            budget.check("running")

    def test_cancel_interrupts_even_an_unarmed_budget(self):
        budget = Budget(timeout=100.0, arm=False)
        budget.cancel("caller gave up")
        with pytest.raises(CompileCancelled, match="caller gave up"):
            budget.check("queued")

    def test_cancel_from_another_thread(self):
        budget = Budget()
        threading.Thread(target=budget.cancel, args=("bye",)).start()
        deadline = time.monotonic() + 5.0
        with pytest.raises(CompileCancelled):
            while time.monotonic() < deadline:
                budget.check("spin")
        assert budget.cancel_reason() == "bye"

    def test_parent_cancellation_propagates_not_its_deadline(self):
        parent = Budget(timeout=0.0)
        child = Budget(timeout=100.0, parent=parent)
        child.check("rung")  # the parent's expired deadline is ignored
        parent.cancel()
        assert child.cancelled
        with pytest.raises(CompileCancelled):
            child.check("rung")

    @pytest.mark.parametrize(
        "kwargs, charge",
        [
            ({"max_conflicts": 5}, {"conflicts": 5}),
            ({"max_pivots": 3}, {"pivots": 3}),
            ({"max_rounds": 2}, {"rounds": 2}),
        ],
    )
    def test_work_limits(self, kwargs, charge):
        budget = Budget(**kwargs)
        with pytest.raises(CompileDeadlineExceeded, match="budget"):
            budget.charge("solver", **charge)

    def test_event_payload_is_json_shaped(self):
        budget = Budget(timeout=0.0, max_conflicts=10)
        try:
            budget.check("pass:route")
        except CompileInterrupted as error:
            event = error.event()
        assert event["reason"] == "deadline"
        assert event["checkpoint"] == "pass:route"
        assert event["elapsed_seconds"] >= 0
        assert event["budget"]["timeout"] == 0.0
        assert event["budget"]["max_conflicts"] == 10


class TestAmbientScope:
    def test_no_scope_is_a_cheap_no_op(self):
        assert current_budget() is None
        check_budget("anywhere")  # must not raise

    def test_scope_installs_and_restores(self):
        budget = Budget(timeout=100.0)
        with budget_scope(budget):
            assert current_budget() is budget
            check_budget("inside")
        assert current_budget() is None
        assert budget.checks == 1

    def test_scope_none_is_a_no_op(self):
        with budget_scope(None):
            assert current_budget() is None

    def test_inner_scope_replaces_outer(self):
        outer, inner = Budget(timeout=0.0), Budget(timeout=100.0)
        with budget_scope(outer):
            with budget_scope(inner):
                check_budget("inner")  # the expired outer is shadowed
            with pytest.raises(CompileDeadlineExceeded):
                check_budget("outer")

    def test_ambient_budget_raises_through_check_budget(self):
        with budget_scope(Budget(timeout=0.0)):
            with pytest.raises(CompileDeadlineExceeded):
                check_budget("hot-loop")


class TestCompileDeadlines:
    @pytest.mark.parametrize("technique", sorted(DEFAULT_LADDERS))
    def test_zero_deadline_fires_for_every_technique(self, technique):
        """Every registered technique honors the budget checkpoints."""
        circuit = ghz_circuit(3)
        target = spin_qubit_target(3, "D0")
        with pytest.raises(CompileDeadlineExceeded) as excinfo:
            repro.compile(circuit, target, technique, timeout=0.0,
                          use_cache=False)
        assert excinfo.value.checkpoint

    def test_generous_deadline_compiles_normally(self):
        result = repro.compile(ghz_circuit(3), spin_qubit_target(3, "D0"),
                               "direct", timeout=300.0, use_cache=False)
        assert result.technique == "direct"
        assert result.report.degraded_from is None

    def test_deadline_parameters_stay_out_of_the_cache_key(self):
        circuit, target = ghz_circuit(3), spin_qubit_target(3, "D0")
        repro.compile(circuit, target, "direct")
        hits_before = compilation_cache_info().hits
        result = repro.compile(circuit, target, "direct", timeout=300.0,
                               on_deadline="degrade", fallback="direct")
        assert compilation_cache_info().hits == hits_before + 1
        assert result.report.degraded_from is None

    def test_cancel_interrupts_a_running_solve(self):
        """A long SAT solve unwinds within moments of a cross-thread cancel."""
        budget = Budget()
        caught = []

        def solve():
            try:
                with budget_scope(budget):
                    repro.compile(qft_circuit(4), spin_qubit_target(4, "D0"),
                                  "sat_p", use_cache=False)
            except CompileCancelled as error:
                caught.append(error)

        thread = threading.Thread(target=solve)
        thread.start()
        time.sleep(0.5)  # let it get deep into the solver
        budget.cancel("test teardown")
        thread.join(timeout=30)
        assert not thread.is_alive(), "cancel did not interrupt the solve"
        assert caught and caught[0].reason == "cancelled"
