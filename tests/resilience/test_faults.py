"""Fault injection: spec validation, deterministic firing, env loading."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    clear_fault_plan,
    fault_hook,
    install_fault_plan,
    maybe_fault,
)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


class TestFaultSpec:
    def test_needs_site_and_action(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="", action="die", nth=1)

    def test_exactly_one_of_nth_or_after(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(site="s", action="die")
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(site="s", action="die", nth=1, after=0)

    def test_bounds(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(site="s", action="die", nth=0)
        with pytest.raises(ValueError, match="after"):
            FaultSpec(site="s", action="die", after=-1)
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(site="s", action="delay", nth=1, seconds=-0.1)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault spec field"):
            FaultSpec.from_dict({"site": "s", "action": "die", "nth": 1,
                                 "when": "now"})

    def test_dict_round_trip(self):
        spec = FaultSpec(site="s", action="delay", after=2, times=3,
                         seconds=0.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlanCounting:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan([FaultSpec(site="s", action="die", nth=2)])
        fired = [bool(plan.fire("s")) for _ in range(5)]
        assert fired == [False, True, False, False, False]
        assert plan.hits() == {"s": 5}

    def test_nth_with_times_can_refire(self):
        # `times` raises the once-only cap, but `nth` still pins the hit
        # number — so it cannot fire again and the cap is moot.
        plan = FaultPlan([FaultSpec(site="s", action="die", nth=1, times=2)])
        assert plan.fire("s")
        assert not plan.fire("s")

    def test_after_fires_on_every_later_hit(self):
        plan = FaultPlan([FaultSpec(site="s", action="die", after=2)])
        fired = [bool(plan.fire("s")) for _ in range(5)]
        assert fired == [False, False, True, True, True]

    def test_after_with_times_caps_the_firings(self):
        plan = FaultPlan([FaultSpec(site="s", action="die", after=0, times=2)])
        fired = [bool(plan.fire("s")) for _ in range(4)]
        assert fired == [True, True, False, False]

    def test_sites_count_independently(self):
        plan = FaultPlan([FaultSpec(site="a", action="die", nth=1),
                          FaultSpec(site="b", action="die", nth=2)])
        assert plan.fire("a")
        assert not plan.fire("b")
        assert plan.fire("b")

    def test_reset_restarts_the_counting(self):
        plan = FaultPlan([FaultSpec(site="s", action="die", nth=1)])
        assert plan.fire("s")
        plan.reset()
        assert plan.fire("s")

    def test_delay_sleeps_in_place_and_returns_the_rest(self):
        plan = FaultPlan([
            FaultSpec(site="s", action="delay", nth=1, seconds=0.05),
            FaultSpec(site="s", action="abort", nth=1),
        ])
        started = time.perf_counter()
        remaining = plan.delay("s")
        assert time.perf_counter() - started >= 0.05
        assert [spec.action for spec in remaining] == ["abort"]


class TestPlanLoading:
    def test_from_json_list(self):
        plan = FaultPlan.from_json(
            '[{"site": "worker.compile", "action": "die", "nth": 1}]')
        assert plan.specs[0].site == "worker.compile"

    def test_from_json_faults_envelope(self):
        plan = FaultPlan.from_json(
            '{"faults": [{"site": "s", "action": "die", "after": 0}]}')
        assert plan.specs[0].after == 0

    def test_from_json_rejects_non_lists(self):
        with pytest.raises(ValueError, match="JSON list"):
            FaultPlan.from_json('"worker.compile:die"')

    def test_from_env_inline_json_and_file_path(self, tmp_path):
        payload = [{"site": "s", "action": "die", "nth": 3}]
        inline = FaultPlan.from_env(json.dumps(payload))
        assert inline.specs[0].nth == 3
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(payload))
        from_file = FaultPlan.from_env(str(path))
        assert from_file.specs[0].nth == 3


class TestProcessWidePlan:
    def test_no_plan_is_a_no_op(self):
        assert active_fault_plan() is None
        assert maybe_fault("anything") == ()
        assert fault_hook("anything") == ()

    def test_install_and_clear(self):
        plan = install_fault_plan([{"site": "s", "action": "die", "nth": 1}])
        assert active_fault_plan() is plan
        assert [spec.action for spec in maybe_fault("s")] == ["die"]
        clear_fault_plan()
        assert active_fault_plan() is None

    def test_install_accepts_inline_json(self):
        install_fault_plan('[{"site": "s", "action": "die", "nth": 1}]')
        assert active_fault_plan().specs[0].site == "s"

    def test_env_var_activates_the_plan_in_a_fresh_process(self):
        """REPRO_FAULTS is picked up at import, like REPRO_TRACE."""
        env = dict(os.environ)
        env[FAULTS_ENV_VAR] = json.dumps(
            [{"site": "worker.compile", "action": "die", "nth": 2}])
        src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                           "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.resilience.faults import active_fault_plan; "
             "plan = active_fault_plan(); "
             "print(plan.specs[0].site, plan.specs[0].nth)"],
            env=env, capture_output=True, text=True, timeout=60)
        assert out.returncode == 0, out.stderr
        assert out.stdout.split() == ["worker.compile", "2"]
