"""Degradation ladders: resolution, grace windows and compile() fallback."""

import pytest

import repro
from repro.api import clear_compilation_cache
from repro.hardware import spin_qubit_target
from repro.resilience import CompileDeadlineExceeded
from repro.resilience.degrade import (
    DEFAULT_LADDERS,
    GRACE_FRACTION,
    MIN_GRACE_SECONDS,
    fallback_grace,
    resolve_ladder,
)
from repro.workloads import ghz_circuit


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


class TestResolveLadder:
    def test_default_ladders_end_in_direct_or_nothing(self):
        for technique, ladder in DEFAULT_LADDERS.items():
            assert resolve_ladder(technique) == ladder
            if technique != "direct":
                assert ladder[-1] == "direct"
        assert resolve_ladder("direct") == ()

    def test_unknown_technique_degrades_straight_to_direct(self):
        assert resolve_ladder("my_custom_technique") == ("direct",)

    def test_false_disables_degradation(self):
        assert resolve_ladder("sat_p", False) == ()

    def test_true_selects_the_default_ladder(self):
        assert resolve_ladder("sat_p", True) == DEFAULT_LADDERS["sat_p"]

    def test_string_and_sequence_are_used_verbatim(self):
        assert resolve_ladder("sat_p", "direct") == ("direct",)
        assert resolve_ladder("sat_p", ("template_r", "direct")) == (
            "template_r", "direct")

    def test_the_failing_technique_is_dropped_from_its_own_ladder(self):
        assert resolve_ladder("sat_p", ("sat_p", "direct")) == ("direct",)


class TestFallbackGrace:
    def test_unbounded_budget_keeps_the_fallback_unbounded(self):
        assert fallback_grace(None) is None

    def test_minimum_grace_floor(self):
        assert fallback_grace(0.0) == MIN_GRACE_SECONDS
        assert fallback_grace(0.1) == MIN_GRACE_SECONDS

    def test_fractional_grace_above_the_floor(self):
        assert fallback_grace(100.0) == pytest.approx(100.0 * GRACE_FRACTION)


class TestCompileDegradation:
    def test_degrade_walks_the_default_ladder(self):
        circuit, target = ghz_circuit(3), spin_qubit_target(3, "D0")
        result = repro.compile(circuit, target, "sat_p", timeout=0.0,
                               on_deadline="degrade", use_cache=False)
        assert result.technique == DEFAULT_LADDERS["sat_p"][0]
        assert result.report.degraded_from == "sat_p"
        events = result.report.deadline_events
        assert events and events[0]["reason"] == "deadline"

    def test_explicit_fallback_overrides_the_ladder(self):
        result = repro.compile(ghz_circuit(3), spin_qubit_target(3, "D0"),
                               "sat_p", timeout=0.0, on_deadline="degrade",
                               fallback="direct", use_cache=False)
        assert result.technique == "direct"
        assert result.report.degraded_from == "sat_p"

    def test_fallback_false_raises_instead_of_degrading(self):
        with pytest.raises(CompileDeadlineExceeded):
            repro.compile(ghz_circuit(3), spin_qubit_target(3, "D0"),
                          "sat_p", timeout=0.0, on_deadline="degrade",
                          fallback=False, use_cache=False)

    def test_degradation_provenance_never_leaks_into_the_cache(self):
        """The fallback result is cached under its own technique's key —
        without the degraded_from annotation."""
        circuit, target = ghz_circuit(3), spin_qubit_target(3, "D0")
        degraded = repro.compile(circuit, target, "sat_p", timeout=0.0,
                                 on_deadline="degrade", fallback="direct",
                                 use_cache=True)
        assert degraded.report.degraded_from == "sat_p"
        cached = repro.compile(circuit, target, "direct", use_cache=True)
        assert cached.report.degraded_from is None
        assert not cached.report.deadline_events
