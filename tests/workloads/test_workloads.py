"""Tests for workload generators (quantum volume, random templates, named)."""

import numpy as np
import pytest

from repro.circuits import circuit_unitary
from repro.simulator import circuit_probabilities
from repro.workloads import (
    WorkloadSpec,
    bernstein_vazirani_circuit,
    evaluation_suite,
    ghz_circuit,
    qft_circuit,
    quantum_volume_circuit,
    random_template_circuit,
)


class TestQuantumVolume:
    def test_deterministic_given_seed(self):
        first = quantum_volume_circuit(3, seed=7)
        second = quantum_volume_circuit(3, seed=7)
        assert first.to_text() == second.to_text()
        third = quantum_volume_circuit(3, seed=8)
        assert first.to_text() != third.to_text()

    def test_depth_defaults_to_width(self):
        circuit = quantum_volume_circuit(4)
        # 4 layers x 2 pairs x 3 CX per SU(4).
        assert circuit.count_ops()["cx"] == 4 * 2 * 3

    def test_is_unitary_circuit(self):
        circuit = quantum_volume_circuit(2, seed=3)
        matrix = circuit_unitary(circuit)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(4), atol=1e-9)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            quantum_volume_circuit(1)


class TestRandomTemplateCircuits:
    def test_gate_vocabulary(self):
        circuit = random_template_circuit(4, 120, seed=2)
        allowed = {"cx", "cz", "swap", "h", "rx", "ry", "rz", "t", "x"}
        assert set(circuit.count_ops()) <= allowed

    def test_respects_chain_coupling(self):
        circuit = random_template_circuit(4, 100, seed=4)
        for instruction in circuit:
            if len(instruction.qubits) == 2:
                assert abs(instruction.qubits[0] - instruction.qubits[1]) == 1

    def test_deterministic_given_seed(self):
        assert (
            random_template_circuit(3, 30, seed=9).to_text()
            == random_template_circuit(3, 30, seed=9).to_text()
        )

    def test_depth_parameter_controls_size(self):
        short = random_template_circuit(3, 10, seed=1)
        long = random_template_circuit(3, 100, seed=1)
        assert len(long) > len(short)


class TestEvaluationSuite:
    def test_contains_both_kinds(self):
        suite = evaluation_suite(max_qubits=4, seeds=(0,))
        kinds = {spec.kind for spec in suite}
        assert kinds == {"qv", "random"}
        assert all(spec.num_qubits <= 4 for spec in suite)
        assert max(spec.depth for spec in suite) == 160

    def test_spec_names_unique(self):
        suite = evaluation_suite(max_qubits=4, seeds=(0, 1))
        names = [spec.name for spec in suite]
        assert len(names) == len(set(names))

    def test_spec_dataclass(self):
        spec = WorkloadSpec("qv", 3, 3, 0)
        assert spec.name == "qv-q3-d3-s0"


class TestNamedCircuits:
    def test_ghz_distribution(self):
        probabilities = circuit_probabilities(ghz_circuit(4))
        assert probabilities == pytest.approx({"0000": 0.5, "1111": 0.5})

    def test_qft_unitary_size(self):
        circuit = qft_circuit(3)
        matrix = circuit_unitary(circuit)
        # QFT maps |0> to the uniform superposition.
        assert np.allclose(np.abs(matrix[:, 0]) ** 2, np.full(8, 1 / 8), atol=1e-9)

    def test_bernstein_vazirani_recovers_secret(self):
        secret = "101"
        circuit = bernstein_vazirani_circuit(secret)
        probabilities = circuit_probabilities(circuit)
        # The data qubits (0..2) hold the secret; qubit 3 is the ancilla in |->.
        top = max(probabilities, key=probabilities.get)
        assert top[-3:] == secret[::-1] or top[-3:] == secret
        # Probability concentrated on the secret regardless of ancilla value.
        mass = sum(p for key, p in probabilities.items() if key[1:] == secret[::-1] or key[1:] == secret)
        assert mass == pytest.approx(1.0, abs=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ghz_circuit(1)
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("")
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("102")
