"""Tests for workload generators (quantum volume, random templates, named)."""

import numpy as np
import pytest

from repro.circuits import circuit_unitary
from repro.simulator import circuit_probabilities
from repro.workloads import (
    WorkloadSpec,
    bernstein_vazirani_circuit,
    evaluation_suite,
    ghz_circuit,
    hardware_efficient_ansatz,
    qaoa_ring_circuit,
    qft_circuit,
    quantum_volume_circuit,
    random_template_circuit,
)


class TestQuantumVolume:
    def test_deterministic_given_seed(self):
        first = quantum_volume_circuit(3, seed=7)
        second = quantum_volume_circuit(3, seed=7)
        assert first.to_text() == second.to_text()
        third = quantum_volume_circuit(3, seed=8)
        assert first.to_text() != third.to_text()

    def test_depth_defaults_to_width(self):
        circuit = quantum_volume_circuit(4)
        # 4 layers x 2 pairs x 3 CX per SU(4).
        assert circuit.count_ops()["cx"] == 4 * 2 * 3

    def test_is_unitary_circuit(self):
        circuit = quantum_volume_circuit(2, seed=3)
        matrix = circuit_unitary(circuit)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(4), atol=1e-9)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            quantum_volume_circuit(1)


class TestRandomTemplateCircuits:
    def test_gate_vocabulary(self):
        circuit = random_template_circuit(4, 120, seed=2)
        allowed = {"cx", "cz", "swap", "h", "rx", "ry", "rz", "t", "x"}
        assert set(circuit.count_ops()) <= allowed

    def test_respects_chain_coupling(self):
        circuit = random_template_circuit(4, 100, seed=4)
        for instruction in circuit:
            if len(instruction.qubits) == 2:
                assert abs(instruction.qubits[0] - instruction.qubits[1]) == 1

    def test_deterministic_given_seed(self):
        assert (
            random_template_circuit(3, 30, seed=9).to_text()
            == random_template_circuit(3, 30, seed=9).to_text()
        )

    def test_depth_parameter_controls_size(self):
        short = random_template_circuit(3, 10, seed=1)
        long = random_template_circuit(3, 100, seed=1)
        assert len(long) > len(short)


class TestEvaluationSuite:
    def test_contains_both_kinds(self):
        suite = evaluation_suite(max_qubits=4, seeds=(0,))
        kinds = {spec.kind for spec in suite}
        assert kinds == {"qv", "random"}
        assert all(spec.num_qubits <= 4 for spec in suite)
        assert max(spec.depth for spec in suite) == 160

    def test_spec_names_unique(self):
        suite = evaluation_suite(max_qubits=4, seeds=(0, 1))
        names = [spec.name for spec in suite]
        assert len(names) == len(set(names))

    def test_spec_dataclass(self):
        spec = WorkloadSpec("qv", 3, 3, 0)
        assert spec.name == "qv-q3-d3-s0"


class TestNamedCircuits:
    def test_ghz_distribution(self):
        probabilities = circuit_probabilities(ghz_circuit(4))
        assert probabilities == pytest.approx({"0000": 0.5, "1111": 0.5})

    def test_qft_unitary_size(self):
        circuit = qft_circuit(3)
        matrix = circuit_unitary(circuit)
        # QFT maps |0> to the uniform superposition.
        assert np.allclose(np.abs(matrix[:, 0]) ** 2, np.full(8, 1 / 8), atol=1e-9)

    def test_bernstein_vazirani_recovers_secret(self):
        secret = "101"
        circuit = bernstein_vazirani_circuit(secret)
        probabilities = circuit_probabilities(circuit)
        # The data qubits (0..2) hold the secret; qubit 3 is the ancilla in |->.
        top = max(probabilities, key=probabilities.get)
        assert top[-3:] == secret[::-1] or top[-3:] == secret
        # Probability concentrated on the secret regardless of ancilla value.
        mass = sum(p for key, p in probabilities.items() if key[1:] == secret[::-1] or key[1:] == secret)
        assert mass == pytest.approx(1.0, abs=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ghz_circuit(1)
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("")
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit("102")


class TestQaoaRingAnsatz:
    def test_deterministic_given_seed(self):
        assert (
            qaoa_ring_circuit(4, layers=2, seed=3).to_text()
            == qaoa_ring_circuit(4, layers=2, seed=3).to_text()
        )
        assert (
            qaoa_ring_circuit(4, layers=2, seed=3).to_text()
            != qaoa_ring_circuit(4, layers=2, seed=4).to_text()
        )

    def test_structure(self):
        circuit = qaoa_ring_circuit(4, layers=2, seed=0)
        counts = circuit.count_ops()
        # Per layer: 4 ring edges x 2 CX, plus 4 RX mixers and 4 RZ phases.
        assert counts["h"] == 4
        assert counts["cx"] == 2 * 4 * 2
        assert counts["rx"] == 2 * 4
        assert counts["rz"] == 2 * 4
        assert circuit.name == "qaoa_ring_4q_p2_s0"

    def test_two_qubit_ring_has_single_edge(self):
        circuit = qaoa_ring_circuit(2, layers=1, seed=0)
        assert circuit.count_ops()["cx"] == 2  # One ZZ edge -> two CX.

    def test_is_unitary_circuit(self):
        matrix = circuit_unitary(qaoa_ring_circuit(3, layers=1, seed=1))
        assert np.allclose(matrix @ matrix.conj().T, np.eye(8), atol=1e-9)

    def test_compiles_through_the_facade(self):
        import repro
        from repro.hardware import spin_qubit_target

        result = repro.compile(
            qaoa_ring_circuit(3, layers=1, seed=0), spin_qubit_target(3),
            "direct", use_cache=False,
        )
        assert result.cost.gate_fidelity_product > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            qaoa_ring_circuit(1)
        with pytest.raises(ValueError):
            qaoa_ring_circuit(3, layers=0)


class TestHardwareEfficientAnsatz:
    def test_deterministic_given_seed(self):
        assert (
            hardware_efficient_ansatz(4, layers=2, seed=5).to_text()
            == hardware_efficient_ansatz(4, layers=2, seed=5).to_text()
        )
        assert (
            hardware_efficient_ansatz(4, layers=2, seed=5).to_text()
            != hardware_efficient_ansatz(4, layers=2, seed=6).to_text()
        )

    def test_structure(self):
        circuit = hardware_efficient_ansatz(4, layers=3, seed=0)
        counts = circuit.count_ops()
        assert counts["ry"] == 3 * 4 + 4  # Per-layer rotations + final layer.
        assert counts["rz"] == 3 * 4
        assert counts["cz"] == 3 * 3  # Linear ladder per layer.
        assert circuit.name == "vqe_hwe_4q_l3_s0"

    def test_entanglers_match_chain_topology(self):
        circuit = hardware_efficient_ansatz(5, layers=2, seed=1)
        for instruction in circuit:
            if len(instruction.qubits) == 2:
                assert abs(instruction.qubits[0] - instruction.qubits[1]) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(1)
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(3, layers=0)


class TestWorkloadSpecRegistration:
    """The new ansatz kinds are enumerable wherever specs are materialized."""

    def test_compile_many_accepts_ansatz_specs(self):
        import repro
        from repro.api import clear_compilation_cache

        clear_compilation_cache()
        try:
            results = repro.compile_many(
                [WorkloadSpec("qaoa", 3, 1, 0), WorkloadSpec("vqe", 3, 1, 0)],
                technique="direct",
            )
            assert set(results) == {"qaoa-q3-d1-s0", "vqe-q3-d1-s0"}
            for result in results.values():
                assert result.cost.gate_fidelity_product > 0
        finally:
            clear_compilation_cache()

    def test_manifest_builders_cover_ansatz_kinds(self):
        from repro.workloads import WORKLOAD_BUILDERS, build_workload_entry

        assert {"qaoa_ring", "vqe_hwe"} <= set(WORKLOAD_BUILDERS)
        name, circuit = build_workload_entry(
            {"kind": "qaoa_ring", "num_qubits": 3, "layers": 1, "seed": 0}
        )
        assert name == "qaoa_ring_3q_p1_s0"
        assert circuit.num_qubits == 3
