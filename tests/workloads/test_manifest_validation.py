"""Strict manifest-entry validation and the new qasm/suite kinds (PR 4)."""

import pytest

from repro.workloads.manifest import (
    WORKLOAD_BUILDERS,
    WORKLOAD_ENTRY_KEYS,
    build_workload_entry,
    parse_manifest,
)


class TestKeyValidation:
    def test_typo_key_is_rejected(self):
        with pytest.raises(ValueError, match="num_qubit"):
            build_workload_entry({"kind": "ghz", "num_qubit": 3})

    def test_error_lists_the_allowed_keys(self):
        with pytest.raises(ValueError, match="allowed keys"):
            build_workload_entry({"kind": "qv", "num_qubits": 3, "sede": 1})

    def test_missing_required_key_is_a_clean_error(self):
        with pytest.raises(ValueError, match="missing required"):
            build_workload_entry({"kind": "bv"})

    def test_name_is_always_allowed(self):
        name, circuit = build_workload_entry(
            {"kind": "ghz", "num_qubits": 3, "name": "mine"}
        )
        assert name == "mine"
        assert circuit.num_qubits == 3

    def test_every_kind_has_a_key_spec(self):
        assert set(WORKLOAD_ENTRY_KEYS) == set(WORKLOAD_BUILDERS)

    def test_unknown_kind_error_lists_the_new_kinds(self):
        with pytest.raises(ValueError) as excinfo:
            build_workload_entry({"kind": "bogus"})
        message = str(excinfo.value)
        assert "'qasm'" in message and "'suite'" in message

    @pytest.mark.parametrize(
        "entry",
        [
            {"kind": "qv", "num_qubits": 3, "depth": 2, "seed": 1},
            {"kind": "random", "num_qubits": 3, "depth": 5, "seed": 0},
            {"kind": "qft", "num_qubits": 3, "include_swaps": False},
            {"kind": "qaoa", "num_qubits": 3, "layers": 1, "seed": 0},
            {"kind": "vqe", "num_qubits": 3, "layers": 1, "seed": 0},
            {"kind": "suite", "name": "ghz_n5"},
        ],
    )
    def test_valid_entries_still_build(self, entry):
        name, circuit = build_workload_entry(entry)
        assert circuit.num_qubits >= 2


class TestQasmKind:
    SOURCE = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\n'

    def test_inline_source(self):
        name, circuit = build_workload_entry(
            {"kind": "qasm", "source": self.SOURCE, "name": "inline"}
        )
        assert name == "inline"
        assert circuit.num_qubits == 3

    def test_path_entry(self, tmp_path):
        path = tmp_path / "bench.qasm"
        path.write_text(self.SOURCE)
        name, circuit = build_workload_entry({"kind": "qasm", "path": str(path)})
        assert name == "bench"  # named after the file stem
        assert [inst.name for inst in circuit] == ["h", "cx"]

    def test_relative_path_resolves_against_the_manifest_directory(
        self, tmp_path, monkeypatch
    ):
        import json

        from repro.workloads.manifest import load_manifest

        (tmp_path / "bench.qasm").write_text(self.SOURCE)
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps([{"kind": "qasm", "path": "bench.qasm"}]))
        monkeypatch.chdir(tmp_path.parent)  # any CWD but the manifest dir
        named, _ = load_manifest(str(manifest))
        assert named[0][0] == "bench"

    def test_runtime_registered_kind_stays_permissive(self):
        from repro.workloads.manifest import WORKLOAD_BUILDERS
        from repro.workloads.named import ghz_circuit

        WORKLOAD_BUILDERS["custom_kind"] = lambda entry: ghz_circuit(3)
        try:
            name, circuit = build_workload_entry(
                {"kind": "custom_kind", "whatever": 1}
            )
            assert circuit.num_qubits == 3
        finally:
            del WORKLOAD_BUILDERS["custom_kind"]

    def test_exactly_one_of_path_or_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            build_workload_entry({"kind": "qasm"})
        with pytest.raises(ValueError, match="exactly one"):
            build_workload_entry(
                {"kind": "qasm", "source": self.SOURCE, "path": "x.qasm"}
            )


class TestSuiteKind:
    def test_suite_entry_builds_the_bundled_benchmark(self):
        name, circuit = build_workload_entry({"kind": "suite", "name": "toffoli_n3"})
        assert name == "toffoli_n3"
        assert circuit.num_qubits == 3

    def test_suite_name_is_required(self):
        with pytest.raises(ValueError, match="missing required"):
            build_workload_entry({"kind": "suite"})

    def test_manifest_mixing_all_kinds(self):
        named, defaults = parse_manifest(
            {
                "technique": "direct",
                "workloads": [
                    {"kind": "ghz", "num_qubits": 3},
                    {"kind": "suite", "name": "dj_n4"},
                    {"kind": "qasm", "source": TestQasmKind.SOURCE, "name": "q"},
                ],
            }
        )
        assert [name for name, _ in named] == ["ghz_3", "dj_n4", "q"]
        assert defaults == {"technique": "direct"}
