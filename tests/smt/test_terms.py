"""Tests for the SMT term/expression layer."""

from fractions import Fraction

import pytest

from repro.smt import And, Bool, BoolVal, Iff, Implies, Ite, Not, Or, Real, RealVal, Sum
from repro.smt.terms import Comparison, LinearExpr


class TestLinearExpr:
    def test_variable_and_constant(self):
        x = Real("x")
        assert x.coeffs == {"x": Fraction(1)}
        assert RealVal(3).constant == Fraction(3)
        assert RealVal(3).is_constant()

    def test_addition_merges_coefficients(self):
        x, y = Real("x"), Real("y")
        expr = x + y + x
        assert expr.coeffs == {"x": Fraction(2), "y": Fraction(1)}

    def test_subtraction_cancels(self):
        x = Real("x")
        expr = (x + RealVal(5)) - x
        assert expr.is_constant()
        assert expr.constant == Fraction(5)

    def test_scalar_multiplication(self):
        x = Real("x")
        expr = 3 * x + x * Fraction(1, 2)
        assert expr.coeffs["x"] == Fraction(7, 2)

    def test_division(self):
        x = Real("x")
        expr = (4 * x + RealVal(2)) / 2
        assert expr.coeffs["x"] == Fraction(2)
        assert expr.constant == Fraction(1)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Real("x") / 0

    def test_nonlinear_product_rejected(self):
        with pytest.raises(TypeError):
            Real("x") * Real("y")

    def test_product_with_constant_expr(self):
        x = Real("x")
        assert (x * RealVal(3)).coeffs["x"] == Fraction(3)
        assert (RealVal(3) * x).coeffs["x"] == Fraction(3)

    def test_sum_helper(self):
        terms = [Real("a"), Real("b"), RealVal(2), 3]
        total = Sum(terms)
        assert total.constant == Fraction(5)
        assert set(total.coeffs) == {"a", "b"}

    def test_evaluate(self):
        x, y = Real("x"), Real("y")
        expr = 2 * x - y + RealVal(1)
        assert expr.evaluate({"x": 3, "y": 4}) == Fraction(3)

    def test_float_coefficients_become_fractions(self):
        x = Real("x")
        expr = 0.5 * x
        assert expr.coeffs["x"] == Fraction(1, 2)

    def test_structural_equality_and_hash(self):
        assert Real("x") + 1 == 1 + Real("x")
        assert hash(Real("x") + 1) == hash(1 + Real("x"))
        assert Real("x") != Real("y")


class TestComparisons:
    def test_le_normalization(self):
        x, y = Real("x"), Real("y")
        atom = x + 2 <= y
        assert isinstance(atom, Comparison)
        assert atom.op == "<="
        assert atom.poly.coeffs == {"x": Fraction(1), "y": Fraction(-1)}
        assert atom.bound == Fraction(-2)

    def test_ge_is_swapped_le(self):
        x = Real("x")
        atom = x >= RealVal(5)
        assert atom.op == "<="
        assert atom.poly.coeffs == {"x": Fraction(-1)}
        assert atom.bound == Fraction(-5)

    def test_strict_comparisons(self):
        x = Real("x")
        assert (x < RealVal(1)).op == "<"
        assert (x > RealVal(1)).op == "<"

    def test_equality_atom(self):
        x = Real("x")
        atom = x.eq(RealVal(2))
        assert atom.op == "="
        assert atom.bound == Fraction(2)

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(LinearExpr({"x": Fraction(1)}), ">=", Fraction(0))


class TestBooleanStructure:
    def test_and_flattening(self):
        a, b, c = Bool("a"), Bool("b"), Bool("c")
        expr = And(And(a, b), c)
        assert len(expr.operands) == 3

    def test_or_flattening(self):
        a, b, c = Bool("a"), Bool("b"), Bool("c")
        expr = Or(a, Or(b, c))
        assert len(expr.operands) == 3

    def test_operator_sugar(self):
        a, b = Bool("a"), Bool("b")
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)
        assert isinstance(a.implies(b), Implies)
        assert isinstance(a.iff(b), Iff)

    def test_structural_equality(self):
        assert Bool("p") == Bool("p")
        assert Not(Bool("p")) == Not(Bool("p"))
        assert And(Bool("p"), Bool("q")) == And(Bool("p"), Bool("q"))
        assert And(Bool("p"), Bool("q")) != And(Bool("q"), Bool("p"))

    def test_boolval_repr(self):
        assert repr(BoolVal(True)) == "true"
        assert repr(BoolVal(False)) == "false"

    def test_ite_key_distinct(self):
        a, b, c = Bool("a"), Bool("b"), Bool("c")
        assert Ite(a, b, c) != Ite(a, c, b)

    def test_expressions_usable_in_sets(self):
        atoms = {Bool("a"), Bool("a"), Bool("b")}
        assert len(atoms) == 2
