"""Tests for the simplex-based linear arithmetic theory solver."""

from fractions import Fraction

from repro.smt.rational import DeltaRational
from repro.smt.simplex import Simplex


def dr(value, coeff=0):
    return DeltaRational.of(value, coeff)


class TestBounds:
    def test_single_variable_bounds_sat(self):
        simplex = Simplex()
        x = simplex.variable("x")
        assert simplex.assert_lower(x, dr(1), "l") is None
        assert simplex.assert_upper(x, dr(5), "u") is None
        assert simplex.check() is None
        model = simplex.model()
        assert Fraction(1) <= model["x"] <= Fraction(5)

    def test_direct_bound_conflict(self):
        simplex = Simplex()
        x = simplex.variable("x")
        assert simplex.assert_lower(x, dr(3), "l") is None
        conflict = simplex.assert_upper(x, dr(2), "u")
        assert conflict is not None
        assert set(conflict) == {"l", "u"}

    def test_weaker_bounds_are_ignored(self):
        simplex = Simplex()
        x = simplex.variable("x")
        simplex.assert_upper(x, dr(5), "u1")
        simplex.assert_upper(x, dr(7), "u2")
        simplex.assert_lower(x, dr(6), "l")
        # The effective upper bound is 5, so a conflict must mention u1.
        conflict = simplex.check() or simplex.assert_lower(x, dr(6), "l")
        # x has no row, the conflict surfaced at assertion time instead.
        assert conflict is None or "u1" in conflict

    def test_strict_bounds_with_delta(self):
        simplex = Simplex()
        x = simplex.variable("x")
        # 1 < x < 2
        assert simplex.assert_lower(x, dr(1, 1), "l") is None
        assert simplex.assert_upper(x, dr(2, -1), "u") is None
        assert simplex.check() is None
        value = simplex.model()["x"]
        assert Fraction(1) < value < Fraction(2)

    def test_strict_bound_conflict(self):
        simplex = Simplex()
        x = simplex.variable("x")
        assert simplex.assert_lower(x, dr(1, 1), "l") is None   # x > 1
        conflict = simplex.assert_upper(x, dr(1), "u")           # x <= 1
        assert conflict is not None


class TestLinearCombinations:
    def test_sum_constraint_feasible(self):
        simplex = Simplex()
        x = simplex.variable("x")
        y = simplex.variable("y")
        s = simplex.slack_for({"x": 1, "y": 1})
        simplex.assert_lower(x, dr(0), "lx")
        simplex.assert_lower(y, dr(0), "ly")
        simplex.assert_upper(s, dr(10), "s")
        simplex.assert_lower(s, dr(4), "s2")
        assert simplex.check() is None
        model = simplex.model()
        assert model["x"] >= 0 and model["y"] >= 0
        assert Fraction(4) <= model["x"] + model["y"] <= Fraction(10)

    def test_infeasible_system_gives_conflict(self):
        # x + y <= 2, x >= 2, y >= 1 is infeasible.
        simplex = Simplex()
        x = simplex.variable("x")
        y = simplex.variable("y")
        s = simplex.slack_for({"x": 1, "y": 1})
        simplex.assert_upper(s, dr(2), "sum")
        simplex.assert_lower(x, dr(2), "x")
        conflict = simplex.assert_lower(y, dr(1), "y") or simplex.check()
        assert conflict is not None
        assert set(conflict) <= {"sum", "x", "y"}
        assert "sum" in conflict

    def test_difference_constraints_chain(self):
        # Precedence chain: b - a >= 3, c - b >= 4, a >= 0  =>  c >= 7.
        simplex = Simplex()
        a = simplex.variable("a")
        c = simplex.variable("c")
        ba = simplex.slack_for({"b": 1, "a": -1})
        cb = simplex.slack_for({"c": 1, "b": -1})
        simplex.assert_lower(ba, dr(3), "ba")
        simplex.assert_lower(cb, dr(4), "cb")
        simplex.assert_lower(a, dr(0), "a")
        assert simplex.check() is None
        # Now force c <= 6: must be infeasible.
        conflict = simplex.assert_upper(c, dr(6), "c") or simplex.check()
        assert conflict is not None

    def test_equality_via_two_bounds(self):
        simplex = Simplex()
        s = simplex.slack_for({"x": 2, "y": -1})
        simplex.assert_lower(s, dr(3), "eq_lo")
        simplex.assert_upper(s, dr(3), "eq_hi")
        simplex.assert_lower(simplex.variable("y"), dr(1), "y")
        assert simplex.check() is None
        model = simplex.model()
        assert 2 * model["x"] - model["y"] == Fraction(3)

    def test_shared_polynomial_reuses_slack(self):
        simplex = Simplex()
        first = simplex.slack_for({"x": 1, "y": 2})
        second = simplex.slack_for({"y": 2, "x": 1})
        assert first == second

    def test_unit_polynomial_maps_to_variable(self):
        simplex = Simplex()
        x = simplex.variable("x")
        assert simplex.slack_for({"x": 1}) == x


class TestOptimization:
    def test_maximize_simple(self):
        # maximize x + y s.t. x <= 3, y <= 4, x, y >= 0
        simplex = Simplex()
        x = simplex.variable("x")
        y = simplex.variable("y")
        simplex.assert_lower(x, dr(0), "lx")
        simplex.assert_lower(y, dr(0), "ly")
        simplex.assert_upper(x, dr(3), "ux")
        simplex.assert_upper(y, dr(4), "uy")
        assert simplex.check() is None
        optimum = simplex.maximize({"x": Fraction(1), "y": Fraction(1)})
        assert optimum is not None
        assert optimum.value == Fraction(7)

    def test_maximize_with_coupling_constraint(self):
        # maximize 3x + 2y s.t. x + y <= 4, x <= 3, y <= 3, x,y >= 0 -> 3*3 + 2*1 = 11
        simplex = Simplex()
        x = simplex.variable("x")
        y = simplex.variable("y")
        s = simplex.slack_for({"x": 1, "y": 1})
        for var, reason in ((x, "lx"), (y, "ly")):
            simplex.assert_lower(var, dr(0), reason)
        simplex.assert_upper(x, dr(3), "ux")
        simplex.assert_upper(y, dr(3), "uy")
        simplex.assert_upper(s, dr(4), "us")
        assert simplex.check() is None
        optimum = simplex.maximize({"x": Fraction(3), "y": Fraction(2)})
        assert optimum is not None
        assert optimum.value == Fraction(11)
        model = simplex.model()
        assert 3 * model["x"] + 2 * model["y"] == Fraction(11)

    def test_unbounded_objective(self):
        simplex = Simplex()
        x = simplex.variable("x")
        simplex.assert_lower(x, dr(0), "lx")
        assert simplex.check() is None
        assert simplex.maximize({"x": Fraction(1)}) is None

    def test_minimize_via_negation(self):
        # minimize x s.t. x >= 2, x <= 9 -> maximize -x gives -2.
        simplex = Simplex()
        x = simplex.variable("x")
        simplex.assert_lower(x, dr(2), "lx")
        simplex.assert_upper(x, dr(9), "ux")
        assert simplex.check() is None
        optimum = simplex.maximize({"x": Fraction(-1)})
        assert optimum is not None
        assert optimum.value == Fraction(-2)

    def test_maximize_objective_over_slack_combination(self):
        # Scheduling-like: end = start + 5, start >= 0, end <= 20; maximize start.
        simplex = Simplex()
        start = simplex.variable("start")
        end = simplex.variable("end")
        diff = simplex.slack_for({"end": 1, "start": -1})
        simplex.assert_lower(diff, dr(5), "d_lo")
        simplex.assert_upper(diff, dr(5), "d_hi")
        simplex.assert_lower(start, dr(0), "s")
        simplex.assert_upper(end, dr(20), "e")
        assert simplex.check() is None
        optimum = simplex.maximize({"start": Fraction(1)})
        assert optimum is not None
        assert optimum.value == Fraction(15)
