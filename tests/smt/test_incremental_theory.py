"""Equivalence and unit tests for the incremental DPLL(T) theory engine.

The incremental engine (persistent, warm-started simplex with bound
retraction) must return exactly the same verdicts and OMT optima as the
legacy rebuild-per-check engine; the random-problem tests below compare
the two modes differentially.
"""

import random
from fractions import Fraction

import pytest

from repro.smt import (
    And,
    Bool,
    CheckResult,
    Implies,
    Not,
    Optimize,
    Or,
    Real,
    RealVal,
    SmtSolver,
)
from repro.smt.rational import DeltaRational
from repro.smt.simplex import Simplex


def random_omt_problem(seed: int):
    """A random guarded-scheduling OMT instance builder.

    Returns a function that populates a fresh :class:`Optimize` so the same
    instance can be solved in both theory-engine modes.
    """
    rng = random.Random(seed)
    num_reals = rng.randint(2, 4)
    num_bools = rng.randint(1, 3)
    guards = [(rng.randrange(num_bools), rng.randrange(num_reals),
               rng.randint(-8, 8)) for _ in range(rng.randint(2, 6))]
    pairs = [(rng.randrange(num_reals), rng.randrange(num_reals),
              rng.randint(-5, 5)) for _ in range(rng.randint(1, 4))]
    force = rng.randrange(num_bools)

    def build(opt: Optimize):
        xs = [Real(f"x{i}") for i in range(num_reals)]
        bs = [Bool(f"b{i}") for i in range(num_bools)]
        for x in xs:
            opt.add(x >= RealVal(0), x <= RealVal(10))
        for bool_index, real_index, bound in guards:
            opt.add(Implies(bs[bool_index], xs[real_index] <= RealVal(bound)))
            opt.add(Or(bs[bool_index], xs[real_index] >= RealVal(max(0, -bound))))
        for first, second, gap in pairs:
            if first != second:
                opt.add(xs[first] + RealVal(gap) <= xs[second] + RealVal(10))
        opt.add(bs[force])
        objective = xs[0]
        for x in xs[1:]:
            objective = objective + x
        return opt.maximize(objective)

    return build


class TestIncrementalVsLegacy:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_omt_optima_identical(self, seed):
        build = random_omt_problem(seed)
        incremental = Optimize(incremental_theory=True)
        legacy = Optimize(incremental_theory=False)
        handle_inc = build(incremental)
        handle_leg = build(legacy)
        result_inc = incremental.check()
        result_leg = legacy.check()
        assert result_inc == result_leg
        if result_inc == CheckResult.SAT and not handle_inc.unbounded:
            assert handle_inc.value() == handle_leg.value()

    @pytest.mark.parametrize("seed", range(6))
    def test_repeated_checks_stay_consistent(self, seed):
        """Re-checking after adding constraints retracts stale bounds."""
        rng = random.Random(1000 + seed)
        x, y = Real("x"), Real("y")
        solver = SmtSolver()
        solver.add(x >= RealVal(0), y >= RealVal(0))
        assert solver.check() == CheckResult.SAT
        cap = rng.randint(3, 12)
        solver.add(x + y <= RealVal(cap))
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert model[x] + model[y] <= cap
        solver.add(x >= RealVal(cap + 1))
        assert solver.check() == CheckResult.UNSAT

    def test_boolean_skeleton_flip_retracts_bounds(self):
        """Bounds of a refuted skeleton must not leak into the next check."""
        choose = Bool("choose")
        x = Real("x")
        solver = SmtSolver()
        solver.add(Implies(choose, x >= RealVal(5)))
        solver.add(Implies(Not(choose), x <= RealVal(1)))
        solver.add(x <= RealVal(3))  # forces "not choose"
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert model.eval_bool("choose") is False
        assert model[x] <= 1


class TestSimplexBacktracking:
    def test_mark_undo_restores_bounds(self):
        simplex = Simplex()
        var = simplex.variable("x")
        assert simplex.assert_lower(var, DeltaRational.of(0), "lo") is None
        mark = simplex.mark()
        assert simplex.assert_upper(var, DeltaRational.of(5), "hi") is None
        assert simplex.assert_lower(var, DeltaRational.of(2), "lo2") is None
        simplex.undo_to(mark)
        # The upper bound is gone and the lower bound is back to 0.
        assert simplex.assert_lower(var, DeltaRational.of(100), "huge") is None
        assert simplex.check() is None

    def test_undo_after_conflicting_interval(self):
        simplex = Simplex()
        slack = simplex.slack_for({"x": Fraction(1), "y": Fraction(1)})
        mark = simplex.mark()
        assert simplex.assert_upper(slack, DeltaRational.of(1), "up") is None
        conflict = simplex.assert_lower(slack, DeltaRational.of(2), "low")
        assert conflict == ["up", "low"]
        simplex.undo_to(mark)
        assert simplex.assert_lower(slack, DeltaRational.of(2), "low") is None
        assert simplex.check() is None

    def test_slack_rows_survive_backtracking(self):
        simplex = Simplex()
        poly = {"x": Fraction(2), "y": Fraction(-1)}
        slack = simplex.slack_for(poly)
        mark = simplex.mark()
        simplex.assert_upper(slack, DeltaRational.of(4), "up")
        simplex.undo_to(mark)
        assert simplex.slack_for(poly) == slack


class TestStatisticsApi:
    def test_smt_solver_statistics_aggregates_sat_counters(self):
        solver = SmtSolver()
        a, b = Bool("a"), Bool("b")
        solver.add(Or(a, b), Or(Not(a), b), Or(a, Not(b)))
        assert solver.check() == CheckResult.SAT
        stats = solver.statistics()
        assert stats["theory_checks"] >= 1
        for key in ("sat_decisions", "sat_conflicts", "sat_propagations",
                    "theory_pivots", "theory_conflicts"):
            assert key in stats

    def test_optimize_statistics_without_private_reach(self):
        x = Real("x")
        opt = Optimize()
        opt.add(x >= RealVal(0), x <= RealVal(7))
        opt.maximize(x)
        assert opt.check() == CheckResult.SAT
        stats = opt.statistics()
        assert stats["improvement_rounds"] >= 1
        assert "sat_conflicts" in stats and "sat_decisions" in stats
        assert "theory_checks" in stats
