"""Tests for the lazy DPLL(T) SMT solver and the OMT Optimize facade."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import (
    And,
    Bool,
    BoolVal,
    CheckResult,
    Iff,
    Implies,
    Ite,
    Not,
    Optimize,
    Or,
    Real,
    RealVal,
    SmtSolver,
    Sum,
)


class TestPropositionalLayer:
    def test_simple_sat(self):
        solver = SmtSolver()
        a, b = Bool("a"), Bool("b")
        solver.add(Or(a, b), Not(a))
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert model.eval_bool("b") is True
        assert model.eval_bool("a") is False

    def test_simple_unsat(self):
        solver = SmtSolver()
        a = Bool("a")
        solver.add(a, Not(a))
        assert solver.check() == CheckResult.UNSAT

    def test_boolean_constants(self):
        solver = SmtSolver()
        solver.add(BoolVal(True))
        assert solver.check() == CheckResult.SAT
        solver2 = SmtSolver()
        solver2.add(BoolVal(False))
        assert solver2.check() == CheckResult.UNSAT

    def test_iff_and_ite(self):
        a, b, c = Bool("a"), Bool("b"), Bool("c")
        solver = SmtSolver()
        solver.add(Iff(a, b), Ite(a, c, Not(c)), a)
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert model.eval_bool("b") is True
        assert model.eval_bool("c") is True

    def test_implication_chain(self):
        bools = [Bool(f"x{i}") for i in range(10)]
        solver = SmtSolver()
        solver.add(bools[0])
        for first, second in zip(bools, bools[1:]):
            solver.add(Implies(first, second))
        assert solver.check() == CheckResult.SAT
        assert solver.model().eval_bool("x9") is True


class TestTheoryIntegration:
    def test_linear_constraints_sat(self):
        x, y = Real("x"), Real("y")
        solver = SmtSolver()
        solver.add(x >= RealVal(0), y >= RealVal(0), x + y <= RealVal(5), x >= RealVal(2))
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert model[x] >= 2
        assert model[x] + model[y] <= 5

    def test_linear_constraints_unsat(self):
        x = Real("x")
        solver = SmtSolver()
        solver.add(x >= RealVal(3), x <= RealVal(2))
        assert solver.check() == CheckResult.UNSAT

    def test_equality_atom(self):
        x, y = Real("x"), Real("y")
        solver = SmtSolver()
        solver.add((x + y).eq(RealVal(10)), x.eq(RealVal(4)))
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert model[x] == Fraction(4)
        assert model[y] == Fraction(6)

    def test_strict_inequality(self):
        x = Real("x")
        solver = SmtSolver()
        solver.add(x > RealVal(0), x < RealVal(1))
        assert solver.check() == CheckResult.SAT
        assert Fraction(0) < solver.model()[x] < Fraction(1)

    def test_strict_inequality_unsat(self):
        x = Real("x")
        solver = SmtSolver()
        solver.add(x > RealVal(1), x < RealVal(1))
        assert solver.check() == CheckResult.UNSAT

    def test_boolean_theory_interaction(self):
        # choose -> x >= 5; not choose -> x <= 1; x >= 3 forces choose.
        choose = Bool("choose")
        x = Real("x")
        solver = SmtSolver()
        solver.add(Implies(choose, x >= RealVal(5)))
        solver.add(Implies(Not(choose), x <= RealVal(1)))
        solver.add(x >= RealVal(3))
        assert solver.check() == CheckResult.SAT
        model = solver.model()
        assert model.eval_bool("choose") is True
        assert model[x] >= 5

    def test_disjunctive_theory_choice(self):
        x = Real("x")
        solver = SmtSolver()
        solver.add(Or(x <= RealVal(-5), x >= RealVal(5)))
        solver.add(x >= RealVal(0))
        assert solver.check() == CheckResult.SAT
        assert solver.model()[x] >= 5

    def test_unsat_through_combination(self):
        a = Bool("a")
        x = Real("x")
        solver = SmtSolver()
        solver.add(Or(a, x >= RealVal(10)))
        solver.add(Not(a))
        solver.add(x <= RealVal(1))
        assert solver.check() == CheckResult.UNSAT

    def test_scheduling_chain(self):
        # Three jobs in sequence with durations 3, 4, 5 starting at >= 0.
        starts = [Real(f"s{i}") for i in range(3)]
        durations = [3, 4, 5]
        solver = SmtSolver()
        solver.add(starts[0] >= RealVal(0))
        for i in range(1, 3):
            solver.add(starts[i] >= starts[i - 1] + RealVal(durations[i - 1]))
        makespan = Real("makespan")
        solver.add(makespan >= starts[2] + RealVal(durations[2]))
        solver.add(makespan <= RealVal(11))  # critical path is 12 -> unsat
        assert solver.check() == CheckResult.UNSAT

    def test_model_evaluates_expressions(self):
        x, y = Real("x"), Real("y")
        solver = SmtSolver()
        solver.add(x.eq(RealVal(2)), y.eq(RealVal(5)))
        assert solver.check() == CheckResult.SAT
        assert solver.model().eval_linear(2 * x + y) == Fraction(9)


class TestOptimize:
    def test_maximize_linear(self):
        x, y = Real("x"), Real("y")
        opt = Optimize()
        opt.add(x >= RealVal(0), y >= RealVal(0), x + y <= RealVal(10))
        handle = opt.maximize(x + 2 * y)
        assert opt.check() == CheckResult.SAT
        assert handle.value() == Fraction(20)
        assert opt.model()[y] == Fraction(10)

    def test_minimize_linear(self):
        x = Real("x")
        opt = Optimize()
        opt.add(x >= RealVal(3), x <= RealVal(8))
        handle = opt.minimize(x)
        assert opt.check() == CheckResult.SAT
        assert handle.value() == Fraction(3)

    def test_boolean_choice_affects_objective(self):
        # Choosing 'fast' reduces the duration from 10 to 4 but needs setup <= 1.
        fast = Bool("fast")
        duration, setup = Real("duration"), Real("setup")
        opt = Optimize()
        opt.add(setup >= RealVal(0))
        opt.add(Implies(fast, And(duration.eq(RealVal(4)), setup <= RealVal(1))))
        opt.add(Implies(Not(fast), duration.eq(RealVal(10))))
        handle = opt.minimize(duration + setup)
        assert opt.check() == CheckResult.SAT
        assert handle.value() == Fraction(4)
        assert opt.model().eval_bool("fast") is True

    def test_mutually_exclusive_choices(self):
        # Pick at most one of two improvements; the better one must be chosen.
        a, b = Bool("a"), Bool("b")
        gain = Real("gain")
        opt = Optimize()
        opt.add(Or(Not(a), Not(b)))
        opt.add(
            Implies(And(a, Not(b)), gain.eq(RealVal(5))),
            Implies(And(b, Not(a)), gain.eq(RealVal(9))),
            Implies(And(Not(a), Not(b)), gain.eq(RealVal(0))),
        )
        handle = opt.maximize(gain)
        assert opt.check() == CheckResult.SAT
        assert handle.value() == Fraction(9)
        model = opt.model()
        assert model.eval_bool("b") is True
        assert model.eval_bool("a") is False

    def test_unsat_problem_reported(self):
        x = Real("x")
        opt = Optimize()
        opt.add(x >= RealVal(3), x <= RealVal(1))
        opt.maximize(x)
        assert opt.check() == CheckResult.UNSAT

    def test_unbounded_objective_flagged(self):
        x = Real("x")
        opt = Optimize()
        opt.add(x >= RealVal(0))
        handle = opt.maximize(x)
        assert opt.check() == CheckResult.SAT
        assert handle.unbounded
        with pytest.raises(RuntimeError):
            handle.value()

    def test_only_one_objective_allowed(self):
        opt = Optimize()
        opt.maximize(Real("x"))
        with pytest.raises(RuntimeError):
            opt.minimize(Real("y"))

    def test_no_objective_behaves_like_solver(self):
        opt = Optimize()
        a = Bool("a")
        opt.add(Or(a, Not(a)))
        assert opt.check() == CheckResult.SAT
        assert opt.model() is not None

    def test_scheduling_minimize_makespan(self):
        # Two parallel chains share a final job; optimum makespan is 9.
        s1, s2, s3 = Real("s1"), Real("s2"), Real("s3")
        makespan = Real("makespan")
        opt = Optimize()
        opt.add(s1 >= RealVal(0), s2 >= RealVal(0))
        opt.add(s3 >= s1 + RealVal(4), s3 >= s2 + RealVal(6))
        opt.add(makespan >= s3 + RealVal(3))
        handle = opt.minimize(makespan)
        assert opt.check() == CheckResult.SAT
        assert handle.value() == Fraction(9)

    def test_objective_with_boolean_duration_deltas(self):
        # Mimics Eq. (3): duration = 10 - 6*c0 - 3*c1 with c0, c1 incompatible.
        c0, c1 = Bool("c0"), Bool("c1")
        duration = Real("duration")
        opt = Optimize()
        opt.add(Or(Not(c0), Not(c1)))
        opt.add(
            Implies(And(c0, Not(c1)), duration.eq(RealVal(4))),
            Implies(And(c1, Not(c0)), duration.eq(RealVal(7))),
            Implies(And(Not(c0), Not(c1)), duration.eq(RealVal(10))),
        )
        handle = opt.minimize(duration)
        assert opt.check() == CheckResult.SAT
        assert handle.value() == Fraction(4)
        assert opt.model().eval_bool("c0") is True


@settings(max_examples=25, deadline=None)
@given(
    lower=st.integers(min_value=-20, max_value=10),
    upper_offset=st.integers(min_value=0, max_value=30),
)
def test_property_optimize_box_bounds(lower, upper_offset):
    """Maximizing x over [lower, lower+offset] returns the upper end."""
    x = Real("x")
    opt = Optimize()
    opt.add(x >= RealVal(lower), x <= RealVal(lower + upper_offset))
    handle = opt.maximize(x)
    assert opt.check() == CheckResult.SAT
    assert handle.value() == Fraction(lower + upper_offset)


@settings(max_examples=25, deadline=None)
@given(
    durations=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=5)
)
def test_property_chain_makespan_equals_sum(durations):
    """Minimizing the makespan of a chain equals the sum of durations."""
    opt = Optimize()
    starts = [Real(f"s{i}") for i in range(len(durations))]
    opt.add(starts[0] >= RealVal(0))
    for i in range(1, len(durations)):
        opt.add(starts[i] >= starts[i - 1] + RealVal(durations[i - 1]))
    makespan = Real("makespan")
    opt.add(makespan >= starts[-1] + RealVal(durations[-1]))
    handle = opt.minimize(makespan)
    assert opt.check() == CheckResult.SAT
    assert handle.value() == Fraction(sum(durations))
