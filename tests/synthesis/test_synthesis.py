"""Tests for single-qubit ZYZ and two-qubit KAK synthesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    QuantumCircuit,
    allclose_up_to_global_phase,
    circuit_unitary,
    cx,
    cz,
    h,
    iswap,
    rz,
    swap,
    u3,
    x,
)
from repro.synthesis import (
    canonical_gate_matrix,
    decompose_two_qubit,
    kak_decompose,
    kron_factor,
    makhlin_invariants,
    merge_single_qubit_runs,
    synthesize_canonical,
    weyl_coordinates,
    zyz_decompose,
)
from repro.synthesis.two_qubit import cz_count


def random_unitary(dim, rng):
    """Haar-ish random unitary via QR of a complex Gaussian matrix."""
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(matrix)
    return q @ np.diag(np.diag(r) / np.abs(np.diag(r)))


class TestZyz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_single_qubit_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        target = random_unitary(2, rng)
        theta, phi, lam, gamma = zyz_decompose(target)
        rebuilt = (
            np.exp(1j * gamma)
            * rz(phi).to_matrix()
            @ np.array(
                [
                    [math.cos(theta / 2), -math.sin(theta / 2)],
                    [math.sin(theta / 2), math.cos(theta / 2)],
                ]
            )
            @ rz(lam).to_matrix()
        )
        assert np.allclose(rebuilt, target, atol=1e-9)

    def test_named_gates(self):
        for gate in (x(), h(), rz(0.3), u3(0.1, 0.2, 0.3)):
            theta, phi, lam, gamma = zyz_decompose(gate.to_matrix())
            rebuilt = np.exp(1j * gamma) * (
                rz(phi).to_matrix()
                @ np.array(
                    [
                        [math.cos(theta / 2), -math.sin(theta / 2)],
                        [math.sin(theta / 2), math.cos(theta / 2)],
                    ]
                )
                @ rz(lam).to_matrix()
            )
            assert np.allclose(rebuilt, gate.to_matrix(), atol=1e-9)

    def test_non_unitary_rejected(self):
        with pytest.raises(ValueError):
            zyz_decompose(np.array([[1, 0], [0, 2]], dtype=complex))


class TestKronFactor:
    def test_factor_product(self):
        rng = np.random.default_rng(5)
        a = random_unitary(2, rng)
        b = random_unitary(2, rng)
        product = np.kron(b, a)
        fa, fb, phase = kron_factor(product)
        assert np.allclose(phase * np.kron(fb, fa), product, atol=1e-9)

    def test_rejects_entangling_gate(self):
        with pytest.raises(ValueError):
            kron_factor(cx().to_matrix())


class TestMakhlinAndWeyl:
    def test_known_invariants(self):
        assert np.allclose(makhlin_invariants(np.eye(4)), (1.0, 0.0, 3.0), atol=1e-9)
        assert np.allclose(makhlin_invariants(cx().to_matrix()), (0.0, 0.0, 1.0), atol=1e-9)
        assert np.allclose(makhlin_invariants(cz().to_matrix()), (0.0, 0.0, 1.0), atol=1e-9)
        assert np.allclose(
            makhlin_invariants(swap().to_matrix()), (-1.0, 0.0, -3.0), atol=1e-9
        )

    def test_invariants_are_local_invariant(self):
        rng = np.random.default_rng(2)
        target = random_unitary(4, rng)
        locals_ = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        assert np.allclose(
            makhlin_invariants(target),
            makhlin_invariants(locals_ @ target),
            atol=1e-8,
        )

    def test_weyl_coordinates_of_known_gates(self):
        assert np.allclose(weyl_coordinates(np.eye(4)), (0, 0, 0), atol=1e-7)
        assert np.allclose(
            weyl_coordinates(cx().to_matrix()), (math.pi / 4, 0, 0), atol=1e-7
        )
        assert np.allclose(
            weyl_coordinates(iswap().to_matrix()),
            (math.pi / 4, math.pi / 4, 0),
            atol=1e-7,
        )
        assert np.allclose(
            weyl_coordinates(swap().to_matrix()),
            (math.pi / 4, math.pi / 4, math.pi / 4),
            atol=1e-7,
        )


class TestKak:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_unitary_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        target = random_unitary(4, rng)
        decomposition = kak_decompose(target)
        assert np.allclose(decomposition.reconstruct(), target, atol=1e-7)

    @pytest.mark.parametrize(
        "gate", [cx(), cz(), swap(), iswap()], ids=lambda g: g.name
    )
    def test_named_gates_roundtrip(self, gate):
        decomposition = kak_decompose(gate.to_matrix())
        assert np.allclose(decomposition.reconstruct(), gate.to_matrix(), atol=1e-7)

    def test_local_gate_has_zero_interaction(self):
        rng = np.random.default_rng(9)
        local = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        decomposition = kak_decompose(local)
        assert decomposition.interaction_strength() == pytest.approx(0.0, abs=1e-6)

    def test_canonical_gate_matrix_is_unitary(self):
        matrix = canonical_gate_matrix(0.3, 0.2, 0.1)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(4), atol=1e-12)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            kak_decompose(np.ones((4, 4)))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            kak_decompose(np.eye(2))


class TestCanonicalSynthesis:
    @pytest.mark.parametrize(
        "coords",
        [
            (0.0, 0.0, 0.0),
            (math.pi / 4, 0.0, 0.0),
            (math.pi / 4, math.pi / 4, 0.0),
            (math.pi / 4, math.pi / 4, math.pi / 4),
            (0.3, 0.0, 0.0),
            (0.3, 0.2, 0.0),
            (0.3, 0.2, 0.1),
            (0.3, 0.2, math.pi / 4),
            (-0.3, 0.5, -0.1),
            (1.9, -2.3, 0.7),
        ],
    )
    def test_matches_canonical_matrix(self, coords):
        circuit = synthesize_canonical(*coords)
        assert allclose_up_to_global_phase(
            circuit_unitary(circuit), canonical_gate_matrix(*coords), atol=1e-7
        )

    def test_cz_counts_by_class(self):
        assert cz_count(synthesize_canonical(0, 0, 0)) == 0
        assert cz_count(synthesize_canonical(math.pi / 4, 0, 0)) == 1
        assert cz_count(synthesize_canonical(math.pi / 4, math.pi / 4, 0)) == 2
        assert cz_count(synthesize_canonical(0.31, 0.17, 0)) == 2
        assert cz_count(synthesize_canonical(math.pi / 4, math.pi / 4, math.pi / 4)) == 3
        assert cz_count(synthesize_canonical(0.31, 0.17, 0.05)) <= 4


class TestTwoQubitDecomposition:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_unitaries(self, seed):
        rng = np.random.default_rng(100 + seed)
        target = random_unitary(4, rng)
        circuit = decompose_two_qubit(target)
        assert allclose_up_to_global_phase(circuit_unitary(circuit), target, atol=1e-6)
        assert cz_count(circuit) <= 4
        for inst in circuit.instructions:
            assert inst.name in ("cz", "h", "s", "sdg", "rx", "rz", "u3", "x", "y", "z",
                                 "id", "t", "tdg")

    def test_cnot_block_costs_one_cz(self):
        circuit = decompose_two_qubit(cx().to_matrix())
        assert cz_count(circuit) == 1

    def test_swap_costs_three_cz(self):
        circuit = decompose_two_qubit(swap().to_matrix())
        assert cz_count(circuit) == 3

    def test_two_cnot_block_costs_two_cz(self):
        # CX . (Rx on control, Rz on target) . CX generates XX and ZZ content
        # (a two-axis class), which the resynthesis covers with two CZ gates.
        block = QuantumCircuit(2)
        block.cx(0, 1).rx(0.4, 0).rz(0.7, 1).cx(0, 1)
        circuit = decompose_two_qubit(circuit_unitary(block))
        assert cz_count(circuit) == 2

    def test_local_block_costs_zero_cz(self):
        block = QuantumCircuit(2)
        block.h(0).rz(0.3, 1)
        circuit = decompose_two_qubit(circuit_unitary(block))
        assert cz_count(circuit) == 0


class TestMergeSingleQubitRuns:
    def test_merges_adjacent_rotations(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.2, 0).rz(0.3, 0).cx(0, 1).h(1).h(1)
        merged = merge_single_qubit_runs(circuit)
        assert merged.two_qubit_gate_count() == 1
        assert allclose_up_to_global_phase(
            circuit_unitary(merged), circuit_unitary(circuit), atol=1e-8
        )
        # The two Hadamards cancel entirely.
        assert all(inst.qubits != (1,) or inst.name != "h" for inst in merged)

    def test_identity_runs_dropped(self):
        circuit = QuantumCircuit(1)
        circuit.x(0).x(0)
        merged = merge_single_qubit_runs(circuit)
        assert len(merged) == 0

    def test_preserves_unitary_on_mixed_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).t(0).cx(0, 1).s(1).sdg(1).h(0).cx(1, 0).rz(1.2, 0)
        merged = merge_single_qubit_runs(circuit)
        assert allclose_up_to_global_phase(
            circuit_unitary(merged), circuit_unitary(circuit), atol=1e-8
        )
        assert len(merged) <= len(circuit)


@settings(max_examples=20, deadline=None)
@given(
    a=st.floats(min_value=-1.5, max_value=1.5),
    b=st.floats(min_value=-1.5, max_value=1.5),
    c=st.floats(min_value=-1.5, max_value=1.5),
)
def test_property_canonical_synthesis_exact(a, b, c):
    """synthesize_canonical reproduces exp(i(aXX+bYY+cZZ)) for arbitrary angles."""
    circuit = synthesize_canonical(a, b, c)
    assert allclose_up_to_global_phase(
        circuit_unitary(circuit), canonical_gate_matrix(a, b, c), atol=1e-6
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_kak_roundtrip(seed):
    """KAK decomposition reconstructs arbitrary random two-qubit unitaries."""
    rng = np.random.default_rng(seed)
    target = random_unitary(4, rng)
    assert np.allclose(kak_decompose(target).reconstruct(), target, atol=1e-6)
