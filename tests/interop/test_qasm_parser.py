"""Frontend tests: lexing, parsing, lowering and error positions."""

import math

import numpy as np
import pytest

from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
)
from repro.circuits import gates as glib
from repro.interop import QasmError, parse_qasm, qasm_to_circuit
from repro.interop.ast_nodes import GateCall, Measure, QregDecl
from repro.interop.lexer import tokenize

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def lower(body: str, header: str = HEADER):
    return qasm_to_circuit(header + body)


class TestLexer:
    def test_token_positions_are_one_based(self):
        tokens = tokenize("qreg q[3];\nh q[0];")
        assert (tokens[0].type, tokens[0].line, tokens[0].column) == ("qreg", 1, 1)
        h_token = next(t for t in tokens if t.text == "h")
        assert (h_token.line, h_token.column) == (2, 1)

    def test_numbers_and_exponents(self):
        kinds = [t.type for t in tokenize("3 3.5 .5 1e-5 2E+3")][:-1]
        assert kinds == ["int", "real", "real", "real", "real"]

    def test_comments_are_skipped(self):
        tokens = tokenize("// a comment\nh q;// trailing\n")
        assert [t.text for t in tokens][:-1] == ["h", "q", ";"]

    def test_unexpected_character_reports_position(self):
        with pytest.raises(QasmError) as excinfo:
            tokenize("qreg q[2];\n  @")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
        assert "line 2, column 3" in str(excinfo.value)

    def test_unterminated_string(self):
        with pytest.raises(QasmError, match="unterminated string"):
            tokenize('include "qelib1.inc;')


class TestParserStructure:
    def test_program_ast_shape(self):
        program = parse_qasm(HEADER + "qreg q[2];\ncx q[0],q[1];\nmeasure q[0] -> c[0];")
        kinds = [type(s).__name__ for s in program.statements]
        assert kinds == ["Include", "QregDecl", "GateCall", "Measure"]
        qreg = program.statements[1]
        assert isinstance(qreg, QregDecl) and qreg.size == 2

    def test_version_must_be_2_0(self):
        with pytest.raises(QasmError, match="only 2.0"):
            parse_qasm("OPENQASM 3.0;\nqreg q[1];")

    def test_expression_precedence(self):
        program = parse_qasm("qreg q[1];\nrz(1+2*3^2) q[0];")
        call = next(s for s in program.statements if isinstance(s, GateCall))
        assert call.params[0].evaluate({}) == pytest.approx(19.0)

    def test_expression_functions_and_pi(self):
        program = parse_qasm("qreg q[1];\nrz(sin(pi/2) - cos(0)/2) q[0];")
        call = next(s for s in program.statements if isinstance(s, GateCall))
        assert call.params[0].evaluate({}) == pytest.approx(0.5)

    def test_unary_minus_binds_tighter_than_product(self):
        program = parse_qasm("qreg q[1];\nrz(-pi/2) q[0];")
        call = next(s for s in program.statements if isinstance(s, GateCall))
        assert call.params[0].evaluate({}) == pytest.approx(-math.pi / 2)

    def test_empty_input_rejected(self):
        with pytest.raises(QasmError, match="empty"):
            parse_qasm("   \n  ")


class TestParserErrors:
    """The satellite requirement: errors carry line/column on bad input."""

    @pytest.mark.parametrize(
        "source, line, column, fragment",
        [
            ("qreg q[2]\nh q[0];", 2, 1, "expected ';'"),
            ("qreg q[x];", 1, 8, "register size"),
            ("qreg q[2];\ncx q[0] q[1];", 2, 9, "expected ';'"),
            ("gate foo a { h b; }", 1, 16, "undeclared qubit"),
            ("gate foo a { h a[0]; }", 1, 16, "cannot index"),
            ("qreg q[2];\nrz(,) q[0];", 2, 4, "expression"),
        ],
    )
    def test_positions(self, source, line, column, fragment):
        with pytest.raises(QasmError) as excinfo:
            parse_qasm(source)
        assert excinfo.value.line == line
        if column is not None:
            assert excinfo.value.column == column
        assert fragment in str(excinfo.value)

    def test_unterminated_gate_body(self):
        with pytest.raises(QasmError, match="unterminated body"):
            parse_qasm("gate foo a { h a;")


class TestLowering:
    def test_builtin_u_and_cx(self):
        circuit = qasm_to_circuit(
            "OPENQASM 2.0;\nqreg q[2];\nU(pi/2,0,pi) q[0];\nCX q[0],q[1];"
        )
        assert [inst.name for inst in circuit] == ["u3", "cx"]
        assert circuit.instructions[0].gate.params[0] == pytest.approx(math.pi / 2)

    def test_multi_register_flattening(self):
        circuit = lower("qreg a[2];\nqreg b[2];\ncx a[1],b[0];")
        # a -> qubits 0..1, b -> qubits 2..3 (declaration order).
        assert circuit.num_qubits == 4
        assert circuit.instructions[0].qubits == (1, 2)

    def test_register_broadcast(self):
        circuit = lower("qreg q[3];\nh q;")
        assert [inst.qubits for inst in circuit] == [(0,), (1,), (2,)]

    def test_pairwise_broadcast(self):
        circuit = lower("qreg a[2];\nqreg b[2];\ncx a,b;")
        assert [inst.qubits for inst in circuit] == [(0, 2), (1, 3)]

    def test_mixed_broadcast_single_and_register(self):
        circuit = lower("qreg q[1];\nqreg r[3];\ncx q[0],r;")
        assert [inst.qubits for inst in circuit] == [(0, 1), (0, 2), (0, 3)]

    def test_mismatched_broadcast_rejected(self):
        with pytest.raises(QasmError, match="mismatched register sizes"):
            lower("qreg a[2];\nqreg b[3];\ncx a,b;")

    def test_qelib1_native_gates_are_exact(self):
        circuit = lower("qreg q[1];\nsx q[0];\nu2(0.1,0.2) q[0];")
        assert np.allclose(
            circuit.instructions[0].gate.to_matrix(), glib.sx().to_matrix()
        )
        assert circuit.instructions[1].gate.params == (0.1, 0.2)

    def test_composite_qelib1_gates_expand(self):
        circuit = lower("qreg q[3];\nccx q[0],q[1],q[2];")
        names = {inst.name for inst in circuit}
        assert names <= {"h", "t", "tdg", "cx"}
        toffoli = np.eye(8)[:, [0, 1, 2, 7, 4, 5, 6, 3]]  # little-endian CCX
        assert allclose_up_to_global_phase(circuit_unitary(circuit), toffoli)

    def test_user_gate_definition_with_params(self):
        circuit = lower(
            "gate wiggle(a,b) p,q { rz(a/2) p; cx p,q; ry(-b) q; }\n"
            "qreg q[2];\nwiggle(pi,0.5) q[0],q[1];"
        )
        assert [inst.name for inst in circuit] == ["rz", "cx", "ry"]
        assert circuit.instructions[0].gate.params[0] == pytest.approx(math.pi / 2)
        assert circuit.instructions[2].gate.params[0] == pytest.approx(-0.5)

    def test_spin_native_names_resolve_natively(self):
        circuit = lower(
            "qreg q[2];\ncrot(0.7,0.2) q[0],q[1];\ncz_d q[0],q[1];\n"
            "iswap q[0],q[1];\nrzx(0.4) q[0],q[1];"
        )
        assert [inst.name for inst in circuit] == ["crot", "cz_d", "iswap", "rzx"]
        assert np.allclose(
            circuit.instructions[0].gate.to_matrix(),
            glib.crot(0.7, 0.2).to_matrix(),
        )

    def test_measure_and_barrier_are_dropped(self):
        circuit = lower(
            "qreg q[2];\ncreg c[2];\nh q[0];\nbarrier q;\nmeasure q -> c;"
        )
        assert [inst.name for inst in circuit] == ["h"]

    def test_measure_size_mismatch(self):
        with pytest.raises(QasmError, match="size"):
            lower("qreg q[2];\ncreg c[3];\nmeasure q -> c;")

    def test_reset_unsupported(self):
        with pytest.raises(QasmError, match="reset is not supported"):
            lower("qreg q[1];\nreset q[0];")

    def test_conditional_unsupported(self):
        with pytest.raises(QasmError, match="not supported"):
            lower("qreg q[1];\ncreg c[1];\nif (c==1) x q[0];")

    def test_unknown_include_rejected(self):
        with pytest.raises(QasmError, match="only the bundled"):
            qasm_to_circuit('OPENQASM 2.0;\ninclude "other.inc";\nqreg q[1];\nh q;')

    def test_unknown_gate_without_include(self):
        # Without qelib1, composite names are unknown; native ones still work.
        with pytest.raises(QasmError, match="unknown gate 'ccx'"):
            qasm_to_circuit("OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[2];")
        circuit = qasm_to_circuit("OPENQASM 2.0;\nqreg q[1];\nh q[0];")
        assert circuit.instructions[0].name == "h"

    def test_qubit_index_out_of_range(self):
        with pytest.raises(QasmError, match=r"q\[5\] out of range"):
            lower("qreg q[2];\nh q[5];")

    def test_duplicate_register_rejected(self):
        with pytest.raises(QasmError, match="already declared"):
            lower("qreg q[2];\ncreg q[2];")

    def test_duplicate_qubit_arguments_rejected(self):
        with pytest.raises(QasmError, match="duplicate qubit"):
            lower("qreg q[2];\ncx q[0],q[0];")

    def test_no_qubits_rejected(self):
        with pytest.raises(QasmError, match="no quantum registers"):
            qasm_to_circuit("OPENQASM 2.0;\ncreg c[2];")

    def test_wrong_arity_rejected(self):
        with pytest.raises(QasmError, match="parameter"):
            lower("qreg q[1];\nrz(1,2) q[0];")
        with pytest.raises(QasmError, match="qubit"):
            lower("qreg q[2];\nh q[0],q[1];")

    def test_opaque_gate_application_rejected(self):
        with pytest.raises(QasmError, match="opaque"):
            lower("opaque magic a,b;\nqreg q[2];\nmagic q[0],q[1];")

    def test_divergent_user_definition_of_native_name_wins(self):
        # A foreign file may reuse a native name with different semantics
        # (here: 'iswap' defined as a plain SWAP) — its definition is
        # authoritative and must expand, not be intercepted.
        circuit = lower(
            "gate iswap a,b { cx a,b; cx b,a; cx a,b; }\n"
            "qreg q[2];\niswap q[0],q[1];"
        )
        assert [inst.name for inst in circuit] == ["cx", "cx", "cx"]
        assert allclose_up_to_global_phase(
            circuit_unitary(circuit),
            glib.swap().to_matrix(),
        )

    def test_equivalent_user_definition_intercepts_natively(self):
        # Re-imported exports define crot with an equivalent body; the
        # library gate (exact matrix, name preserved) is used instead.
        circuit = lower(
            "gate crot(theta,phi) a,b { rz(-phi) b; crx(theta) a,b; rz(phi) b; }\n"
            "qreg q[2];\ncrot(0.7,0.3) q[0],q[1];"
        )
        assert [inst.name for inst in circuit] == ["crot"]
        assert np.allclose(
            circuit.instructions[0].gate.to_matrix(),
            glib.crot(0.7, 0.3).to_matrix(),
        )

    def test_self_referential_definition_does_not_hang(self):
        with pytest.raises(QasmError, match="nested deeper"):
            lower(
                "gate iswap a,b { iswap a,b; }\nqreg q[2];\niswap q[0],q[1];"
            )

    def test_circuit_name_override(self):
        circuit = qasm_to_circuit(
            "OPENQASM 2.0;\nqreg q[1];\nh q[0];", name="my_bench"
        )
        assert circuit.name == "my_bench"
