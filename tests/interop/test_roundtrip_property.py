"""Property tests: QASM export -> import is unitary-equivalent.

Covers random circuits over the full gate library (≤6 qubits), every
named workload family, and every bundled suite benchmark — the PR 4
acceptance bar.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_BUILDERS
from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
)
from repro.interop import circuit_to_qasm, load_suite, qasm_to_circuit
from repro.workloads import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    hardware_efficient_ansatz,
    qaoa_ring_circuit,
    qft_circuit,
    quantum_volume_circuit,
    random_template_circuit,
)

#: Parameter arities of every builder (probed once at import).
_ARITIES = {}
for _name, _builder in GATE_BUILDERS.items():
    for _params in ((), (0.5,), (0.5, 0.25), (0.5, 0.25, -0.5)):
        try:
            _builder(*_params)
            _ARITIES[_name] = len(_params)
            break
        except TypeError:
            continue


def random_library_circuit(num_qubits: int, depth: int, seed: int) -> QuantumCircuit:
    """A random circuit drawing uniformly from the whole gate library."""
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"soup_{num_qubits}_{seed}")
    names = sorted(_ARITIES)
    for _ in range(depth):
        name = rng.choice(names)
        builder = GATE_BUILDERS[name]
        gate = builder(*(rng.uniform(-3.1, 3.1) for _ in range(_ARITIES[name])))
        if gate.num_qubits > num_qubits:
            continue
        qubits = rng.sample(range(num_qubits), gate.num_qubits)
        circuit.append(gate, qubits)
    return circuit


def assert_roundtrip(circuit: QuantumCircuit) -> None:
    text = circuit_to_qasm(circuit)
    back = qasm_to_circuit(text, name=circuit.name)
    assert back.num_qubits == circuit.num_qubits
    assert allclose_up_to_global_phase(
        circuit_unitary(circuit), circuit_unitary(back)
    ), circuit.name


class TestRandomCircuitRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        num_qubits=st.integers(min_value=2, max_value=6),
        depth=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_library_soup(self, num_qubits, depth, seed):
        assert_roundtrip(random_library_circuit(num_qubits, depth, seed))

    @settings(max_examples=10, deadline=None)
    @given(
        num_qubits=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_template_circuits(self, num_qubits, seed):
        assert_roundtrip(random_template_circuit(num_qubits, 20, seed=seed))

    @settings(max_examples=10, deadline=None)
    @given(
        num_qubits=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_quantum_volume(self, num_qubits, seed):
        assert_roundtrip(quantum_volume_circuit(num_qubits, seed=seed))


class TestNamedWorkloadRoundTrip:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: ghz_circuit(4),
            lambda: qft_circuit(4),
            lambda: qft_circuit(3, include_swaps=False),
            lambda: bernstein_vazirani_circuit("1011"),
            lambda: qaoa_ring_circuit(4, layers=2, seed=3),
            lambda: hardware_efficient_ansatz(4, layers=2, seed=3),
        ],
        ids=["ghz", "qft", "qft_noswap", "bv", "qaoa", "vqe"],
    )
    def test_named_workloads(self, build):
        assert_roundtrip(build())


class TestSuiteRoundTrip:
    @pytest.mark.parametrize(
        "entry", load_suite(), ids=lambda entry: entry.name
    )
    def test_every_bundled_benchmark(self, entry):
        assert_roundtrip(entry.circuit())
