"""Exporter tests: direct emission, custom definitions, fallbacks."""

import math

import numpy as np
import pytest

from repro.circuits import gates as glib
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_BUILDERS, Gate, build_gate
from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
)
from repro.interop import QasmExportError, circuit_to_qasm, qasm_to_circuit
from repro.interop.exporter import CUSTOM_DEFINITIONS, DIRECT_EXPORTS


def _sample_gate(name):
    """Build one parametrized instance of every registered gate."""
    builder = GATE_BUILDERS[name]
    for params in ((), (0.37,), (0.37, 0.11), (0.37, 0.11, -0.6)):
        try:
            return builder(*params)
        except TypeError:
            continue
    raise AssertionError(f"no parameter arity found for {name}")


class TestExporter:
    def test_header_and_register(self):
        circuit = QuantumCircuit(3, name="bench")
        circuit.h(0).cx(0, 1)
        text = circuit_to_qasm(circuit)
        assert "OPENQASM 2.0;" in text
        assert 'include "qelib1.inc";' in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text

    def test_every_builder_gate_exports(self):
        """The acceptance bar: all GATE_BUILDERS gates export and re-import."""
        for name in GATE_BUILDERS:
            gate = _sample_gate(name)
            circuit = QuantumCircuit(max(2, gate.num_qubits))
            circuit.append(gate, tuple(range(gate.num_qubits)))
            text = circuit_to_qasm(circuit)
            back = qasm_to_circuit(text)
            assert allclose_up_to_global_phase(
                circuit_unitary(circuit), circuit_unitary(back)
            ), name

    def test_spin_native_gates_get_definitions(self):
        circuit = QuantumCircuit(2)
        circuit.append(glib.crot(0.7, 0.3), (0, 1))
        circuit.append(glib.cz_diabatic(), (0, 1))
        text = circuit_to_qasm(circuit)
        assert "gate crot(theta,phi) a,b" in text
        assert "gate cz_d a,b" in text
        # The definition appears once even for repeated use.
        assert text.count("gate crot") == 1

    def test_native_names_survive_the_round_trip(self):
        circuit = QuantumCircuit(2)
        circuit.append(glib.crot(1.1), (1, 0))
        circuit.append(glib.swap_composite(), (0, 1))
        back = qasm_to_circuit(circuit_to_qasm(circuit))
        assert [inst.name for inst in back] == ["crot", "swap_c"]
        assert back.instructions[0].qubits == (1, 0)

    @pytest.mark.parametrize("name", sorted(CUSTOM_DEFINITIONS))
    def test_custom_definitions_expand_to_the_native_matrix(self, name):
        """The emitted qelib1 bodies are what external tools execute —
        renaming the definition forces this frontend down the same path."""
        gate = _sample_gate(name)
        definition = CUSTOM_DEFINITIONS[name].replace(
            f"gate {name}", "gate check_gate"
        )
        params = ""
        if gate.params:
            params = "(" + ",".join(repr(p) for p in gate.params) + ")"
        source = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            f"{definition}\nqreg q[2];\ncheck_gate{params} q[0],q[1];\n"
        )
        expanded = qasm_to_circuit(source)
        reference = QuantumCircuit(2).append(gate, (0, 1))
        assert allclose_up_to_global_phase(
            circuit_unitary(expanded), circuit_unitary(reference)
        )

    def test_cphase_exports_as_cu1(self):
        circuit = QuantumCircuit(2).append(glib.controlled_phase(0.4), (0, 1))
        text = circuit_to_qasm(circuit)
        assert "cu1(" in text
        back = qasm_to_circuit(text)
        assert back.instructions[0].name == "cphase"

    def test_params_round_trip_to_the_exact_float(self):
        theta = math.pi / 7 + 1e-12
        circuit = QuantumCircuit(1).append(glib.rz(theta), (0,))
        back = qasm_to_circuit(circuit_to_qasm(circuit))
        assert back.instructions[0].gate.params[0] == theta

    def test_unknown_1q_gate_falls_back_to_u3(self):
        matrix = glib.u3(0.3, 1.2, -0.4).to_matrix()
        odd = Gate("mystery", 1, (), tuple(tuple(row) for row in matrix))
        circuit = QuantumCircuit(1).append(odd, (0,))
        text = circuit_to_qasm(circuit)
        assert "u3(" in text
        back = qasm_to_circuit(text)
        assert allclose_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(back)
        )

    def test_adjoint_1q_gates_export(self):
        circuit = QuantumCircuit(1).append(glib.t().inverse(), (0,))  # "t_dg"
        back = qasm_to_circuit(circuit_to_qasm(circuit))
        assert allclose_up_to_global_phase(
            circuit_unitary(circuit), circuit_unitary(back)
        )

    def test_unknown_2q_gate_is_a_loud_error(self):
        matrix = glib.iswap().to_matrix()
        odd = Gate("mystery2", 2, (), tuple(tuple(row) for row in matrix))
        circuit = QuantumCircuit(2).append(odd, (0, 1))
        with pytest.raises(QasmExportError, match="mystery2"):
            circuit_to_qasm(circuit)

    def test_direct_exports_are_native_spellings(self):
        # Every directly-exported name must be understood by the frontend.
        from repro.interop.frontend import NATIVE_GATES

        for spelling in DIRECT_EXPORTS.values():
            assert spelling in NATIVE_GATES, spelling

    def test_custom_register_name(self):
        circuit = QuantumCircuit(2).append(build_gate("cx"), (0, 1))
        text = circuit_to_qasm(circuit, register="data")
        assert "qreg data[2];" in text
        assert "cx data[0],data[1];" in text
        back = qasm_to_circuit(text)
        assert np.allclose(circuit_unitary(back), circuit_unitary(circuit))
