"""Bundled benchmark-suite tests: inventory, metadata, compilation."""

import pytest

import repro
from repro.api import PAPER_TECHNIQUES
from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
)
from repro.hardware import spin_qubit_target
from repro.interop import (
    load_suite,
    suite_circuit,
    suite_metadata,
    suite_names,
)


class TestInventory:
    def test_at_least_twenty_four_benchmarks(self):
        assert len(suite_names()) >= 24

    def test_qubit_range_matches_the_paper(self):
        for name, metadata in suite_metadata().items():
            assert 3 <= metadata["qubits"] <= 8, name

    def test_names_follow_the_qasmbench_convention(self):
        for name in suite_names():
            family, _, qubits = name.rpartition("_n")
            assert family and qubits.isdigit(), name

    def test_load_suite_subset_and_order(self):
        entries = load_suite(["ghz_n5", "adder_n4"])
        assert [entry.name for entry in entries] == ["ghz_n5", "adder_n4"]

    def test_unknown_name_is_a_clean_error(self):
        with pytest.raises(KeyError, match="available"):
            load_suite(["nope_n3"])

    def test_metadata_matches_the_parsed_circuit(self):
        for entry in load_suite():
            circuit = entry.circuit()
            metadata = entry.metadata()
            assert metadata["qubits"] == circuit.num_qubits
            assert metadata["gates"] == len(circuit.instructions)
            assert metadata["depth"] == circuit.depth()
            assert metadata["two_qubit_gates"] == circuit.two_qubit_gate_count()

    def test_suite_circuit_shortcut(self):
        circuit = suite_circuit("toffoli_n3")
        assert circuit.name == "toffoli_n3"
        assert circuit.num_qubits == 3

    def test_qasm_sources_are_self_contained(self):
        for entry in load_suite():
            assert entry.qasm.startswith("OPENQASM 2.0;"), entry.name

    def test_suite_is_deterministic(self):
        first = suite_circuit("qaoa_n4")
        second = suite_circuit("qaoa_n4")
        assert first.to_text() == second.to_text()


class TestGeneratedFamilies:
    """The generated entries: provenance metadata and determinism."""

    def test_clifford_entries_carry_family_and_seed(self):
        metadata = suite_metadata()
        clifford = {name: md for name, md in metadata.items()
                    if md.get("family") == "clifford"}
        assert len(clifford) >= 3
        for name, md in clifford.items():
            assert isinstance(md["seed"], int), name
            assert md["two_qubit_gates"] > 0, name

    def test_qv_entries_carry_family_and_seed(self):
        metadata = suite_metadata()
        qv = {name: md for name, md in metadata.items()
              if md.get("family") == "qv"}
        assert len(qv) >= 2
        for md in qv.values():
            assert isinstance(md["seed"], int)

    def test_plain_entries_have_no_family_keys(self):
        metadata = suite_metadata(["toffoli_n3", "qft_n6"])
        for md in metadata.values():
            assert "family" not in md and "seed" not in md

    def test_same_seed_is_bit_identical_qasm(self):
        from repro.interop.suite import (
            qv_model_qasm_body,
            random_clifford_qasm_body,
        )

        assert (random_clifford_qasm_body(5, seed=23)
                == random_clifford_qasm_body(5, seed=23))
        assert (qv_model_qasm_body(4, layers=3, seed=7)
                == qv_model_qasm_body(4, layers=3, seed=7))
        # Registered entries embed exactly what the generator emits.
        entry = load_suite(["clifford_s23_n5"])[0]
        assert entry.qasm.endswith(random_clifford_qasm_body(5, seed=23))
        qv = load_suite(["qv_n4"])[0]
        assert qv.qasm.endswith(qv_model_qasm_body(4, layers=3, seed=7))

    def test_different_seeds_differ(self):
        from repro.interop.suite import random_clifford_qasm_body

        assert (random_clifford_qasm_body(5, seed=1)
                != random_clifford_qasm_body(5, seed=2))

    def test_qft_generator_matches_handwritten_shape(self):
        from repro.interop.suite import qft_qasm_body

        circuit = suite_circuit("qft_n6")
        assert circuit.num_qubits == 6
        # h + cu1 ladder + swaps: n Hadamards, n(n-1)/2 cu1, n//2 swaps.
        assert len(circuit.instructions) == 6 + 15 + 3
        assert qft_qasm_body(6) == qft_qasm_body(6)


class TestSuiteCompilation:
    def test_every_benchmark_compiles_direct(self):
        """Smoke tier: the baseline technique over the whole suite."""
        for entry in load_suite():
            circuit = entry.circuit()
            target = spin_qubit_target(max(2, circuit.num_qubits))
            result = repro.compile(circuit, target, "direct", use_cache=False)
            assert result.adapted_circuit.num_qubits >= circuit.num_qubits
            assert result.cost.gate_count > 0

    def test_direct_preserves_the_unitary_small(self):
        for name in ("toffoli_n3", "wstate_n3", "teleport_n3"):
            circuit = suite_circuit(name)
            target = spin_qubit_target(circuit.num_qubits)
            # verify=True makes the VerifyPass raise on any non-equivalence.
            result = repro.compile(
                circuit, target, "direct", use_cache=False, verify=True
            )
            assert result.cost.gate_count > 0

    @pytest.mark.slow
    @pytest.mark.parametrize("technique", PAPER_TECHNIQUES)
    def test_every_benchmark_compiles_through_every_technique(self, technique):
        """Full tier (slow): all 8 registered techniques over the suite.

        Cells that are known-infeasible in the pure-Python solvers (e.g.
        the Cuccaro adder or the 8-qubit QFT under the OMT techniques)
        are skipped — but the *golden baseline* owns that list via its
        ``expected_timeout`` annotations, not this file: rebaselining is
        the only way to declare a cell infeasible.
        """
        from repro.golden import GoldenBaseline, default_baseline_path

        baseline = GoldenBaseline.load(default_baseline_path())
        is_smt = technique.startswith("sat_")
        options = {"max_improvement_rounds": 10} if is_smt else {}
        for entry in load_suite():
            if baseline.is_expected_timeout(entry.name, technique):
                continue
            circuit = entry.circuit()
            target = spin_qubit_target(max(2, circuit.num_qubits))
            result = repro.compile(
                circuit, target, technique, use_cache=False, **options
            )
            assert result.cost.gate_count > 0, (technique, entry.name)


class TestSuiteThroughTheStack:
    def test_suite_manifest_kind(self):
        from repro.workloads.manifest import parse_manifest

        named, _ = parse_manifest(
            [{"kind": "suite", "name": "ghz_n5"}, {"kind": "suite", "name": "dj_n4"}]
        )
        assert [(name, circuit.num_qubits) for name, circuit in named] == [
            ("ghz_n5", 5), ("dj_n4", 4),
        ]

    def test_compile_many_over_suite_entries(self):
        results = repro.compile_many(
            [entry.circuit() for entry in load_suite(["ghz_n5", "toffoli_n3"])],
            technique="direct",
        )
        assert set(results) == {"ghz_n5", "toffoli_n3"}

    def test_export_adapted_benchmark_reimports(self, tmp_path):
        from repro.interop import load_qasm_file, write_qasm_file

        circuit = suite_circuit("teleport_n3")
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, "direct", use_cache=False)
        path = tmp_path / "adapted.qasm"
        write_qasm_file(result.adapted_circuit, str(path))
        back = load_qasm_file(str(path))
        assert allclose_up_to_global_phase(
            circuit_unitary(result.adapted_circuit), circuit_unitary(back)
        )
