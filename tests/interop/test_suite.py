"""Bundled benchmark-suite tests: inventory, metadata, compilation."""

import pytest

import repro
from repro.api import PAPER_TECHNIQUES
from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
)
from repro.hardware import spin_qubit_target
from repro.interop import (
    load_suite,
    suite_circuit,
    suite_metadata,
    suite_names,
)


class TestInventory:
    def test_at_least_fifteen_benchmarks(self):
        assert len(suite_names()) >= 15

    def test_qubit_range_matches_the_paper(self):
        for name, metadata in suite_metadata().items():
            assert 3 <= metadata["qubits"] <= 8, name

    def test_names_follow_the_qasmbench_convention(self):
        for name in suite_names():
            family, _, qubits = name.rpartition("_n")
            assert family and qubits.isdigit(), name

    def test_load_suite_subset_and_order(self):
        entries = load_suite(["ghz_n5", "adder_n4"])
        assert [entry.name for entry in entries] == ["ghz_n5", "adder_n4"]

    def test_unknown_name_is_a_clean_error(self):
        with pytest.raises(KeyError, match="available"):
            load_suite(["nope_n3"])

    def test_metadata_matches_the_parsed_circuit(self):
        for entry in load_suite():
            circuit = entry.circuit()
            metadata = entry.metadata()
            assert metadata["qubits"] == circuit.num_qubits
            assert metadata["gates"] == len(circuit.instructions)
            assert metadata["depth"] == circuit.depth()
            assert metadata["two_qubit_gates"] == circuit.two_qubit_gate_count()

    def test_suite_circuit_shortcut(self):
        circuit = suite_circuit("toffoli_n3")
        assert circuit.name == "toffoli_n3"
        assert circuit.num_qubits == 3

    def test_qasm_sources_are_self_contained(self):
        for entry in load_suite():
            assert entry.qasm.startswith("OPENQASM 2.0;"), entry.name

    def test_suite_is_deterministic(self):
        first = suite_circuit("qaoa_n4")
        second = suite_circuit("qaoa_n4")
        assert first.to_text() == second.to_text()


class TestSuiteCompilation:
    def test_every_benchmark_compiles_direct(self):
        """Smoke tier: the baseline technique over the whole suite."""
        for entry in load_suite():
            circuit = entry.circuit()
            target = spin_qubit_target(max(2, circuit.num_qubits))
            result = repro.compile(circuit, target, "direct", use_cache=False)
            assert result.adapted_circuit.num_qubits >= circuit.num_qubits
            assert result.cost.gate_count > 0

    def test_direct_preserves_the_unitary_small(self):
        for name in ("toffoli_n3", "wstate_n3", "teleport_n3"):
            circuit = suite_circuit(name)
            target = spin_qubit_target(circuit.num_qubits)
            # verify=True makes the VerifyPass raise on any non-equivalence.
            result = repro.compile(
                circuit, target, "direct", use_cache=False, verify=True
            )
            assert result.cost.gate_count > 0

    #: Excluded from the *SMT* legs of the slow sweep (compiled by every
    #: other technique): the 33-two-qubit-gate Cuccaro adder makes the
    #: combined-objective OMT run for tens of minutes in the pure-Python
    #: solver.  Verified to compile under sat_r; 18 of 19 benchmarks
    #: (>= the 15 the acceptance bar asks for) go through all 8 keys.
    SMT_EXCLUDED = {"rc_adder_n6"}

    @pytest.mark.slow
    @pytest.mark.parametrize("technique", PAPER_TECHNIQUES)
    def test_every_benchmark_compiles_through_every_technique(self, technique):
        """Full tier (slow): all 8 registered techniques over the suite."""
        is_smt = technique.startswith("sat_")
        options = {"max_improvement_rounds": 10} if is_smt else {}
        for entry in load_suite():
            if is_smt and entry.name in self.SMT_EXCLUDED:
                continue
            circuit = entry.circuit()
            target = spin_qubit_target(max(2, circuit.num_qubits))
            result = repro.compile(
                circuit, target, technique, use_cache=False, **options
            )
            assert result.cost.gate_count > 0, (technique, entry.name)


class TestSuiteThroughTheStack:
    def test_suite_manifest_kind(self):
        from repro.workloads.manifest import parse_manifest

        named, _ = parse_manifest(
            [{"kind": "suite", "name": "ghz_n5"}, {"kind": "suite", "name": "dj_n4"}]
        )
        assert [(name, circuit.num_qubits) for name, circuit in named] == [
            ("ghz_n5", 5), ("dj_n4", 4),
        ]

    def test_compile_many_over_suite_entries(self):
        results = repro.compile_many(
            [entry.circuit() for entry in load_suite(["ghz_n5", "toffoli_n3"])],
            technique="direct",
        )
        assert set(results) == {"ghz_n5", "toffoli_n3"}

    def test_export_adapted_benchmark_reimports(self, tmp_path):
        from repro.interop import load_qasm_file, write_qasm_file

        circuit = suite_circuit("teleport_n3")
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, "direct", use_cache=False)
        path = tmp_path / "adapted.qasm"
        write_qasm_file(result.adapted_circuit, str(path))
        back = load_qasm_file(str(path))
        assert allclose_up_to_global_phase(
            circuit_unitary(result.adapted_circuit), circuit_unitary(back)
        )
