"""Smoke tests: the example scripts run end-to-end without errors."""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "spin_device_tour.py", "paper_example.py",
     "qasm_interop.py", "http_server.py", "tracing.py", "deadlines.py",
     "golden_check.py", "telemetry_dashboard.py", "cluster_serving.py"],
)
def test_example_runs(script, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 100
