"""Shared test fixtures: keep the default (fast) tier fast.

The OMT objective-strengthening loop is capped during tests: the circuits
exercised here are small enough that the optimum is found in well under
this many rounds, and a runaway model fails fast instead of hanging the
suite.  Benchmarks (``benchmarks/``) run with the production default.
"""

import pytest

from repro.core import model as model_module

#: Round cap applied to every test compilation (production default: 400).
TEST_MAX_IMPROVEMENT_ROUNDS = 150


@pytest.fixture(autouse=True)
def _capped_improvement_rounds(monkeypatch):
    monkeypatch.setattr(
        model_module, "DEFAULT_MAX_IMPROVEMENT_ROUNDS", TEST_MAX_IMPROVEMENT_ROUNDS
    )
