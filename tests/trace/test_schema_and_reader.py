"""Event-schema validation and the ``python -m repro.trace`` reader."""

import json

import pytest

import repro
from repro.hardware import spin_qubit_target
from repro.trace import (
    TraceValidationError,
    diff_summaries,
    load_events,
    pass_totals,
    summarize,
    validate_event,
    validate_trace,
)
from repro.trace.__main__ import main as trace_main
from repro.workloads import ghz_circuit


def _event(**overrides):
    event = {
        "kind": "point",
        "ts": 1.0,
        "name": "x",
        "layer": "api",
        "pid": 1,
        "tid": 1,
        "span": None,
        "fields": {},
    }
    event.update(overrides)
    return event


class TestValidateEvent:
    def test_accepts_a_well_formed_event(self):
        validate_event(_event())

    @pytest.mark.parametrize("missing", [
        "kind", "ts", "name", "layer", "pid", "tid", "span", "fields",
    ])
    def test_rejects_missing_required_key(self, missing):
        event = _event()
        del event[missing]
        with pytest.raises(TraceValidationError, match=missing):
            validate_event(event)

    def test_rejects_unknown_kind_and_layer(self):
        with pytest.raises(TraceValidationError):
            validate_event(_event(kind="bogus"))
        with pytest.raises(TraceValidationError):
            validate_event(_event(layer="bogus"))

    def test_rejects_kind_specific_key_omissions(self):
        with pytest.raises(TraceValidationError):  # begin needs parent
            validate_event(_event(kind="begin", span=1))
        with pytest.raises(TraceValidationError):  # end needs dur
            validate_event(_event(kind="end", span=1))
        with pytest.raises(TraceValidationError):  # meta needs wall
            validate_event(_event(kind="meta"))

    def test_rejects_non_dict_fields(self):
        with pytest.raises(TraceValidationError):
            validate_event(_event(fields=[1, 2]))


class TestValidateTrace:
    def _begin(self, span, ts, parent=None, tid=1):
        return _event(kind="begin", span=span, parent=parent, ts=ts,
                      tid=tid, name=f"s{span}")

    def _end(self, span, ts, tid=1):
        return _event(kind="end", span=span, dur=0.0, ts=ts, tid=tid,
                      name=f"s{span}")

    def test_accepts_nested_spans(self):
        events = [
            self._begin(1, 0.0),
            self._begin(2, 0.1, parent=1),
            self._end(2, 0.2),
            self._end(1, 0.3),
        ]
        assert validate_trace(events) == 4

    def test_rejects_non_lifo_span_closing(self):
        events = [
            self._begin(1, 0.0),
            self._begin(2, 0.1, parent=1),
            self._end(1, 0.2),
        ]
        with pytest.raises(TraceValidationError, match="innermost"):
            validate_trace(events)

    def test_rejects_unknown_parent(self):
        with pytest.raises(TraceValidationError, match="parent"):
            validate_trace([self._begin(2, 0.0, parent=99)])

    def test_rejects_non_monotonic_timestamps_within_a_thread(self):
        events = [self._begin(1, 1.0), self._end(1, 0.5)]
        with pytest.raises(TraceValidationError, match="backwards"):
            validate_trace(events)

    def test_allows_cross_thread_parenting_after_parent_ended(self):
        """A job span may parent under a submit span that already closed."""
        events = [
            self._begin(1, 0.0, tid=1),
            self._end(1, 0.1, tid=1),
            self._begin(2, 0.2, parent=1, tid=2),
            self._end(2, 0.3, tid=2),
        ]
        assert validate_trace(events) == 4


@pytest.fixture(scope="module")
def traced_compile(tmp_path_factory):
    """One real traced compilation shared by the reader tests."""
    path = str(tmp_path_factory.mktemp("trace") / "compile.jsonl")
    circuit = ghz_circuit(3)
    target = spin_qubit_target(3, "D0")
    result = repro.compile(circuit, target, "sat_p", use_cache=False,
                           trace=path)
    return path, result


class TestSummarize:
    def test_summary_covers_api_pipeline_and_solver_layers(self, traced_compile):
        path, _ = traced_compile
        summary = summarize(load_events(path))
        assert {"api", "pipeline", "solver"} <= set(summary["layers"])
        assert summary["unclosed_spans"] == 0

    def test_pass_totals_agree_with_the_compilation_report(self, traced_compile):
        """Acceptance: reader per-pass totals within 10% of stage_seconds."""
        path, result = traced_compile
        totals = pass_totals(summarize(load_events(path)))
        stage_seconds = result.report.stage_seconds()
        assert set(totals) == set(stage_seconds)
        for stage, reported in stage_seconds.items():
            traced = totals[stage]
            tolerance = 0.10 * max(reported, traced) + 2e-3
            assert abs(traced - reported) <= tolerance, (
                f"{stage}: trace {traced:.6f}s vs report {reported:.6f}s"
            )

    def test_solver_rollup_accumulates_sampled_deltas(self, traced_compile):
        path, _ = traced_compile
        solver = summarize(load_events(path))["solver"]
        rounds = solver.get("omt.round", {})
        assert rounds.get("count", 0) >= 1
        assert rounds.get("d_rounds", 0) >= rounds["count"]

    def test_techniques_block_groups_passes_by_technique(self, traced_compile):
        path, _ = traced_compile
        techniques = summarize(load_events(path))["techniques"]
        assert "sat_p" in techniques
        assert "solve" in techniques["sat_p"]


class TestCli:
    def test_text_summary_mentions_every_layer(self, traced_compile, capsys):
        path, _ = traced_compile
        assert trace_main([path]) == 0
        out = capsys.readouterr().out
        for token in ("api", "pipeline", "solver", "pass", "slowest"):
            assert token in out

    def test_json_output_round_trips(self, traced_compile, capsys):
        path, _ = traced_compile
        assert trace_main([path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] > 0

    def test_validate_flag_passes_on_a_real_trace(self, traced_compile, capsys):
        path, _ = traced_compile
        assert trace_main([path, "--validate"]) == 0
        assert "per-stage latency" in capsys.readouterr().out

    def test_validate_flag_fails_on_a_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps(_event(kind="begin", span=1, parent=99))
                       + "\n")
        assert trace_main([str(bad), "--validate"]) == 1

    def test_diff_mode_reports_per_stage_deltas(self, traced_compile, capsys):
        path, _ = traced_compile
        assert trace_main(["--diff", path, path]) == 0
        out = capsys.readouterr().out
        assert "pipeline:pass:solve" in out

    def test_diff_summaries_of_identical_traces_is_zero(self, traced_compile):
        path, _ = traced_compile
        summary = summarize(load_events(path))
        diff = diff_summaries(summary, summary)
        assert diff["stages"]
        for row in diff["stages"]:
            if "delta_ms" in row:
                assert row["delta_ms"] == pytest.approx(0.0)

    def test_torn_final_line_is_tolerated(self, traced_compile):
        path, _ = traced_compile
        events = load_events(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "point", "ts"')  # interrupted writer
        assert len(load_events(path)) == len(events)
