"""Tracing through the async service and the HTTP gateway, plus job timing."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.server import ReproClient, build_server
from repro.service.scheduler import CompilationService
from repro.hardware import spin_qubit_target
from repro.trace import (
    current_tracer,
    global_tracer,
    load_events,
    stop_tracing,
    summarize,
    validate_trace,
)
from repro.workloads import ghz_circuit

QASM_BELL_CHAIN = (
    'OPENQASM 2.0; include "qelib1.inc"; '
    "qreg q[3]; h q[0]; cx q[0],q[1]; cx q[1],q[2];"
)


@pytest.fixture(autouse=True)
def _no_global_tracer():
    stop_tracing()
    yield
    stop_tracing()


def _distinct_circuit(index):
    circuit = ghz_circuit(3)
    circuit.name = f"ghz3_v{index}"
    # A trailing 1q gate on a different qubit keeps dedup keys distinct.
    circuit.x(index % 3)
    return circuit


class TestServiceTracing:
    def test_two_simultaneous_jobs_trace_cleanly_and_parent_correctly(
        self, tmp_path
    ):
        """Acceptance: concurrent traced jobs yield non-interleaved,
        correctly-parented spans."""
        path = str(tmp_path / "service.jsonl")
        service = CompilationService(workers=2, trace=path)
        target = spin_qubit_target(3, "D0")
        try:
            tracer = current_tracer()
            submit_spans = {}
            handles = []
            for index in range(2):
                # sat_p keeps each job busy long enough that the pair
                # genuinely overlaps on the two workers.
                with tracer.span("submit", "api", index=index) as span_id:
                    handle = service.submit(
                        _distinct_circuit(index), target, "sat_p",
                        use_cache=False)
                submit_spans[handle.job_id] = span_id
                handles.append(handle)
            for handle in handles:
                handle.result(timeout=300)
        finally:
            service.shutdown()

        events = load_events(path)
        validate_trace(events)  # per-thread LIFO nesting, monotonic ts
        job_begins = [e for e in events
                      if e["kind"] == "begin" and e["name"] == "job"]
        assert len(job_begins) == 2
        # Each worker-side job span parents under its own submitter span.
        for begin in job_begins:
            job_id = begin["fields"]["job_id"]
            assert begin["parent"] == submit_spans[job_id]
        # The two jobs ran on distinct worker threads with distinct spans.
        assert len({b["span"] for b in job_begins}) == 2
        assert len({b["tid"] for b in job_begins}) == 2

    def test_dedup_emits_a_dedup_event_instead_of_a_second_job(self, tmp_path):
        path = str(tmp_path / "dedup.jsonl")
        service = CompilationService(workers=1, trace=path)
        target = spin_qubit_target(3, "D0")
        circuit = ghz_circuit(3)
        try:
            # The blocker occupies the only worker, so the identical pair
            # below is still queued when the duplicate arrives.
            blocker = service.submit(_distinct_circuit(0), target, "direct",
                                     use_cache=False)
            first = service.submit(circuit, target, "direct")
            second = service.submit(circuit, target, "direct")
            assert first.job_id == second.job_id
            blocker.result(timeout=300)
            first.result(timeout=300)
            second.result(timeout=300)
        finally:
            service.shutdown()
        events = load_events(path)
        names = [e["name"] for e in events]
        assert names.count("job.submit") == 2  # blocker + the shared pair
        assert names.count("job.dedup") == 1
        dedup = next(e for e in events if e["name"] == "job.dedup")
        assert dedup["fields"]["job_id"] == first.job_id
        assert dedup["fields"]["waiters"] == 2

    def test_job_timing_lifecycle_fields(self):
        service = CompilationService(workers=1)
        target = spin_qubit_target(3, "D0")
        try:
            handle = service.submit(ghz_circuit(3), target, "direct",
                                    use_cache=False)
            partial = handle.timing()
            assert "submitted_at" in partial
            handle.result(timeout=300)
        finally:
            service.shutdown()
        timing = handle.timing()
        assert set(timing) == {
            "submitted_at", "started_at", "queue_wait_seconds",
            "finished_at", "run_seconds", "total_seconds",
        }
        assert timing["submitted_at"] <= timing["started_at"] <= timing["finished_at"]
        assert timing["queue_wait_seconds"] >= 0.0
        assert timing["run_seconds"] >= 0.0
        assert timing["total_seconds"] >= timing["run_seconds"]


class TestServerTracing:
    @pytest.fixture()
    def traced_server(self, tmp_path):
        path = str(tmp_path / "server.jsonl")
        server = build_server(workers=2, trace=path).start_background()
        yield server, path
        server.stop(drain=False)

    def test_http_compile_traces_all_four_layers(self, traced_server):
        """Acceptance: one HTTP compile spans server -> service -> pipeline
        -> solver in a single trace file."""
        server, path = traced_server
        client = ReproClient(server.url, timeout=120.0)
        result = client.compile_suite("toffoli_n3", technique="sat_p",
                                      timeout=300)
        assert result.cost.gate_count > 0
        global_tracer().flush()

        events = load_events(path)
        validate_trace(events)
        summary = summarize(events)
        assert {"server", "service", "api", "pipeline", "solver"} <= set(
            summary["layers"])
        assert any(key.startswith("pipeline:pass:") for key in summary["stages"])
        assert summary["solver"]  # OMT/SMT point events made it through

    def test_job_status_payload_carries_timing(self, traced_server):
        server, _ = traced_server
        client = ReproClient(server.url, timeout=120.0)
        job = client.submit(QASM_BELL_CHAIN, technique="direct")
        job.result(timeout=300)
        status = client.job_status(job.job_id)
        timing = status["timing"]
        assert timing["queue_wait_seconds"] >= 0.0
        assert timing["run_seconds"] >= 0.0
        assert timing["finished_at"] >= timing["submitted_at"]

    def test_metrics_exposes_per_pass_latency_histograms(self, traced_server):
        server, _ = traced_server
        client = ReproClient(server.url, timeout=120.0)
        circuit = QuantumCircuit(2, name="metrics2")
        circuit.h(0)
        circuit.cx(0, 1)
        client.compile(circuit, technique="direct", timeout=300)
        passes = client.metrics()["passes"]
        for stage in ("route", "solve", "analyze_cost"):
            block = passes[stage]
            assert block["count"] >= 1
            assert block["p50_ms"] <= block["p95_ms"] or block["count"] == 1
            # Non-cumulative buckets: every observation lands in exactly one.
            assert sum(block["histogram_ms"].values()) == block["count"]


class TestTracePropagation:
    """Client spans travel over ``X-Repro-Trace`` and stitch into the
    server's trace via ``fields.remote_parent``."""

    def test_client_requests_root_the_request_trees(self, tmp_path):
        from repro.trace import build_spans, resolve_parent, trace_forest

        path = str(tmp_path / "stitched.jsonl")
        server = build_server(workers=2, trace=path).start_background()
        try:
            client = ReproClient(server.url, timeout=120.0)
            # use_cache=False: a cache hit would skip the pipeline layer
            # this test walks the stitched tree for.
            client.compile_suite("teleport_n3", technique="direct",
                                 use_cache=False, timeout=300)
        finally:
            server.stop(drain=True)

        events = load_events(path)
        validate_trace(events)  # remote stitching never bends local invariants
        spans = build_spans(events)
        roots, children = trace_forest(spans)
        index = {(span.pid, span.span_id): span for span in spans}

        # Every server-side request span hangs off the client span that
        # sent it; only client.request spans root the forest.
        requests = [span for span in spans if span.name == "http.request"]
        assert requests
        for span in requests:
            parent = resolve_parent(span, index)
            assert parent is not None and parent.name == "client.request"
        assert {root.layer for root in roots} == {"client"}
        # The compile request's tree reaches all the way into the workers.
        compile_root = next(
            root for root in roots
            if str(root.fields.get("path", "")).endswith("/compile"))
        layers = set()
        stack = [compile_root]
        while stack:
            span = stack.pop()
            layers.add(span.layer)
            stack.extend(children.get((span.pid, span.span_id), ()))
        assert {"client", "server", "service", "pipeline"} <= layers

    def test_two_processes_stitch_into_one_validated_forest(self, tmp_path):
        """Acceptance: a traced client compile against a *separate* server
        process yields one stitched trace tree per request, and the pair
        of files passes ``python -m repro.trace --validate``."""
        import subprocess
        import sys
        import time as time_module

        from repro.trace import build_spans, resolve_parent, start_tracing
        from repro.trace.__main__ import main as trace_main

        server_path = tmp_path / "server.jsonl"
        client_path = tmp_path / "client.jsonl"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--port", "0",
             "--workers", "1", "--trace", str(server_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on " in banner, banner
            url = banner.split("listening on ", 1)[1].split()[0]

            start_tracing(str(client_path))
            client = ReproClient(url, timeout=120.0)
            client.compile_suite("teleport_n3", technique="direct",
                                 timeout=300)
            stop_tracing()
        finally:
            process.terminate()
            process.wait(timeout=60)

        deadline = time_module.time() + 10
        while not server_path.exists() and time_module.time() < deadline:
            time_module.sleep(0.05)

        assert trace_main(["--validate", str(client_path),
                           str(server_path)]) == 0

        events = load_events([client_path, server_path])
        spans = build_spans(events)
        index = {(span.pid, span.span_id): span for span in spans}
        assert len({span.pid for span in spans}) == 2
        requests = [span for span in spans if span.name == "http.request"]
        assert requests
        for span in requests:
            parent = resolve_parent(span, index)
            assert parent is not None
            assert parent.name == "client.request"
            assert parent.pid != span.pid  # genuinely cross-process
