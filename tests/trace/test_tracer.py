"""The tracer core: lifecycle, scoping, no-op guarantees, compile(trace=)."""

import json
import os
import threading

import pytest

import repro
from repro.hardware import spin_qubit_target
from repro.trace import (
    NULL_TRACER,
    Tracer,
    capture_context,
    current_tracer,
    load_events,
    resume_context,
    scoped_tracer,
    start_tracing,
    stop_tracing,
    tracing_active,
    validate_trace,
)
from repro.workloads import ghz_circuit


@pytest.fixture(autouse=True)
def _no_global_tracer():
    """Every test starts and ends without an installed global tracer."""
    stop_tracing()
    yield
    stop_tracing()


class TestDisabled:
    def test_tracing_is_off_by_default(self):
        assert not tracing_active()
        assert current_tracer() is NULL_TRACER

    def test_null_tracer_operations_are_noops(self):
        tracer = current_tracer()
        tracer.event("x", "api")
        token = tracer.begin("x", "api")
        tracer.end(token)
        with tracer.span("x", "api"):
            pass
        tracer.flush()
        tracer.close()
        assert tracer.capture() is None
        assert capture_context() is None

    def test_resume_none_context_is_noop(self):
        with resume_context(None):
            assert current_tracer() is NULL_TRACER


class TestLifecycle:
    def test_start_stop_install_and_remove_the_global_tracer(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = start_tracing(path)
        assert tracing_active()
        assert current_tracer() is tracer
        tracer.event("hello", "api", answer=42)
        stop_tracing()
        assert not tracing_active()
        events = load_events(path)
        assert events[0]["kind"] == "meta"
        assert events[-1]["name"] == "hello"
        assert events[-1]["fields"]["answer"] == 42

    def test_start_twice_same_path_returns_same_tracer(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        first = start_tracing(path)
        assert start_tracing(path) is first

    def test_start_without_path_or_env_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with pytest.raises(ValueError):
            start_tracing()

    def test_env_variable_names_the_default_path(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_TRACE", path)
        tracer = start_tracing()
        assert tracer.path == path

    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(str(tmp_path / "t.jsonl"))
        tracer.close()
        tracer.close()
        assert tracer.closed

    def test_events_survive_unflushed_buffer_on_close(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path, buffer_events=10000)
        tracer.event("buffered", "api")
        tracer.close()
        assert any(e["name"] == "buffered" for e in load_events(path))


class TestSpans:
    def test_span_nesting_and_parents(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            with tracer.activate():
                with tracer.span("outer", "api") as outer_id:
                    with tracer.span("inner", "pipeline"):
                        tracer.event("point", "solver")
        events = load_events(path)
        validate_trace(events)
        begins = {e["name"]: e for e in events if e["kind"] == "begin"}
        assert begins["outer"]["parent"] is None
        assert begins["inner"]["parent"] == outer_id
        point = next(e for e in events if e["kind"] == "point")
        assert point["span"] == begins["inner"]["span"]

    def test_end_carries_duration_and_extra_fields(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            with tracer.activate():
                token = tracer.begin("work", "api")
                tracer.end(token, items=3)
        end = next(e for e in load_events(path) if e["kind"] == "end")
        assert end["dur"] >= 0
        assert end["fields"]["items"] == 3

    def test_capture_resume_parents_across_threads(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            with tracer.activate():
                with tracer.span("request", "server") as request_id:
                    context = capture_context()

                    def worker():
                        with resume_context(context):
                            with current_tracer().span("job", "service"):
                                pass

                    thread = threading.Thread(target=worker)
                    thread.start()
                    thread.join()
        events = load_events(path)
        validate_trace(events)
        job_begin = next(e for e in events
                         if e["kind"] == "begin" and e["name"] == "job")
        assert job_begin["parent"] == request_id

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path) as tracer:
            with tracer.activate():
                tracer.event("x", "api", weird=object())
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)


class TestScopedTracer:
    def test_false_forces_tracing_off(self, tmp_path):
        start_tracing(str(tmp_path / "t.jsonl"))
        with scoped_tracer(False) as tracer:
            assert tracer.enabled is False
            assert current_tracer() is NULL_TRACER
        assert current_tracer().enabled

    def test_true_without_env_or_global_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        with scoped_tracer(True) as tracer:
            assert tracer.enabled is False

    def test_path_makes_a_per_call_tracer(self, tmp_path):
        path = str(tmp_path / "call.jsonl")
        with scoped_tracer(path) as tracer:
            assert tracer.enabled
            tracer.event("scoped", "api")
        assert not tracing_active()
        assert any(e["name"] == "scoped" for e in load_events(path))


class TestCompileTraceArgument:
    def _compile(self, **kwargs):
        circuit = ghz_circuit(3)
        target = spin_qubit_target(3, "D0")
        return repro.compile(circuit, target, "direct", **kwargs)

    def test_trace_path_writes_all_pipeline_passes(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        result = self._compile(use_cache=False, trace=path)
        events = load_events(path)
        validate_trace(events)
        pass_names = {e["name"] for e in events
                      if e["kind"] == "begin" and e["layer"] == "pipeline"}
        for stage in result.report.stage_seconds():
            assert f"pass:{stage}" in pass_names

    def test_trace_never_affects_the_cache_key(self, tmp_path):
        repro.clear_compilation_cache()
        before = repro.compilation_cache_info().hits
        self._compile(use_cache=True)
        traced = self._compile(use_cache=True, trace=str(tmp_path / "c.jsonl"))
        # The traced call hits the entry the untraced call populated:
        # trace= is not part of the fingerprint.
        assert repro.compilation_cache_info().hits == before + 1
        assert traced.report.cache_hit

    def test_trace_false_suppresses_ambient_tracing(self, tmp_path):
        path = str(tmp_path / "ambient.jsonl")
        start_tracing(path)
        self._compile(use_cache=False, trace=False)
        stop_tracing()
        assert not any(e["layer"] == "pipeline" for e in load_events(path))

    def test_tracer_instance_is_used_and_left_open(self, tmp_path):
        tracer = Tracer(str(tmp_path / "inst.jsonl"))
        self._compile(use_cache=False, trace=tracer)
        assert not tracer.closed
        tracer.close()
        assert any(e["name"] == "compile" for e in load_events(tracer.path))

    def test_result_identical_with_and_without_tracing(self, tmp_path):
        untraced = self._compile(use_cache=False)
        traced = self._compile(use_cache=False, trace=str(tmp_path / "c.jsonl"))
        assert traced.cost.to_dict() == untraced.cost.to_dict()
        assert [str(i) for i in traced.adapted_circuit.instructions] == \
               [str(i) for i in untraced.adapted_circuit.instructions]


class TestMultiProcessSafety:
    def test_two_tracers_appending_to_one_file_stay_line_atomic(self, tmp_path):
        path = str(tmp_path / "shared.jsonl")
        a, b = Tracer(path, buffer_events=1), Tracer(path, buffer_events=1)
        for index in range(200):
            a.event(f"a{index}", "api")
            b.event(f"b{index}", "api")
        a.close()
        b.close()
        events = load_events(path)
        names = {e["name"] for e in events}
        assert {f"a{i}" for i in range(200)} <= names
        assert {f"b{i}" for i in range(200)} <= names
