"""Cross-module integration tests: full pipeline on structured workloads."""

import math

import pytest

import repro
from repro.circuits import allclose_up_to_global_phase, circuit_unitary
from repro.hardware import spin_qubit_target
from repro.simulator import DensityMatrixSimulator, hellinger_fidelity, circuit_probabilities
from repro.workloads import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    qft_circuit,
    quantum_volume_circuit,
)


class TestStructuredWorkloads:
    @pytest.mark.parametrize("durations", ["D0", "D1"])
    def test_ghz_adaptation_all_objectives(self, durations):
        circuit = ghz_circuit(3)
        target = spin_qubit_target(3, durations)
        for technique in ("sat_f", "sat_r", "sat_p"):
            result = repro.compile(circuit, target, technique, verify=True)
            assert result.cost.gate_fidelity_product > 0.9
            for instruction in result.adapted_circuit:
                if len(instruction.qubits) == 2:
                    assert target.supports(instruction.name)

    def test_qft_adaptation_preserves_unitary(self):
        # The QFT contains long-range gates; route it to the chain first so
        # the comparison is against the routed (topology-compliant) circuit.
        from repro.transpiler import route_circuit

        target = spin_qubit_target(3)
        routed = route_circuit(qft_circuit(3), target)
        result = repro.compile(routed, target, "sat_p")
        assert allclose_up_to_global_phase(
            circuit_unitary(result.adapted_circuit), circuit_unitary(routed), atol=1e-6
        )

    def test_bernstein_vazirani_still_finds_secret_after_adaptation(self):
        secret = "11"
        circuit = bernstein_vazirani_circuit(secret)
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, "sat_f")
        probabilities = circuit_probabilities(result.adapted_circuit)
        data_bits = {key[1:]: p for key, p in probabilities.items()}
        mass_on_secret = sum(
            p for key, p in probabilities.items() if key[1:] == secret[::-1] or key[1:] == secret
        )
        assert mass_on_secret == pytest.approx(1.0, abs=1e-6)

    def test_quantum_volume_adaptation_runs_end_to_end(self):
        circuit = quantum_volume_circuit(3, seed=2)
        target = spin_qubit_target(3)
        sat = repro.compile(circuit, target, "sat_p")
        direct = repro.compile(circuit, target, "direct")
        assert sat.cost.gate_fidelity_product >= 0
        assert allclose_up_to_global_phase(
            circuit_unitary(sat.adapted_circuit), circuit_unitary(direct.adapted_circuit), atol=1e-5
        )

    def test_noisy_simulation_of_adapted_ghz(self):
        circuit = ghz_circuit(3)
        target = spin_qubit_target(3)
        simulator = DensityMatrixSimulator(target)
        direct = repro.compile(circuit, target, "direct")
        sat = repro.compile(circuit, target, "sat_p")
        direct_result = simulator.run(direct.adapted_circuit, ideal_circuit=circuit)
        sat_result = simulator.run(sat.adapted_circuit, ideal_circuit=circuit)
        # Both adaptations stay close to the ideal GHZ distribution, and the
        # SMT adaptation is not worse than the baseline.
        assert direct_result.hellinger_fidelity > 0.8
        assert sat_result.hellinger_fidelity >= direct_result.hellinger_fidelity - 0.02

    def test_d1_timings_change_schedule_but_not_semantics(self):
        circuit = ghz_circuit(4)
        d0 = repro.compile(circuit, spin_qubit_target(4, "D0"), "sat_r")
        d1 = repro.compile(circuit, spin_qubit_target(4, "D1"), "sat_r")
        assert allclose_up_to_global_phase(
            circuit_unitary(d0.adapted_circuit), circuit_unitary(d1.adapted_circuit), atol=1e-5
        ) or d0.adapted_circuit.count_ops() != d1.adapted_circuit.count_ops()
        assert d1.cost.duration <= d0.cost.duration + 1e-6


class TestTechniqueOrdering:
    """The qualitative ordering of techniques reported by the evaluation."""

    def test_kak_diabatic_worst_fidelity_on_cnot_chain(self):
        circuit = ghz_circuit(4)
        target = spin_qubit_target(4)
        results = {
            name: repro.compile(circuit, target, name)
            for name in ("direct", "kak_dcz", "sat_f")
        }
        fidelities = {name: r.cost.gate_fidelity_product for name, r in results.items()}
        assert fidelities["sat_f"] >= fidelities["direct"] >= fidelities["kak_dcz"]

    def test_template_between_direct_and_sat_on_swap_heavy_circuit(self):
        from repro.circuits import QuantumCircuit

        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).swap(0, 1).swap(1, 2).cx(1, 2).swap(0, 1)
        target = spin_qubit_target(3)
        direct = repro.compile(circuit, target, "direct")
        template = repro.compile(circuit, target, "template_f")
        sat = repro.compile(circuit, target, "sat_f")
        assert (
            sat.cost.gate_fidelity_product
            >= template.cost.gate_fidelity_product
            >= direct.cost.gate_fidelity_product
        )
