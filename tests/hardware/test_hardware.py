"""Tests for targets (Table I) and the spin-qubit physics model (Fig. 1)."""

import math

import numpy as np
import pytest

from repro.hardware import (
    GateProperties,
    Target,
    TABLE1_DURATION_D0,
    TABLE1_DURATION_D1,
    TABLE1_FIDELITY,
    crot_regime_pair,
    eigenenergies_vs_detuning,
    exchange_coupling,
    ibm_like_source_target,
    linear_coupling_map,
    spin_qubit_target,
    swap_regime_pair,
)


class TestGateProperties:
    def test_error_and_log_fidelity(self):
        props = GateProperties(duration=152.0, fidelity=0.999)
        assert props.error == pytest.approx(0.001)
        assert props.log_fidelity == pytest.approx(math.log(0.999))

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GateProperties(-1.0, 0.99)
        with pytest.raises(ValueError):
            GateProperties(10.0, 0.0)
        with pytest.raises(ValueError):
            GateProperties(10.0, 1.5)


class TestSpinTarget:
    def test_table1_values_match_paper(self):
        assert TABLE1_FIDELITY == {
            "su2": 0.999, "cz": 0.999, "cz_d": 0.99,
            "crot": 0.994, "swap_d": 0.99, "swap_c": 0.999,
        }
        assert TABLE1_DURATION_D0["cz"] == 152.0
        assert TABLE1_DURATION_D0["crot"] == 660.0
        assert TABLE1_DURATION_D1["cz_d"] == 7.0
        assert TABLE1_DURATION_D1["swap_c"] == 13.0

    @pytest.mark.parametrize("durations", ["D0", "D1"])
    def test_spin_target_gate_set(self, durations):
        target = spin_qubit_target(4, durations)
        assert set(target.basis_two_qubit_gates()) == {"cz", "cz_d", "crot", "swap_d", "swap_c"}
        assert target.gate_properties("cz").fidelity == 0.999
        assert target.gate_properties("u3").duration == 30.0
        assert target.t2 == pytest.approx(2900.0)
        assert target.t1 == pytest.approx(2.9e6)

    def test_diabatic_cz_exclusion(self):
        target = spin_qubit_target(3, include_diabatic_cz=False)
        assert not target.supports("cz_d")
        assert target.supports("cz")

    def test_unknown_duration_column_rejected(self):
        with pytest.raises(ValueError):
            spin_qubit_target(4, "D2")

    def test_chain_connectivity(self):
        target = spin_qubit_target(4)
        assert target.are_connected(0, 1)
        assert target.are_connected(2, 1)
        assert not target.are_connected(0, 2)
        assert linear_coupling_map(4) == [(0, 1), (1, 2), (2, 3)]

    def test_unknown_two_qubit_gate_rejected(self):
        target = spin_qubit_target(4)
        with pytest.raises(KeyError):
            target.gate_properties("cx", 2)

    def test_idle_survival_probability(self):
        target = spin_qubit_target(4)
        assert target.idle_survival_probability(0.0) == 1.0
        assert target.idle_survival_probability(2900.0) == pytest.approx(math.exp(-1))

    def test_resizing(self):
        target = spin_qubit_target(4).with_num_qubits(6)
        assert target.num_qubits == 6
        assert target.are_connected(4, 5)

    def test_ibm_like_source(self):
        source = ibm_like_source_target(3)
        assert source.supports("cx")
        assert source.supports("swap")
        assert not source.supports("crot")


class TestSpinPhysics:
    def test_exchange_coupling_increases_with_detuning(self):
        j_low = exchange_coupling(0.0, 1.0, 100.0)
        j_high = exchange_coupling(80.0, 1.0, 100.0)
        assert j_high > j_low > 0

    def test_exchange_requires_detuning_below_charging_energy(self):
        with pytest.raises(ValueError):
            exchange_coupling(120.0, 1.0, 100.0)

    def test_hamiltonian_is_hermitian(self):
        pair = swap_regime_pair()
        hamiltonian = pair.hamiltonian(50.0)
        assert np.allclose(hamiltonian, hamiltonian.conj().T)

    def test_fig1a_regime_singlet_triplet_splitting_grows(self):
        """In the J >> dEz regime the antiparallel splitting grows with detuning."""
        pair = swap_regime_pair()
        assert pair.exchange(80.0) > pair.zeeman_difference
        low = pair.antiparallel_splitting(0.0)
        high = pair.antiparallel_splitting(80.0)
        assert high > low

    def test_fig1b_regime_parallel_states_unshifted(self):
        """In the dEz >> J regime the parallel states stay at +-Ez while the
        antiparallel states shift with detuning."""
        pair = crot_regime_pair()
        assert pair.zeeman_difference > pair.exchange(0.0)
        energies_zero = pair.eigenenergies(0.0)
        energies_high = pair.eigenenergies(90.0)
        # Highest/lowest branches (parallel spins) are unaffected by J.
        assert energies_zero[0] == pytest.approx(energies_high[0], abs=1e-9)
        assert energies_zero[3] == pytest.approx(energies_high[3], abs=1e-9)
        # The middle (antiparallel) branches shift downwards with detuning.
        assert energies_high[1] < energies_zero[1]

    def test_eigenenergy_sweep_structure(self):
        pair = swap_regime_pair()
        sweep = eigenenergies_vs_detuning(pair, np.linspace(0, 80, 9))
        assert set(sweep) == {"detuning", "E0", "E1", "E2", "E3"}
        assert all(len(sweep[key]) == 9 for key in sweep)
        # Branches stay sorted.
        for i in range(9):
            assert sweep["E0"][i] <= sweep["E1"][i] <= sweep["E2"][i] <= sweep["E3"][i]

    def test_swap_faster_than_cphase_and_crot_ordering(self):
        """Protocol durations: swap (large J) is fast; CROT (Rabi-limited) is slow,
        matching the ordering of Table I."""
        swap_pair = swap_regime_pair()
        crot_pair = crot_regime_pair()
        swap_duration = swap_pair.swap_gate_duration(80.0)
        cphase_duration = crot_pair.cphase_gate_duration(60.0)
        crot_duration = crot_pair.crot_gate_duration(rabi_frequency=0.00076)
        assert swap_duration < cphase_duration < crot_duration

    def test_crot_addressability_grows_with_exchange(self):
        pair = crot_regime_pair()
        assert pair.crot_addressability(80.0) > pair.crot_addressability(0.0)

    def test_invalid_protocol_parameters(self):
        pair = crot_regime_pair()
        with pytest.raises(ValueError):
            pair.crot_gate_duration(0.0)
