"""Service resilience: deadlines, cancellation races, crash recovery,
store quarantine.

The process-pool crash tests SIGKILL real workers (via the fault plan's
``worker.compile``/``die`` action), so they exercise the actual
``BrokenProcessPool`` → respawn → retry path, not a simulation.
"""

import os
import threading
import time

import pytest

import repro
from repro.api import clear_compilation_cache
from repro.api.cache import install_persistent_store, uninstall_persistent_store
from repro.api.fingerprints import cache_key
from repro.api.registry import resolve_technique
from repro.hardware import spin_qubit_target
from repro.resilience import CompileCancelled, CompileDeadlineExceeded
from repro.resilience.faults import clear_fault_plan, install_fault_plan
from repro.service import (
    CompilationService,
    JobStatus,
    PersistentResultStore,
    WorkerCrashedError,
)
from repro.service.store import QUARANTINE_DIR
from repro.workloads import ghz_circuit, qft_circuit


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_compilation_cache()
    clear_fault_plan()
    yield
    clear_fault_plan()
    clear_compilation_cache()


def probe_circuit(variant=0):
    circuit = repro.QuantumCircuit(2, name=f"res_probe_{variant}")
    circuit.cx(0, 1)
    circuit.swap(0, 1)
    for _ in range(variant):
        circuit.rz(0.25, 0)
    return circuit


class TestDeadlines:
    def test_submit_timeout_fails_the_job_with_a_typed_error(self):
        with CompilationService(workers=1) as service:
            handle = service.submit(probe_circuit(), spin_qubit_target(2),
                                    "sat_p", use_cache=False, timeout=0.0)
            with pytest.raises(CompileDeadlineExceeded):
                handle.result(timeout=60)
            assert handle.status() is JobStatus.FAILED
            assert service.statistics()["failed"] == 1

    def test_submit_timeout_with_degrade_returns_the_fallback(self):
        with CompilationService(workers=1) as service:
            handle = service.submit(probe_circuit(), spin_qubit_target(2),
                                    "sat_p", use_cache=False, timeout=0.0,
                                    on_deadline="degrade", fallback="direct")
            result = handle.result(timeout=60)
            assert result.technique == "direct"
            assert result.report.degraded_from == "sat_p"
            assert service.statistics()["degraded"] == 1

    def test_queue_wait_does_not_consume_the_deadline(self):
        """The budget arms at run start: a job with a tight-but-feasible
        deadline still succeeds after sitting behind a slow job."""
        gate = threading.Event()

        def gated_compile(circuit, target, technique, *, use_cache=True,
                          **options):
            if circuit.name == "blocker":
                assert gate.wait(timeout=30)
            return repro.compile(circuit, target, technique,
                                 use_cache=use_cache, **options)

        blocker = repro.QuantumCircuit(2, name="blocker")
        blocker.cx(0, 1)
        with CompilationService(workers=1, compile_fn=gated_compile) as service:
            service.submit(blocker, spin_qubit_target(2), "direct",
                           use_cache=False)
            handle = service.submit(probe_circuit(), spin_qubit_target(2),
                                    "direct", use_cache=False, timeout=20.0)
            time.sleep(0.5)  # the deadline would be half spent if armed now
            gate.set()
            result = handle.result(timeout=60)
            assert result.technique == "direct"


class TestCancellation:
    def test_cancel_interrupts_a_running_job(self):
        """cancel() on a RUNNING solve unwinds it at the next checkpoint."""
        with CompilationService(workers=1) as service:
            handle = service.submit(qft_circuit(4), spin_qubit_target(4),
                                    "sat_p", use_cache=False)
            deadline = time.monotonic() + 10.0
            while (handle.status() is not JobStatus.RUNNING
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert handle.status() is JobStatus.RUNNING
            assert handle.cancel()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if service.status(handle.job_id) is JobStatus.CANCELLED:
                    break
                time.sleep(0.01)
            assert service.status(handle.job_id) is JobStatus.CANCELLED
            assert service.statistics()["cancelled"] >= 1

    def test_cancel_storm_leaves_no_wedged_worker(self):
        """Cancelling a pile of queued jobs behind a blocked worker: every
        handle resolves, the blocker still completes, the queue drains."""
        gate = threading.Event()

        def gated_compile(circuit, target, technique, *, use_cache=True,
                          **options):
            if circuit.name == "blocker":
                assert gate.wait(timeout=30)
            return repro.compile(circuit, target, technique,
                                 use_cache=use_cache, **options)

        blocker = repro.QuantumCircuit(2, name="blocker")
        blocker.cx(0, 1)
        with CompilationService(workers=1, compile_fn=gated_compile) as service:
            head = service.submit(blocker, spin_qubit_target(2), "direct",
                                  use_cache=False)
            victims = [
                service.submit(probe_circuit(v), spin_qubit_target(2),
                               "direct", use_cache=False)
                for v in range(1, 9)
            ]
            for handle in victims:
                assert handle.cancel()
            gate.set()
            assert head.result(timeout=60).technique == "direct"
            for handle in victims:
                assert handle.status() is JobStatus.CANCELLED
            assert service.drain(timeout=30)
            stats = service.statistics()
            assert stats["cancelled"] == len(victims)
            assert stats["queue_depth"] == 0 and stats["busy_workers"] == 0

    def test_dedup_cancel_only_cancels_the_shared_job_when_all_agree(self):
        gate = threading.Event()

        def gated_compile(circuit, target, technique, *, use_cache=True,
                          **options):
            assert gate.wait(timeout=30)
            return repro.compile(circuit, target, technique,
                                 use_cache=use_cache, **options)

        with CompilationService(workers=1, compile_fn=gated_compile) as service:
            first = service.submit(probe_circuit(), spin_qubit_target(2),
                                   "direct")
            second = service.submit(probe_circuit(), spin_qubit_target(2),
                                    "direct")
            assert first.job_id == second.job_id
            assert first.cancel()
            gate.set()
            # The surviving waiter still gets its result.
            assert second.result(timeout=60).technique == "direct"
            assert first.status() is JobStatus.CANCELLED


class TestWorkerCrashRecovery:
    def test_killed_worker_job_retries_to_completion(self):
        install_fault_plan([{"site": "worker.compile", "action": "die",
                             "nth": 1}])
        service = CompilationService(workers=1, mode="process",
                                     worker_retries=2, retry_backoff=0.1)
        try:
            handle = service.submit(ghz_circuit(3), spin_qubit_target(3),
                                    "direct", use_cache=False)
            result = handle.result(timeout=120)
            assert result.technique == "direct"
            assert service.statistics()["worker_crashes"] >= 1
            assert handle.status() is JobStatus.DONE
        finally:
            service.shutdown()

    def test_repeated_crashes_exhaust_the_retry_budget(self):
        install_fault_plan([{"site": "worker.compile", "action": "die",
                             "after": 0}])
        service = CompilationService(workers=1, mode="process",
                                     worker_retries=1, retry_backoff=0.1)
        try:
            handle = service.submit(ghz_circuit(3), spin_qubit_target(3),
                                    "direct", use_cache=False)
            with pytest.raises(WorkerCrashedError):
                handle.result(timeout=120)
            assert handle.status() is JobStatus.FAILED
        finally:
            service.shutdown()

    def test_drain_survives_a_worker_killed_mid_drain(self):
        """drain() keeps waiting through the crash-respawn-retry cycle and
        still reports idle once the retried job lands."""
        install_fault_plan([{"site": "worker.compile", "action": "die",
                             "nth": 1}])
        service = CompilationService(workers=1, mode="process",
                                     worker_retries=2, retry_backoff=0.1)
        try:
            handle = service.submit(ghz_circuit(3), spin_qubit_target(3),
                                    "direct", use_cache=False)
            assert service.drain(timeout=120)
            assert handle.result(timeout=1).technique == "direct"
            assert service.statistics()["worker_crashes"] >= 1
        finally:
            service.shutdown()

    def test_pool_deadline_flows_into_the_subprocess(self):
        service = CompilationService(workers=1, mode="process")
        try:
            handle = service.submit(probe_circuit(), spin_qubit_target(2),
                                    "sat_p", use_cache=False, timeout=0.0,
                                    on_deadline="degrade", fallback="direct")
            result = handle.result(timeout=120)
            assert result.technique == "direct"
            assert result.report.degraded_from == "sat_p"
        finally:
            service.shutdown()


class TestStoreQuarantine:
    @staticmethod
    def _entry_path(store, circuit, target, technique="direct"):
        from repro.api.compile import _effective_options
        from repro.service.store import _entry_digest

        spec = resolve_technique(technique)
        options = _effective_options(spec, {})
        key = cache_key(circuit, target, spec.key, options)
        return store._path_of(_entry_digest(key))

    def test_truncated_entry_is_quarantined_and_recompiled(self, tmp_path):
        circuit, target = ghz_circuit(3), spin_qubit_target(3, "D0")
        store = PersistentResultStore(str(tmp_path))
        install_persistent_store(store)
        try:
            baseline = repro.compile(circuit, target, "direct")
            path = self._entry_path(store, circuit, target)
            assert os.path.exists(path)
            with open(path, "w") as handle:
                handle.write("{this is not json")
            clear_compilation_cache()  # force the next read down to L2
            result = repro.compile(circuit, target, "direct")
            assert (result.cost.gate_fidelity_product
                    == baseline.cost.gate_fidelity_product)
            stats = store.statistics()
            assert stats["corrupted"] == 1
            quarantine = os.path.join(str(tmp_path), QUARANTINE_DIR)
            assert len(os.listdir(quarantine)) == 1
            # The recompile re-persisted a clean entry at the same path.
            import json
            with open(path) as handle:
                json.load(handle)
        finally:
            uninstall_persistent_store()

    def test_quarantined_entries_leave_the_footprint_accounting(self, tmp_path):
        circuit, target = ghz_circuit(3), spin_qubit_target(3, "D0")
        store = PersistentResultStore(str(tmp_path))
        install_persistent_store(store)
        try:
            repro.compile(circuit, target, "direct")
            entries_before = store.info().entries
            assert entries_before == 1
            install_fault_plan([{"site": "store.read", "action": "corrupt",
                                 "nth": 1}])
            clear_compilation_cache()
            repro.compile(circuit, target, "direct")  # corrupt read, recompile
            info = store.info()
            assert info.corrupted == 1
            # The recompile re-persisted a clean entry; the quarantined
            # one is not scanned or counted.
            assert info.entries == 1
            assert info.total_bytes > 0
        finally:
            uninstall_persistent_store()
