"""Regression: ``service.statistics()`` must be ``json.dumps``-able.

The HTTP gateway's ``/metrics`` endpoint serializes the statistics
verbatim, so any non-JSON value (numpy scalar, set, custom object,
inf/nan float) leaking in is a production 500.
"""

import json

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.hardware import spin_qubit_target
from repro.service.scheduler import CompilationService, _json_safe


def _bell() -> QuantumCircuit:
    circuit = QuantumCircuit(2, name="stats_bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


class TestStatisticsAreJson:
    def test_statistics_dump_after_real_compiles_and_portfolio(self, tmp_path):
        with CompilationService(workers=2, store=str(tmp_path / "store")) as service:
            service.compile(_bell(), spin_qubit_target(2), "direct")
            service.compile_portfolio(_bell(), spin_qubit_target(2),
                                      ["direct", "kak_cz"])
            stats = service.statistics()
        encoded = json.dumps(stats)  # Must not raise.
        decoded = json.loads(encoded)
        assert decoded["completed"] >= 3
        assert "l2" in decoded
        assert isinstance(decoded["portfolio_wins"], dict)
        assert 0.0 <= decoded["l1_hit_rate"] <= 1.0

    def test_statistics_survive_numpy_contaminated_counters(self):
        service = CompilationService(
            workers=1, compile_fn=lambda *a, **k: "ok")
        try:
            # Simulate counters picked up from numpy-backed cost math.
            service._portfolio_wins["sat_p"] = np.int64(3)
            service._counters["completed"] = np.int32(7)
            stats = service.statistics()
            decoded = json.loads(json.dumps(stats))
            assert decoded["portfolio_wins"]["sat_p"] == 3
            assert decoded["completed"] == 7
        finally:
            service.shutdown(wait=True)


class TestJsonSafe:
    @pytest.mark.parametrize("value,expected", [
        (np.float64(1.5), 1.5),
        (np.int64(4), 4),
        (np.bool_(True), True),
        ({"a": (1, 2)}, {"a": [1, 2]}),
        ({1: "x"}, {"1": "x"}),
        ({"s": {3, 3}}, {"s": [3]}),
        (None, None),
        (True, True),
        ("text", "text"),
    ])
    def test_coercions(self, value, expected):
        assert _json_safe(value) == expected

    def test_non_finite_floats_degrade_to_strings(self):
        encoded = json.dumps(_json_safe(
            {"inf": float("inf"), "ninf": float("-inf"), "nan": float("nan")}
        ))
        decoded = json.loads(encoded)
        assert decoded == {"inf": "inf", "ninf": "-inf", "nan": "nan"}

    def test_unknown_objects_degrade_to_strings(self):
        class Weird:
            def __str__(self):
                return "weird!"

        assert _json_safe({"w": Weird()}) == {"w": "weird!"}

    def test_everything_nested_is_dumpable(self):
        blob = _json_safe({
            "deep": [{"x": np.float32(2.0), "y": [np.int16(1), {"z": (1,)}]}],
        })
        json.dumps(blob)
