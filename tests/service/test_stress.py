"""Concurrency stress: hammer submit/cancel/shutdown, assert no deadlock.

The compile function is a tiny stub (the races under test live in the
scheduler, not the pipeline), so hundreds of jobs run in well under a
second.  Every ``JobHandle`` must end in a terminal state — resolved,
failed or cancelled — no matter how submits, cancels and the shutdown
interleave.
"""

import random
import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.hardware import spin_qubit_target
from repro.service.scheduler import (
    CompilationService,
    JobStatus,
    ServiceSaturatedError,
)

TERMINAL = {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}


def _stub_compile(circuit, target, technique, **kwargs):
    time.sleep(0.0005)
    if "fail" in circuit.name:
        raise RuntimeError(f"synthetic failure for {circuit.name}")
    return ("ok", circuit.name, technique)


def _circuit(tag: int, fail: bool = False) -> QuantumCircuit:
    name = f"{'fail' if fail else 'stress'}_{tag}"
    circuit = QuantumCircuit(2, name=name)
    circuit.rz(0.001 * (tag + 1), 0)
    circuit.cx(0, 1)
    return circuit


def _resolve(handle):
    """Drive one handle to its terminal state; returns the status."""
    try:
        handle.result(timeout=30)
    except (CancelledError, RuntimeError, Exception):
        pass
    return handle.status()


class TestSubmitCancelRaces:
    def test_hammered_submit_and_cancel_all_reach_terminal_states(self):
        service = CompilationService(workers=4, max_pending=64,
                                     compile_fn=_stub_compile)
        handles = []
        handles_lock = threading.Lock()
        errors = []

        def hammer(worker_id):
            rng = random.Random(worker_id)
            try:
                for i in range(60):
                    tag = worker_id * 1000 + i
                    # A third of the submissions coalesce deliberately
                    # (shared tag), a tenth fail, the rest are unique.
                    if rng.random() < 0.3:
                        tag = rng.randrange(8)
                    circuit = _circuit(tag, fail=rng.random() < 0.1)
                    try:
                        handle = service.submit(
                            circuit, spin_qubit_target(2), "direct",
                            block=False)
                    except ServiceSaturatedError:
                        continue  # Backpressure is a valid outcome.
                    with handles_lock:
                        handles.append(handle)
                    if rng.random() < 0.25:
                        handle.cancel()
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "hammer thread deadlocked"
        assert not errors, errors

        for handle in handles:
            assert _resolve(handle) in TERMINAL
        service.shutdown(wait=True)
        assert all(not t.is_alive() for t in service._threads)

    def test_shutdown_races_with_submissions(self):
        """Submitters keep firing while shutdown lands mid-burst."""
        service = CompilationService(workers=2, max_pending=32,
                                     compile_fn=_stub_compile)
        handles = []
        handles_lock = threading.Lock()
        stop_submitting = threading.Event()

        def submitter(worker_id):
            i = 0
            while not stop_submitting.is_set() and i < 500:
                i += 1
                try:
                    handle = service.submit(
                        _circuit(worker_id * 10000 + i),
                        spin_qubit_target(2), "direct", block=False)
                except (ServiceSaturatedError, RuntimeError):
                    # Saturated, or the service shut down underneath us —
                    # both are clean rejections, never a hang.
                    continue
                with handles_lock:
                    handles.append(handle)

        threads = [threading.Thread(target=submitter, args=(w,))
                   for w in range(6)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        shutdown = threading.Thread(
            target=service.shutdown,
            kwargs={"wait": True, "cancel_pending": True})
        shutdown.start()
        shutdown.join(timeout=60)
        assert not shutdown.is_alive(), "shutdown deadlocked"
        stop_submitting.set()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "submitter deadlocked"

        # Every accepted handle must resolve to a terminal state even
        # though the pool died mid-flight.
        for handle in handles:
            assert _resolve(handle) in TERMINAL

    def test_cancel_storm_on_one_coalesced_job(self):
        """Many handles on one job; cancelling all of them reaps the job."""
        gate = threading.Event()

        def gated_compile(circuit, target, technique, **kwargs):
            gate.wait(timeout=30)
            return "ok"

        service = CompilationService(workers=1, compile_fn=gated_compile)
        try:
            blocker = service.submit(_circuit(0), spin_qubit_target(2),
                                     "direct")
            shared = [service.submit(_circuit(1), spin_qubit_target(2),
                                     "direct") for _ in range(16)]
            assert len({handle.job_id for handle in shared}) == 1
            cancellers = [threading.Thread(target=handle.cancel)
                          for handle in shared]
            for thread in cancellers:
                thread.start()
            for thread in cancellers:
                thread.join(timeout=30)
            gate.set()
            blocker.result(timeout=30)
            for handle in shared:
                assert _resolve(handle) in TERMINAL
            assert service.status(shared[0].job_id) == JobStatus.CANCELLED
        finally:
            gate.set()
            service.shutdown(wait=True)


class TestDrain:
    def test_drain_waits_for_queued_and_running_jobs(self):
        gate = threading.Event()

        def gated_compile(circuit, target, technique, **kwargs):
            gate.wait(timeout=30)
            return "ok"

        service = CompilationService(workers=1, compile_fn=gated_compile)
        try:
            handles = [service.submit(_circuit(i), spin_qubit_target(2),
                                      "direct") for i in range(3)]
            assert service.drain(timeout=0.1) is False  # Still busy.
            gate.set()
            assert service.drain(timeout=30) is True
            for handle in handles:
                assert handle.status() == JobStatus.DONE
            # The service still accepts work after a drain.
            assert service.submit(_circuit(99), spin_qubit_target(2),
                                  "direct").result(timeout=30) == "ok"
        finally:
            gate.set()
            service.shutdown(wait=True)

    def test_drain_on_idle_service_returns_immediately(self):
        service = CompilationService(workers=2, compile_fn=_stub_compile)
        try:
            started = time.monotonic()
            assert service.drain(timeout=5) is True
            assert time.monotonic() - started < 1.0
        finally:
            service.shutdown(wait=True)
