"""Portfolio compilation: cost policies, argmin selection, contender records."""

import pytest

import repro
from repro.api import clear_compilation_cache
from repro.hardware import spin_qubit_target
from repro.service import COST_POLICIES, CompilationService, portfolio_score


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


TECHNIQUES = ["direct", "kak_cz", "sat_p"]


def probe_circuit():
    circuit = repro.QuantumCircuit(3, name="portfolio_probe")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(1, 2)
    circuit.cx(1, 2)
    return circuit


class TestPolicies:
    @pytest.mark.parametrize("policy", sorted(COST_POLICIES))
    def test_winner_is_the_policy_argmin(self, policy):
        """Acceptance: >=3 techniques, winner is the argmin under the policy
        and every contender is recorded in the winner's report."""
        circuit = probe_circuit()
        target = spin_qubit_target(3)
        individual = {
            technique: repro.compile(circuit, target, technique)
            for technique in TECHNIQUES
        }
        expected_scores = {
            technique: portfolio_score(result, policy)
            for technique, result in individual.items()
        }
        best_score = min(expected_scores.values())
        with CompilationService(workers=3) as service:
            winner = service.compile_portfolio(
                circuit, target, TECHNIQUES, policy=policy
            )
        assert portfolio_score(winner, policy) == best_score
        contenders = winner.report.contenders
        assert {c["technique"] for c in contenders} == set(TECHNIQUES)
        flagged = [c for c in contenders if c.get("winner")]
        assert len(flagged) == 1
        assert flagged[0]["technique"] == winner.technique
        assert flagged[0]["score"] == best_score
        for contender in contenders:
            assert contender["score"] == expected_scores[contender["technique"]]

    def test_unknown_policy_rejected(self):
        with CompilationService(workers=1) as service:
            with pytest.raises(ValueError, match="cost policy"):
                service.compile_portfolio(
                    probe_circuit(), spin_qubit_target(3), TECHNIQUES,
                    policy="karma",
                )

    def test_empty_portfolio_rejected(self):
        with CompilationService(workers=1) as service:
            with pytest.raises(ValueError, match="at least one"):
                service.compile_portfolio(
                    probe_circuit(), spin_qubit_target(3), techniques=[]
                )


class TestPortfolioBehavior:
    def test_contenders_survive_serialization(self):
        circuit = probe_circuit()
        target = spin_qubit_target(3)
        with CompilationService(workers=3) as service:
            winner = service.compile_portfolio(circuit, target, TECHNIQUES)
        from repro.core import AdaptationResult

        restored = AdaptationResult.from_dict(winner.to_dict())
        assert restored.report.contenders == winner.report.contenders

    def test_win_counts_feed_statistics(self):
        circuit = probe_circuit()
        target = spin_qubit_target(3)
        with CompilationService(workers=3) as service:
            first = service.compile_portfolio(circuit, target, TECHNIQUES)
            service.compile_portfolio(circuit, target, TECHNIQUES)
            stats = service.statistics()
        assert stats["portfolio_wins"] == {first.technique: 2}

    def test_failing_technique_is_recorded_not_fatal(self):
        from repro.api import register_technique, unregister_technique

        def exploding_factory():
            raise RuntimeError("pipeline construction failed")

        register_technique("exploding", exploding_factory,
                           description="always fails (test)")
        try:
            circuit = probe_circuit()
            target = spin_qubit_target(3)
            with CompilationService(workers=2) as service:
                winner = service.compile_portfolio(
                    circuit, target, ["direct", "exploding"]
                )
            assert winner.technique == "direct"
            failed = [c for c in winner.report.contenders if "error" in c]
            assert len(failed) == 1
            assert failed[0]["technique"] == "exploding"
            assert "RuntimeError" in failed[0]["error"]
        finally:
            unregister_technique("exploding")

    def test_all_failing_raises(self):
        def boom(circuit, target, technique, *, use_cache=True, **options):
            raise RuntimeError("nope")

        with CompilationService(workers=1, compile_fn=boom) as service:
            with pytest.raises(RuntimeError, match="every portfolio technique"):
                service.compile_portfolio(
                    probe_circuit(), spin_qubit_target(3), ["direct", "kak_cz"]
                )

    def test_default_portfolio_is_used_when_unspecified(self):
        from repro.service import DEFAULT_PORTFOLIO

        circuit = probe_circuit()
        target = spin_qubit_target(3)
        with CompilationService(workers=3) as service:
            winner = service.compile_portfolio(circuit, target)
        assert {c["technique"] for c in winner.report.contenders} == set(
            DEFAULT_PORTFOLIO
        )
