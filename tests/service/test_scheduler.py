"""CompilationService: dedup, backpressure, lifecycle, statistics."""

import threading
import time

import pytest

import repro
from repro.api import clear_compilation_cache
from repro.hardware import spin_qubit_target
from repro.service import (
    CompilationService,
    JobStatus,
    ServiceSaturatedError,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


def probe_circuit(variant=0):
    """Structurally distinct per variant: the cache key ignores names."""
    circuit = repro.QuantumCircuit(2, name=f"sched_probe_{variant}")
    circuit.cx(0, 1)
    circuit.swap(0, 1)
    for _ in range(variant):
        circuit.rz(0.25, 0)
    return circuit


class CountingCompiler:
    """A compile stand-in that counts calls and can block on an event."""

    def __init__(self, gate: threading.Event = None):
        self.calls = 0
        self._lock = threading.Lock()
        self.gate = gate

    def __call__(self, circuit, target, technique, *, use_cache=True, **options):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0)
        return repro.compile(circuit, target, technique,
                             use_cache=use_cache, **options)


class TestSubmitAndResult:
    def test_submit_returns_a_live_handle(self):
        with CompilationService(workers=2) as service:
            handle = service.submit(probe_circuit(), spin_qubit_target(2), "direct")
            result = handle.result(timeout=30)
            assert result.technique == "direct"
            assert handle.done()
            assert handle.status() is JobStatus.DONE
            assert service.result(handle.job_id).cost == result.cost

    def test_compile_is_submit_plus_result(self):
        with CompilationService(workers=1) as service:
            result = service.compile(probe_circuit(), spin_qubit_target(2), "direct")
            assert result.cost.gate_fidelity_product > 0

    def test_unknown_technique_fails_at_submit_time(self):
        with CompilationService(workers=1) as service:
            with pytest.raises(repro.UnknownTechniqueError):
                service.submit(probe_circuit(), spin_qubit_target(2), "no_such")

    def test_failure_propagates_through_the_future(self):
        def boom(circuit, target, technique, *, use_cache=True, **options):
            raise RuntimeError("synthetic failure")

        with CompilationService(workers=1, compile_fn=boom) as service:
            handle = service.submit(probe_circuit(), spin_qubit_target(2), "direct")
            with pytest.raises(RuntimeError, match="synthetic failure"):
                handle.result(timeout=30)
            assert handle.status() is JobStatus.FAILED
            assert service.statistics()["failed"] == 1

    def test_unknown_job_id_raises(self):
        with CompilationService(workers=1) as service:
            with pytest.raises(KeyError):
                service.status(999)


class TestDeduplication:
    def test_identical_concurrent_submits_compile_once(self):
        """Acceptance: N identical concurrent submits, exactly one compile."""
        gate = threading.Event()
        compiler = CountingCompiler(gate)
        circuit = probe_circuit()
        target = spin_qubit_target(2)
        with CompilationService(workers=1, compile_fn=compiler) as service:
            handles = [
                service.submit(circuit, target, "direct") for _ in range(8)
            ]
            gate.set()
            results = [h.result(timeout=30) for h in handles]
        assert compiler.calls == 1
        assert len({h.job_id for h in handles}) == 1
        assert all(r.cost == results[0].cost for r in results)
        stats = service.statistics()
        assert stats["deduplicated"] == 7
        assert stats["submitted"] == 8
        assert stats["completed"] == 1

    def test_cancelling_one_coalesced_waiter_does_not_poison_the_others(self):
        """Each coalesced submit owns its own future: one caller's cancel
        must not cancel the shared result out from under the rest."""
        from concurrent.futures import CancelledError

        gate = threading.Event()
        compiler = CountingCompiler(gate)
        circuit = probe_circuit()
        target = spin_qubit_target(2)
        with CompilationService(workers=1, compile_fn=compiler) as service:
            first = service.submit(circuit, target, "direct")
            second = service.submit(circuit, target, "direct")
            third = service.submit(circuit, target, "direct")
            assert second.cancel() is True
            assert second.status() is JobStatus.CANCELLED
            gate.set()
            result = first.result(timeout=30)
            assert third.result(timeout=30).cost == result.cost
            with pytest.raises(CancelledError):
                second.result(timeout=30)
        # The shared job itself was never cancelled: it ran once.
        assert compiler.calls == 1
        assert service.statistics()["completed"] == 1

    def test_cancelling_every_coalesced_waiter_cancels_the_queued_job(self):
        gate = threading.Event()
        compiler = CountingCompiler(gate)
        target = spin_qubit_target(2)
        service = CompilationService(workers=1, compile_fn=compiler)
        try:
            blocker = service.submit(probe_circuit(1), target, "direct")
            deadline = time.monotonic() + 10
            while service.status(blocker) is JobStatus.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            waiters = [
                service.submit(probe_circuit(2), target, "direct")
                for _ in range(3)
            ]
            assert len({w.job_id for w in waiters}) == 1
            for waiter in waiters:
                assert waiter.cancel() is True
        finally:
            gate.set()
            service.shutdown()
        assert compiler.calls == 1  # Only the blocker ever compiled.
        assert service.statistics()["cancelled"] == 1  # One job, not three.

    def test_different_options_do_not_coalesce(self):
        gate = threading.Event()
        compiler = CountingCompiler(gate)
        circuit = probe_circuit()
        target = spin_qubit_target(2)
        with CompilationService(workers=2, compile_fn=compiler) as service:
            first = service.submit(circuit, target, "direct")
            second = service.submit(circuit, target, "direct",
                                    merge_single_qubit_gates=True)
            gate.set()
            first.result(timeout=30)
            second.result(timeout=30)
        assert compiler.calls == 2

    def test_uncached_submits_do_not_coalesce(self):
        gate = threading.Event()
        compiler = CountingCompiler(gate)
        circuit = probe_circuit()
        target = spin_qubit_target(2)
        with CompilationService(workers=2, compile_fn=compiler) as service:
            handles = [
                service.submit(circuit, target, "direct", use_cache=False)
                for _ in range(2)
            ]
            gate.set()
            for handle in handles:
                handle.result(timeout=30)
        assert compiler.calls == 2


class TestBackpressureAndCancellation:
    def test_full_queue_raises_when_not_blocking(self):
        gate = threading.Event()
        compiler = CountingCompiler(gate)
        target = spin_qubit_target(2)
        service = CompilationService(workers=1, max_pending=1, compile_fn=compiler)
        try:
            running = service.submit(probe_circuit(1), target, "direct")
            # Wait until the single worker picked the first job up, so the
            # queue slot is truly the only capacity left.
            deadline = time.monotonic() + 10
            while service.status(running) is JobStatus.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            service.submit(probe_circuit(2), target, "direct")  # fills the queue
            with pytest.raises(ServiceSaturatedError):
                service.submit(probe_circuit(3), target, "direct", block=False)
        finally:
            gate.set()
            service.shutdown()
        assert service.statistics()["cancelled"] == 1

    def test_cancel_queued_job(self):
        gate = threading.Event()
        compiler = CountingCompiler(gate)
        target = spin_qubit_target(2)
        service = CompilationService(workers=1, compile_fn=compiler)
        try:
            running = service.submit(probe_circuit(1), target, "direct")
            deadline = time.monotonic() + 10
            while service.status(running) is JobStatus.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            queued = service.submit(probe_circuit(2), target, "direct")
            assert queued.cancel() is True
            assert queued.status() is JobStatus.CANCELLED
        finally:
            gate.set()
            service.shutdown()
        assert compiler.calls == 1  # The cancelled job never compiled.

    def test_shutdown_drains_queued_jobs(self):
        compiler = CountingCompiler()
        target = spin_qubit_target(2)
        service = CompilationService(workers=1, compile_fn=compiler)
        handles = [
            service.submit(probe_circuit(i + 1), target, "direct")
            for i in range(3)
        ]
        service.shutdown(wait=True)
        assert all(h.done() for h in handles)
        assert service.statistics()["completed"] == 3

    def test_submit_after_shutdown_raises(self):
        service = CompilationService(workers=1)
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.submit(probe_circuit(), spin_qubit_target(2), "direct")

    def test_shutdown_cancel_pending(self):
        gate = threading.Event()
        compiler = CountingCompiler(gate)
        target = spin_qubit_target(2)
        service = CompilationService(workers=1, compile_fn=compiler)
        running = service.submit(probe_circuit(1), target, "direct")
        deadline = time.monotonic() + 10
        while service.status(running) is JobStatus.QUEUED:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        queued = service.submit(probe_circuit(2), target, "direct")
        gate.set()
        service.shutdown(wait=True, cancel_pending=True)
        assert running.status() is JobStatus.DONE
        assert queued.status() is JobStatus.CANCELLED


class TestStatisticsAndTiers:
    def test_statistics_shape(self):
        with CompilationService(workers=2) as service:
            service.compile(probe_circuit(), spin_qubit_target(2), "direct")
            stats = service.statistics()
        for key in ("queue_depth", "workers", "busy_workers", "worker_utilization",
                    "submitted", "completed", "failed", "cancelled",
                    "deduplicated", "l1", "l1_hit_rate", "portfolio_wins"):
            assert key in stats
        assert stats["workers"] == 2
        assert stats["completed"] == 1

    def test_service_populates_and_reads_the_persistent_store(self, tmp_path):
        circuit = probe_circuit()
        target = spin_qubit_target(2)
        with CompilationService(workers=1, store=str(tmp_path)) as service:
            cold = service.compile(circuit, target, "direct")
            stats = service.statistics()
            assert stats["l2"]["puts"] == 1
        clear_compilation_cache()  # Simulate a fresh process's empty L1.
        with CompilationService(workers=1, store=str(tmp_path)) as service:
            warm = service.compile(circuit, target, "direct")
            stats = service.statistics()
            assert warm.report.cache_hit is True
            assert warm.cost == cold.cost
            assert stats["l2"]["hits"] == 1
            assert stats["l2_hit_rate"] > 0

    def test_store_uninstalled_on_shutdown(self, tmp_path):
        from repro.api import persistent_store

        service = CompilationService(workers=1, store=str(tmp_path))
        assert persistent_store() is service.store
        service.shutdown()
        assert persistent_store() is None


class TestProcessMode:
    def test_process_pool_matches_serial(self):
        circuit = probe_circuit()
        target = spin_qubit_target(2)
        serial = repro.compile(circuit, target, "direct", use_cache=False)
        with CompilationService(workers=2, mode="process") as service:
            result = service.compile(circuit, target, "direct", timeout=120)
        assert result.cost == serial.cost
        # The worker's result was merged back into the parent's L1.
        hit = repro.compile(circuit, target, "direct")
        assert hit.report.cache_hit is True

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CompilationService(mode="fiber")
        with pytest.raises(ValueError):
            CompilationService(workers=0)
