"""Persistent result store: exact round-trips, sharding, eviction, recovery."""

import json
import os

import pytest

import repro
from repro.api import PAPER_TECHNIQUES, cache_key, clear_compilation_cache
from repro.core import AdaptationResult
from repro.hardware import spin_qubit_target
from repro.service import PersistentResultStore
from repro.service.store import _entry_digest


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


def probe_circuit():
    circuit = repro.QuantumCircuit(3, name="store_probe")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(1, 2)
    return circuit


class TestRoundTrip:
    @pytest.mark.parametrize("technique", PAPER_TECHNIQUES)
    def test_every_technique_round_trips_exactly(self, technique):
        """Acceptance: from_dict(to_dict(result)) reproduces cost, duration
        and gate counts bit-identically, through an actual JSON encode."""
        result = repro.compile(probe_circuit(), spin_qubit_target(3), technique)
        payload = json.loads(json.dumps(result.to_dict()))
        restored = AdaptationResult.from_dict(payload)
        assert restored.technique == result.technique
        assert restored.cost == result.cost
        assert restored.cost.duration == result.cost.duration
        assert restored.cost.gate_count == result.cost.gate_count
        assert restored.cost.two_qubit_gate_count == result.cost.two_qubit_gate_count
        assert restored.baseline_cost == result.baseline_cost
        assert restored.objective_value == result.objective_value
        assert restored.adapted_circuit.to_dict() == result.adapted_circuit.to_dict()
        assert [s.to_dict() for s in restored.chosen_substitutions] == [
            s.to_dict() for s in result.chosen_substitutions
        ]
        assert restored.report.to_dict() == result.report.to_dict()

    def test_custom_gate_matrices_survive(self):
        """The dict form embeds matrices, unlike the lossy text dump."""
        result = repro.compile(probe_circuit(), spin_qubit_target(3), "kak_cz")
        restored = AdaptationResult.from_dict(result.to_dict())
        for ours, theirs in zip(
            restored.adapted_circuit.instructions,
            result.adapted_circuit.instructions,
        ):
            assert ours.gate.matrix == theirs.gate.matrix
            assert ours.qubits == theirs.qubits


class TestStore:
    def _compiled(self, technique="direct"):
        circuit = probe_circuit()
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, technique, use_cache=False)
        key = cache_key(circuit, target, technique, result.report.options)
        return key, result

    def test_put_get_round_trip(self, tmp_path):
        store = PersistentResultStore(str(tmp_path))
        key, result = self._compiled()
        store.put(key, result)
        loaded = store.get(key)
        assert loaded is not None
        assert loaded.cost == result.cost
        info = store.info()
        assert info.puts == 1 and info.hits == 1 and info.entries == 1
        assert info.total_bytes > 0

    def test_miss_and_uncacheable_key(self, tmp_path):
        store = PersistentResultStore(str(tmp_path))
        assert store.get(("a", "b", "c", "d")) is None
        store.put(None, object())  # Uncacheable: silently skipped.
        assert store.get(None) is None
        info = store.info()
        assert info.misses == 1 and info.entries == 0

    def test_entries_are_sharded_by_digest_prefix(self, tmp_path):
        store = PersistentResultStore(str(tmp_path))
        key, result = self._compiled()
        store.put(key, result)
        digest = _entry_digest(key)
        assert os.path.exists(
            os.path.join(str(tmp_path), digest[:2], digest + ".json")
        )

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = PersistentResultStore(str(tmp_path))
        key, result = self._compiled()
        store.put(key, result)
        digest = _entry_digest(key)
        path = os.path.join(str(tmp_path), digest[:2], digest + ".json")
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert store.get(key) is None
        assert not os.path.exists(path)
        # A fresh put repairs the entry.
        store.put(key, result)
        assert store.get(key) is not None

    def test_stale_tmp_files_are_swept(self, tmp_path):
        import time

        store = PersistentResultStore(str(tmp_path))
        key, result = self._compiled()
        store.put(key, result)
        digest = _entry_digest(key)
        shard_dir = os.path.join(str(tmp_path), digest[:2])
        fresh = os.path.join(shard_dir, digest + ".inflight.tmp")
        stale = os.path.join(shard_dir, digest + ".abandoned.tmp")
        for path in (fresh, stale):
            with open(path, "w") as handle:
                handle.write("half-written")
        # Backdate the abandoned one past the live-writer grace period.
        old = time.time() - 3600
        os.utime(stale, (old, old))
        assert store.info().entries == 1  # tmp files are never entries...
        assert not os.path.exists(stale)  # ...the stale one was swept...
        assert os.path.exists(fresh)  # ...the live-looking one survived.

    def test_size_budget_evicts_least_recently_used(self, tmp_path):
        store = PersistentResultStore(str(tmp_path))
        keys = []
        for technique in ("direct", "kak_cz", "sat_p"):
            key, result = self._compiled(technique)
            store.put(key, result)
            keys.append(key)
        total = store.info().total_bytes
        # Refresh the first entry's recency, then shrink the budget so one
        # entry must go: the *second* (least recently used) is evicted.
        assert store.get(keys[0]) is not None
        import time as _time
        _time.sleep(0.02)  # mtime resolution guard
        store.max_bytes = total - 1
        key, result = self._compiled("template_f")
        store.put(key, result)
        assert store.get(keys[0]) is not None
        assert store.info().evictions >= 1

    def test_clear_empties_the_store(self, tmp_path):
        store = PersistentResultStore(str(tmp_path))
        key, result = self._compiled()
        store.put(key, result)
        assert store.clear() == 1
        assert store.info().entries == 0
        assert store.get(key) is None


class TestCompileIntegration:
    def test_compile_reads_through_l1_then_l2(self, tmp_path):
        circuit = probe_circuit()
        target = spin_qubit_target(3)
        store = repro.use_persistent_store(str(tmp_path))
        try:
            first = repro.compile(circuit, target, "direct")
            assert first.report.cache_hit is False
            assert store.info().puts == 1
            # Fresh L1 (as in a new process): served from disk, promoted.
            clear_compilation_cache()
            warm = repro.compile(circuit, target, "direct")
            assert warm.report.cache_hit is True
            assert warm.cost == first.cost
            assert store.info().hits == 1
            # Promoted to L1: the next hit does not touch the store again.
            third = repro.compile(circuit, target, "direct")
            assert third.report.cache_hit is True
            assert store.info().hits == 1
        finally:
            repro.disable_persistent_store()
