"""``python -m repro.service``: batch CLI, warm-start persistence, manifests.

The warm-start tests run the CLI in fresh subprocesses, so the second run
proves results really came from the *disk* store (its L1 starts empty),
exactly like a service restart in production.
"""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")

MANIFEST = {
    "technique": "direct",
    "workloads": [
        {"kind": "ghz", "num_qubits": 3},
        {"kind": "qv", "num_qubits": 2, "depth": 2, "seed": 0},
        {"kind": "qaoa_ring", "num_qubits": 3, "layers": 1, "seed": 0},
        {"kind": "vqe_hwe", "num_qubits": 3, "layers": 1, "seed": 0},
    ],
}


def run_cli(*args, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.run(
        [sys.executable, "-m", "repro.service", *args],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if check and process.returncode != 0:
        raise AssertionError(
            f"CLI failed ({process.returncode}):\n{process.stdout}\n{process.stderr}"
        )
    return process


def table_rows(stdout):
    """The per-workload result rows (name..fidelity), cache column dropped."""
    lines = stdout.splitlines()
    rows = []
    in_table = False
    for line in lines:
        if line.startswith("workload"):
            in_table = True
            continue
        if in_table:
            if not line.strip() or line.startswith("-"):
                if rows:
                    break
                continue
            cells = line.split()
            rows.append(tuple(cells[:-2]))  # Drop pipeline[ms] and cache cells.
    return rows


@pytest.fixture()
def manifest_path(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(MANIFEST))
    return str(path)


class TestWarmStart:
    def test_second_run_hits_the_persistent_store_with_identical_results(
        self, manifest_path, tmp_path
    ):
        """Acceptance: a second ``python -m repro.service`` run over the same
        manifest gets >0 persistent-store hits and identical results, in a
        fresh process."""
        store = str(tmp_path / "store")
        stats1 = str(tmp_path / "run1.json")
        stats2 = str(tmp_path / "run2.json")
        first = run_cli(manifest_path, "--store", store, "--stats-json", stats1)
        second = run_cli(manifest_path, "--store", store, "--stats-json", stats2)

        cold = json.load(open(stats1))
        warm = json.load(open(stats2))
        assert cold["l2"]["hits"] == 0
        assert cold["l2"]["puts"] == len(MANIFEST["workloads"])
        assert warm["l2"]["hits"] > 0
        assert warm["l2"]["hits"] == len(MANIFEST["workloads"])
        # Identical results: same gates / 2q / duration / fidelity per row.
        assert table_rows(first.stdout) == table_rows(second.stdout)
        # Warm runs are faster or equal in work done: everything was a hit.
        assert "hit" in second.stdout

    def test_clear_store_resets_the_warm_start(self, manifest_path, tmp_path):
        store = str(tmp_path / "store")
        stats = str(tmp_path / "run.json")
        run_cli(manifest_path, "--store", store)
        run_cli(manifest_path, "--store", store, "--clear-store",
                "--stats-json", stats)
        payload = json.load(open(stats))
        assert payload["l2"]["hits"] == 0


class TestCliSurface:
    def test_portfolio_mode_prints_win_counts(self, manifest_path, tmp_path):
        stats = str(tmp_path / "stats.json")
        process = run_cli(manifest_path, "--portfolio", "direct,kak_cz,sat_p",
                          "--policy", "duration", "--stats-json", stats)
        assert "portfolio wins:" in process.stdout
        payload = json.load(open(stats))
        assert sum(payload["portfolio_wins"].values()) == len(MANIFEST["workloads"])

    def test_stats_json_carries_throughput(self, manifest_path, tmp_path):
        stats = str(tmp_path / "stats.json")
        run_cli(manifest_path, "--stats-json", stats, "--quiet")
        payload = json.load(open(stats))
        assert payload["workloads"] == len(MANIFEST["workloads"])
        assert payload["circuits_per_second"] > 0
        assert payload["completed"] == len(MANIFEST["workloads"])

    def test_missing_manifest_is_a_clean_error(self, tmp_path):
        process = run_cli(str(tmp_path / "nope.json"), check=False)
        assert process.returncode == 2
        assert "cannot load manifest" in process.stderr

    def test_bad_kind_is_a_clean_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"kind": "warp_drive", "num_qubits": 2}]))
        process = run_cli(str(path), check=False)
        assert process.returncode == 2
        assert "unknown workload kind" in process.stderr


class TestManifestParsing:
    def test_plain_list_manifest(self, tmp_path):
        from repro.workloads import parse_manifest

        named, defaults = parse_manifest([{"kind": "ghz", "num_qubits": 3}])
        assert defaults == {}
        assert named[0][0] == "ghz_3"
        assert named[0][1].num_qubits == 3

    def test_duplicate_names_are_disambiguated(self):
        from repro.workloads import parse_manifest

        named, _ = parse_manifest([
            {"kind": "ghz", "num_qubits": 3},
            {"kind": "ghz", "num_qubits": 3},
        ])
        assert [name for name, _ in named] == ["ghz_3", "ghz_3#1"]

    def test_custom_entry_name_wins(self):
        from repro.workloads import parse_manifest

        named, _ = parse_manifest([
            {"kind": "ghz", "num_qubits": 3, "name": "bell_chain"},
        ])
        assert named[0][0] == "bell_chain"

    def test_object_manifest_requires_workloads(self):
        from repro.workloads import parse_manifest

        with pytest.raises(ValueError, match="workloads"):
            parse_manifest({"technique": "sat_p"})

    def test_entry_requires_kind(self):
        from repro.workloads import build_workload_entry

        with pytest.raises(ValueError, match="kind"):
            build_workload_entry({"num_qubits": 2})


class TestExportQasm:
    def test_export_writes_one_file_per_workload(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "technique": "direct",
            "workloads": [
                {"kind": "suite", "name": "toffoli_n3"},
                {"kind": "ghz", "num_qubits": 3},
            ],
        }))
        out_dir = tmp_path / "exported"
        process = run_cli(str(manifest), "--export-qasm", str(out_dir))
        assert "exported 2 adapted circuits" in process.stdout
        files = sorted(p.name for p in out_dir.glob("*.qasm"))
        assert files == ["ghz_3.qasm", "toffoli_n3.qasm"]
        text = (out_dir / "toffoli_n3.qasm").read_text()
        assert text.startswith("OPENQASM 2.0;") or text.startswith("// circuit:")

    def test_colliding_sanitized_names_get_suffixes(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "technique": "direct",
            "workloads": [
                {"kind": "ghz", "num_qubits": 3, "name": "ghz 3"},
                {"kind": "ghz", "num_qubits": 3, "name": "ghz_3"},
                # Pathological: collides with the suffix generated above.
                {"kind": "ghz", "num_qubits": 3, "name": "ghz_3_1"},
            ],
        }))
        out_dir = tmp_path / "exported"
        run_cli(str(manifest), "--export-qasm", str(out_dir))
        files = sorted(p.name for p in out_dir.glob("*.qasm"))
        assert files == ["ghz_3.qasm", "ghz_3_1.qasm", "ghz_3_1_1.qasm"]


class TestFailureExitCode:
    """A workload failing to compile must fail the whole run (non-zero)."""

    @pytest.fixture()
    def flaky_compile(self, monkeypatch):
        """Patch the service's compile so 4-qubit circuits always fail."""
        from repro.service import scheduler

        real = scheduler._facade_compile

        def flaky(circuit, target, technique, **kwargs):
            if circuit.num_qubits == 4:
                raise RuntimeError("synthetic failure (4q)")
            return real(circuit, target, technique, **kwargs)

        monkeypatch.setattr(scheduler, "_facade_compile", flaky)

    def _write_manifest(self, tmp_path, workloads):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"technique": "direct",
                                    "workloads": workloads}))
        return str(path)

    def test_partial_failure_exits_nonzero_but_compiles_the_rest(
        self, tmp_path, flaky_compile, capsys
    ):
        from repro.service.__main__ import main

        manifest = self._write_manifest(tmp_path, [
            {"kind": "ghz", "num_qubits": 3},
            {"kind": "ghz", "num_qubits": 4, "name": "boom"},
        ])
        code = main([manifest])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED boom: RuntimeError: synthetic failure" in captured.err
        assert "error: 1 of 2 workloads failed" in captured.err
        # The healthy workload still compiled and reported normally.
        rows = table_rows(captured.out)
        assert any(row[0] == "ghz_3" and row[1] == "direct" for row in rows)
        assert any(row[0] == "boom" and row[1] == "-" for row in rows)

    def test_all_good_manifest_exits_zero_in_process(self, tmp_path, capsys):
        from repro.service.__main__ import main

        manifest = self._write_manifest(tmp_path, [
            {"kind": "ghz", "num_qubits": 3},
        ])
        assert main([manifest]) == 0
        assert "FAILED" not in capsys.readouterr().err

    def test_failed_count_lands_in_stats_json(self, tmp_path, flaky_compile):
        from repro.service.__main__ import main

        manifest = self._write_manifest(tmp_path, [
            {"kind": "ghz", "num_qubits": 3},
            {"kind": "ghz", "num_qubits": 4},
        ])
        stats = tmp_path / "stats.json"
        assert main([manifest, "--stats-json", str(stats), "--quiet"]) == 1
        payload = json.loads(stats.read_text())
        assert payload["failed_workloads"] == 1

    def test_unknown_technique_fails_every_workload_cleanly(self, tmp_path):
        """Through the real subprocess CLI: non-zero exit, no traceback."""
        manifest = self._write_manifest(tmp_path, [
            {"kind": "ghz", "num_qubits": 3},
        ])
        process = run_cli(manifest, "--technique", "not_a_technique",
                          check=False)
        assert process.returncode == 1
        assert "FAILED" in process.stderr
        assert "Traceback" not in process.stderr
