"""Tests for the gate library, circuit container and unitary utilities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    QuantumCircuit,
    allclose_up_to_global_phase,
    circuit_unitary,
    cx,
    cz,
    crot,
    h,
    instruction_unitary,
    iswap,
    process_fidelity,
    rx,
    ry,
    rz,
    s,
    swap,
    u3,
    x,
    y,
    z,
)
from repro.circuits.circuit import Instruction
from repro.circuits.dag import CircuitDag
from repro.circuits.gates import (
    GATE_BUILDERS,
    adjoint,
    build_gate,
    controlled_phase,
    crz,
    cz_diabatic,
    rzx,
    swap_composite,
    swap_direct,
)


class TestGateUnitaries:
    def test_all_builders_produce_unitaries(self):
        for name, builder in GATE_BUILDERS.items():
            gate = None
            for params in ((), (0.37,), (0.37, 0.11), (0.37, 0.11, -0.6)):
                try:
                    gate = builder(*params)
                    break
                except TypeError:
                    continue
            assert gate is not None, name
            matrix = gate.to_matrix()
            assert np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0])), name

    def test_pauli_algebra(self):
        assert np.allclose(x().to_matrix() @ x().to_matrix(), np.eye(2))
        xy = x().to_matrix() @ y().to_matrix()
        assert np.allclose(xy, 1j * z().to_matrix())

    def test_hadamard_conjugation(self):
        hm = h().to_matrix()
        assert np.allclose(hm @ z().to_matrix() @ hm, x().to_matrix())

    def test_rotation_composition(self):
        theta1, theta2 = 0.3, 1.1
        composed = rz(theta1).to_matrix() @ rz(theta2).to_matrix()
        assert np.allclose(composed, rz(theta1 + theta2).to_matrix())

    def test_u3_reduces_to_ry_and_rz(self):
        assert allclose_up_to_global_phase(
            u3(0.7, 0, 0).to_matrix(), ry(0.7).to_matrix()
        )
        assert allclose_up_to_global_phase(
            u3(0, 0, 0.9).to_matrix(), rz(0.9).to_matrix()
        )

    def test_cx_action_on_basis_states(self):
        matrix = cx().to_matrix()
        # |control=1, target=0> = index 1 (little-endian, control = qubit 0).
        state = np.zeros(4)
        state[1] = 1
        result = matrix @ state
        assert np.argmax(np.abs(result)) == 3

    def test_cz_symmetry(self):
        assert np.allclose(cz().to_matrix(), np.diag([1, 1, 1, -1]))
        assert np.allclose(cz_diabatic().to_matrix(), cz().to_matrix())
        assert cz_diabatic().name == "cz_d"

    def test_cphase_pi_is_cz(self):
        assert np.allclose(controlled_phase(math.pi).to_matrix(), cz().to_matrix())

    def test_crot_pi_is_cnot_up_to_control_phase(self):
        # CNOT = (S on control) . CROT(pi)
        correction = np.kron(np.eye(2), s().to_matrix())  # S on qubit 0 (control)
        assert np.allclose(correction @ crot(math.pi).to_matrix(), cx().to_matrix())

    def test_crz_vs_cphase(self):
        # Control is qubit 0 (little-endian), so indices 1 and 3 are affected.
        theta = 0.8
        assert allclose_up_to_global_phase(
            crz(theta).to_matrix(),
            np.diag([1, np.exp(-1j * theta / 2), 1, np.exp(1j * theta / 2)]),
        )

    def test_swap_variants_share_unitary(self):
        assert np.allclose(swap_direct().to_matrix(), swap().to_matrix())
        assert np.allclose(swap_composite().to_matrix(), swap().to_matrix())
        assert swap_direct().name == "swap_d"
        assert swap_composite().name == "swap_c"

    def test_swap_equals_three_cnots(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(1, 0).cx(0, 1)
        assert np.allclose(circuit_unitary(circuit), swap().to_matrix())

    def test_iswap_matrix(self):
        expected = np.array([[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]])
        assert np.allclose(iswap().to_matrix(), expected)

    def test_rzx_generator(self):
        theta = 0.4
        matrix = rzx(theta).to_matrix()
        assert np.allclose(matrix @ matrix.conj().T, np.eye(4))
        assert not np.allclose(matrix, np.eye(4))

    def test_adjoint_roundtrip(self):
        gate = u3(0.3, 1.2, -0.4)
        assert np.allclose(
            gate.to_matrix() @ adjoint(gate).to_matrix(), np.eye(2), atol=1e-12
        )

    def test_build_gate_by_name(self):
        assert build_gate("h").name == "h"
        assert build_gate("rz", 0.5).params == (0.5,)
        with pytest.raises(KeyError):
            build_gate("nonexistent")


class TestQelib1Gates:
    """Matrix unit tests for the qelib1 one-to-one gate set (PR 4)."""

    def test_id_is_identity(self):
        assert np.allclose(build_gate("id").to_matrix(), np.eye(2))

    def test_u1_is_pure_phase(self):
        lam = 0.73
        assert np.allclose(
            build_gate("u1", lam).to_matrix(), np.diag([1, np.exp(1j * lam)])
        )

    def test_u1_vs_rz_up_to_global_phase(self):
        lam = 1.4
        assert allclose_up_to_global_phase(
            build_gate("u1", lam).to_matrix(), rz(lam).to_matrix()
        )
        # ... but not equal as matrices: u1 leaves |0> untouched.
        assert not np.allclose(build_gate("u1", lam).to_matrix(), rz(lam).to_matrix())

    def test_u2_is_u3_at_half_pi(self):
        phi, lam = 0.3, -1.1
        assert np.allclose(
            build_gate("u2", phi, lam).to_matrix(),
            u3(math.pi / 2, phi, lam).to_matrix(),
        )

    def test_u2_zero_pi_is_hadamard(self):
        assert np.allclose(build_gate("u2", 0.0, math.pi).to_matrix(), h().to_matrix())

    def test_sx_squares_to_x_exactly(self):
        sx_matrix = build_gate("sx").to_matrix()
        assert np.allclose(sx_matrix @ sx_matrix, x().to_matrix())

    def test_sxdg_is_sx_adjoint(self):
        assert np.allclose(
            build_gate("sxdg").to_matrix(),
            build_gate("sx").to_matrix().conj().T,
        )

    def test_sx_matches_rx_up_to_global_phase(self):
        assert allclose_up_to_global_phase(
            build_gate("sx").to_matrix(), rx(math.pi / 2).to_matrix()
        )

    def test_qelib1_names_in_builders(self):
        assert {"id", "u1", "u2", "sx", "sxdg"} <= set(GATE_BUILDERS)

    def test_circuit_helpers(self):
        circuit = QuantumCircuit(1)
        circuit.sx(0).sxdg(0).u1(0.2, 0).u2(0.1, 0.3, 0)
        assert [inst.name for inst in circuit] == ["sx", "sxdg", "u1", "u2"]
        assert allclose_up_to_global_phase(
            circuit_unitary(circuit),
            (build_gate("u2", 0.1, 0.3).to_matrix()
             @ build_gate("u1", 0.2).to_matrix()
             @ np.eye(2)),
        )


class TestQuantumCircuit:
    def test_append_and_count(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
        assert len(circuit) == 4
        assert circuit.count_ops() == {"h": 1, "cx": 2, "rz": 1}
        assert circuit.two_qubit_gate_count() == 2

    def test_depth(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cx(0, 1).h(0)
        assert circuit.depth() == 3

    def test_qubit_range_checked(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.h(2)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Instruction(cx(), (1, 1))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Instruction(cx(), (0,))

    def test_inverse_is_identity(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).rz(0.7, 1).swap(0, 1)
        combined = circuit.copy().compose(circuit.inverse())
        assert allclose_up_to_global_phase(
            circuit_unitary(combined), np.eye(4)
        )

    def test_compose_with_mapping(self):
        bell = QuantumCircuit(2)
        bell.h(0).cx(0, 1)
        big = QuantumCircuit(3)
        big.compose(bell, qubits=[2, 0])
        assert big.instructions[0].qubits == (2,)
        assert big.instructions[1].qubits == (2, 0)

    def test_remap(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        remapped = circuit.remapped([1, 0])
        assert remapped.instructions[0].qubits == (1, 0)

    def test_text_roundtrip(self):
        circuit = QuantumCircuit(3, name="demo")
        circuit.h(0).cx(0, 1).rz(0.25, 2).crot(math.pi, 1, 2).swap(0, 2)
        parsed = QuantumCircuit.from_text(circuit.to_text())
        assert parsed.num_qubits == 3
        assert [inst.name for inst in parsed] == [inst.name for inst in circuit]
        assert allclose_up_to_global_phase(
            circuit_unitary(parsed), circuit_unitary(circuit)
        )

    def test_qubits_used(self):
        circuit = QuantumCircuit(4)
        circuit.h(1).cx(1, 3)
        assert circuit.qubits_used() == (1, 3)


class TestUnitaryUtilities:
    def test_instruction_unitary_embedding(self):
        instruction = Instruction(x(), (1,))
        matrix = instruction_unitary(instruction, 2)
        expected = np.kron(x().to_matrix(), np.eye(2))
        assert np.allclose(matrix, expected)

    def test_two_qubit_embedding_on_reversed_qubits(self):
        # cx with control qubit 1, target qubit 0 in a 2-qubit register.
        instruction = Instruction(cx(), (1, 0))
        matrix = instruction_unitary(instruction, 2)
        # control = qubit 1 -> indices 2, 3 flip the target bit (qubit 0).
        expected = np.eye(4)[:, [0, 1, 3, 2]]
        assert np.allclose(matrix, expected)

    def test_circuit_unitary_bell(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        state = circuit_unitary(circuit)[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_global_phase_comparison(self):
        matrix = circuit_unitary(QuantumCircuit(1).h(0))
        assert allclose_up_to_global_phase(matrix, 1j * matrix)
        assert not allclose_up_to_global_phase(matrix, np.eye(2))

    def test_process_fidelity_bounds(self):
        unitary = circuit_unitary(QuantumCircuit(2).h(0).cx(0, 1))
        assert process_fidelity(unitary, unitary) == pytest.approx(1.0)
        other = circuit_unitary(QuantumCircuit(2).x(0))
        assert 0 <= process_fidelity(unitary, other) < 1


class TestCircuitDag:
    def test_layers_and_depth_agree(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).cx(0, 1).cx(1, 2).h(2)
        dag = CircuitDag(circuit)
        assert len(dag.layers()) == circuit.depth()

    def test_dependencies(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        dag = CircuitDag(circuit)
        assert dag.predecessors(1) == [0]
        assert dag.successors(1) == [2]
        assert dag.topological_order() == [0, 1, 2]

    def test_weighted_longest_path(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).h(1)
        dag = CircuitDag(circuit)
        weights = {0: 30.0, 1: 152.0, 2: 30.0}
        assert dag.longest_path_length(weights) == pytest.approx(212.0)


@settings(max_examples=30, deadline=None)
@given(
    angles=st.lists(
        st.floats(min_value=-math.pi, max_value=math.pi), min_size=1, max_size=6
    ),
    data=st.data(),
)
def test_property_circuit_inverse_cancels(angles, data):
    """Random rotation/CX circuits composed with their inverse give identity."""
    circuit = QuantumCircuit(2)
    for angle in angles:
        kind = data.draw(st.sampled_from(["rx", "ry", "rz", "cx", "cz"]))
        qubit = data.draw(st.sampled_from([0, 1]))
        if kind == "cx":
            circuit.cx(qubit, 1 - qubit)
        elif kind == "cz":
            circuit.cz(qubit, 1 - qubit)
        else:
            getattr(circuit, kind)(angle, qubit)
    total = circuit.copy().compose(circuit.inverse())
    assert allclose_up_to_global_phase(circuit_unitary(total), np.eye(4), atol=1e-7)
