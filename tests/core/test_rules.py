"""Tests for the Fig. 3 substitution rules and their cost evaluation."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, allclose_up_to_global_phase, circuit_unitary
from repro.circuits.circuit import Instruction
from repro.core import evaluate_rules, preprocess, standard_rules
from repro.core.rules import (
    CompositeSwapRule,
    ConditionalRotationRule,
    DirectSwapRule,
    KakDecompositionRule,
)
from repro.hardware import spin_qubit_target


def instructions_unitary(instructions, num_qubits):
    circuit = QuantumCircuit(num_qubits)
    for instruction in instructions:
        circuit.append(instruction.gate, instruction.qubits)
    return circuit_unitary(circuit)


class TestRuleCorrectness:
    """Every substitution rule must be a genuine circuit equivalence (Fig. 3)."""

    def test_crot_rule_equivalence(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        subs = evaluate_rules(preprocessed, [ConditionalRotationRule()])
        assert len(subs) == 1
        original = instructions_unitary(preprocessed.blocks[0].block.instructions, 2)
        replacement = instructions_unitary(subs[0].replacement, 2)
        assert allclose_up_to_global_phase(original, replacement, atol=1e-9)

    @pytest.mark.parametrize("rule_cls, gate_name", [
        (DirectSwapRule, "swap_d"),
        (CompositeSwapRule, "swap_c"),
    ])
    def test_swap_rules_equivalence(self, rule_cls, gate_name):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        subs = evaluate_rules(preprocessed, [rule_cls()])
        assert len(subs) == 1
        assert subs[0].replacement[0].name == gate_name
        original = instructions_unitary(preprocessed.blocks[0].block.instructions, 2)
        replacement = instructions_unitary(subs[0].replacement, 2)
        assert allclose_up_to_global_phase(original, replacement, atol=1e-9)

    @pytest.mark.parametrize("cz_gate", ["cz", "cz_d"])
    def test_kak_rule_equivalence(self, cz_gate):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).rz(0.4, 1).cx(0, 1).swap(0, 1)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        subs = evaluate_rules(preprocessed, [KakDecompositionRule(cz_gate)])
        assert len(subs) == 1
        assert set(subs[0].substituted_positions) == set(range(len(circuit)))
        original = instructions_unitary(preprocessed.blocks[0].block.instructions, 2)
        replacement = instructions_unitary(subs[0].replacement, 2)
        assert allclose_up_to_global_phase(original, replacement, atol=1e-6)
        names = {inst.name for inst in subs[0].replacement if len(inst.qubits) == 2}
        assert names <= {cz_gate}

    def test_kak_rule_skips_single_qubit_blocks(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).rz(0.3, 0)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        subs = evaluate_rules(preprocessed, [KakDecompositionRule()])
        assert subs == []

    def test_invalid_kak_gate_rejected(self):
        with pytest.raises(ValueError):
            KakDecompositionRule("cx")


class TestRuleCosts:
    def test_swap_substitution_deltas(self):
        """swap_d is much faster but less faithful than the CZ-translated SWAP;
        swap_c is both faster and at least as faithful."""
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        target = spin_qubit_target(2, "D0")
        preprocessed = preprocess(circuit, target)
        subs = {s.rule_name: s for s in evaluate_rules(preprocessed, standard_rules())}
        # Reference translation of a SWAP: 3 CZ + 6 single-qubit gates.
        reference_duration = 3 * 152.0 + 6 * 30.0
        assert subs["swap_d"].duration_delta == pytest.approx(19.0 - reference_duration)
        assert subs["swap_c"].duration_delta == pytest.approx(89.0 - reference_duration)
        reference_log_fidelity = 3 * math.log(0.999) + 6 * math.log(0.999)
        assert subs["swap_d"].log_fidelity_delta == pytest.approx(
            math.log(0.99) - reference_log_fidelity
        )
        assert subs["swap_c"].log_fidelity_delta == pytest.approx(
            math.log(0.999) - reference_log_fidelity
        )
        assert subs["swap_c"].log_fidelity_delta > 0

    def test_crot_substitution_slower_on_d0(self):
        """With D0 timings the CROT (660 ns) is slower than H-CZ-H (212 ns)."""
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        target = spin_qubit_target(2, "D0")
        preprocessed = preprocess(circuit, target)
        subs = {s.rule_name: s for s in evaluate_rules(preprocessed, standard_rules())}
        assert subs["crot"].duration_delta > 0
        assert subs["crot"].log_fidelity_delta < 0

    def test_conflicts_detected(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        subs = evaluate_rules(preprocessed, standard_rules())
        by_name = {s.rule_name: s for s in subs}
        assert by_name["swap_d"].conflicts_with(by_name["swap_c"])
        assert by_name["kak"].conflicts_with(by_name["swap_d"])

    def test_no_conflict_across_blocks(self):
        circuit = QuantumCircuit(3)
        circuit.swap(0, 1).swap(1, 2)
        target = spin_qubit_target(3)
        preprocessed = preprocess(circuit, target)
        subs = [s for s in evaluate_rules(preprocessed, [DirectSwapRule()])]
        assert len(subs) == 2
        assert not subs[0].conflicts_with(subs[1])

    def test_rule_counts_on_multi_gate_block(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).swap(0, 1).cx(1, 0)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        subs = evaluate_rules(preprocessed, standard_rules())
        names = [s.rule_name for s in subs]
        assert names.count("crot") == 2
        assert names.count("swap_d") == 1
        assert names.count("swap_c") == 1
        assert names.count("kak") == 1


class TestPreprocessing:
    def test_reference_costs_of_simple_block(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        target = spin_qubit_target(2, "D0")
        preprocessed = preprocess(circuit, target)
        block = preprocessed.blocks[0]
        # H(30) CZ(152) H(30) critical path.
        assert block.reference_duration == pytest.approx(212.0)
        assert block.reference_log_fidelity == pytest.approx(3 * math.log(0.999))

    def test_reference_circuit_equivalent_to_input(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).swap(1, 2).cx(1, 2)
        target = spin_qubit_target(3)
        preprocessed = preprocess(circuit, target)
        reference = preprocessed.reference_circuit()
        assert allclose_up_to_global_phase(
            circuit_unitary(reference), circuit_unitary(circuit), atol=1e-7
        )

    def test_unrouted_circuit_rejected(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        with pytest.raises(ValueError):
            preprocess(circuit, spin_qubit_target(4))
