"""End-to-end tests of the SMT adaptation, the baselines and the paper example.

All compilations go through the unified :func:`repro.compile` facade; the
legacy adapter-class shims are exercised in ``tests/api/test_shims.py``.
"""

import math

import pytest

import repro
from repro.circuits import QuantumCircuit, allclose_up_to_global_phase, circuit_unitary
from repro.core import (
    AdaptationModel,
    OBJECTIVE_COMBINED,
    OBJECTIVE_FIDELITY,
    OBJECTIVE_IDLE,
    evaluate_rules,
    preprocess,
    standard_rules,
)
from repro.hardware import spin_qubit_target
from repro.workloads import ghz_circuit, random_template_circuit

def paper_like_example_circuit():
    """A 3-qubit circuit in the IBM basis with CNOT and SWAP structure
    similar in spirit to the Fig. 4 worked example (three two-qubit blocks)."""
    circuit = QuantumCircuit(3, name="paper_example")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(0, 1)
    circuit.rz(0.5, 1)
    circuit.cx(1, 2)
    circuit.swap(1, 2)
    circuit.cx(0, 1)
    circuit.h(2)
    return circuit


class TestSatTechniques:
    @pytest.mark.parametrize("objective", [OBJECTIVE_FIDELITY, OBJECTIVE_IDLE, OBJECTIVE_COMBINED])
    def test_adaptation_preserves_unitary(self, objective):
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, f"sat_{objective}", verify=True)
        assert allclose_up_to_global_phase(
            circuit_unitary(result.adapted_circuit), circuit_unitary(circuit), atol=1e-6
        )

    def test_native_gates_only(self):
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, "sat_p")
        for instruction in result.adapted_circuit:
            if len(instruction.qubits) == 2:
                assert target.supports(instruction.name), instruction

    def test_fidelity_objective_never_worse_than_baseline(self):
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, "sat_f")
        assert result.cost.gate_fidelity_product >= result.baseline_cost.gate_fidelity_product - 1e-12
        assert result.fidelity_change >= -1e-12

    def test_idle_objective_reduces_idle_time(self):
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        direct = repro.compile(circuit, target, "direct")
        sat_idle = repro.compile(circuit, target, "sat_r")
        assert sat_idle.cost.total_idle_time <= direct.cost.total_idle_time + 1e-9
        assert sat_idle.idle_time_decrease >= -1e-12

    def test_swap_substitution_chosen_for_idle_objective(self):
        """For a circuit dominated by SWAPs, the idle objective picks a native
        swap realization instead of the 3-CZ translation."""
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        target = spin_qubit_target(2)
        result = repro.compile(circuit, target, "sat_r")
        names = [s.rule_name for s in result.chosen_substitutions]
        assert any(name in ("swap_d", "swap_c", "kak") for name in names)
        assert result.cost.duration < repro.compile(circuit, target, "direct").cost.duration

    def test_fidelity_objective_prefers_composite_swap(self):
        """swap_c has the same fidelity as CZ but far fewer gates, so the
        fidelity objective substitutes it for translated SWAPs."""
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        target = spin_qubit_target(2)
        result = repro.compile(circuit, target, "sat_f")
        assert any(s.rule_name == "swap_c" for s in result.chosen_substitutions)

    def test_adapter_routes_when_needed(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        target = spin_qubit_target(4)
        result = repro.compile(circuit, target, "sat_f")
        for instruction in result.adapted_circuit:
            if len(instruction.qubits) == 2:
                assert target.are_connected(*instruction.qubits)

    def test_statistics_populated(self):
        circuit = ghz_circuit(3)
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, "sat_f")
        assert "theory_checks" in result.statistics
        assert result.objective_value is not None


class TestModelSolutionSerialization:
    def test_solution_round_trips_exactly_through_json(self):
        """Block schedules keep integer keys and exact floats through
        to_dict -> json -> from_dict."""
        import json

        from repro.core.model import ModelSolution

        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        circuit.cx(0, 1)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        substitutions = evaluate_rules(preprocessed, standard_rules())
        solution = AdaptationModel(
            preprocessed, substitutions, OBJECTIVE_COMBINED
        ).solve()
        payload = json.loads(json.dumps(solution.to_dict()))
        restored = ModelSolution.from_dict(payload)
        assert restored.objective_value == solution.objective_value
        assert restored.total_duration == solution.total_duration
        assert restored.block_durations == solution.block_durations
        assert restored.block_log_fidelities == solution.block_log_fidelities
        assert restored.block_start_times == solution.block_start_times
        assert all(isinstance(k, int) for k in restored.block_durations)
        assert [s.to_dict() for s in restored.chosen_substitutions] == [
            s.to_dict() for s in solution.chosen_substitutions
        ]


class TestModelSemantics:
    def test_incompatible_substitutions_never_chosen_together(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        substitutions = evaluate_rules(preprocessed, standard_rules())
        for objective in (OBJECTIVE_FIDELITY, OBJECTIVE_IDLE, OBJECTIVE_COMBINED):
            solution = AdaptationModel(preprocessed, substitutions, objective).solve()
            chosen = solution.chosen_substitutions
            for first_index, first in enumerate(chosen):
                for second in chosen[first_index + 1:]:
                    assert not first.conflicts_with(second)

    def test_block_duration_follows_eq3(self):
        """d_b equals the reference duration plus the chosen substitution deltas."""
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        substitutions = evaluate_rules(preprocessed, standard_rules())
        solution = AdaptationModel(preprocessed, substitutions, OBJECTIVE_IDLE).solve()
        expected = preprocessed.blocks[0].reference_duration + sum(
            s.duration_delta for s in solution.chosen_substitutions
        )
        assert solution.block_durations[0] == pytest.approx(expected)

    def test_schedule_respects_dependencies(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2).cx(0, 1)
        target = spin_qubit_target(3)
        preprocessed = preprocess(circuit, target)
        substitutions = evaluate_rules(preprocessed, standard_rules())
        solution = AdaptationModel(preprocessed, substitutions, OBJECTIVE_IDLE).solve()
        graph = preprocessed.dependency_graph
        for source, destination in graph.edges:
            assert (
                solution.block_start_times[destination]
                >= solution.block_start_times[source] + solution.block_durations[source] - 1e-6
            )

    def test_unknown_objective_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        target = spin_qubit_target(2)
        preprocessed = preprocess(circuit, target)
        with pytest.raises(ValueError):
            AdaptationModel(preprocessed, [], objective="speed")


class TestBaselines:
    def test_direct_translation_uses_only_cz(self):
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, "direct")
        for instruction in result.adapted_circuit:
            if len(instruction.qubits) == 2:
                assert instruction.name == "cz"
        assert allclose_up_to_global_phase(
            circuit_unitary(result.adapted_circuit), circuit_unitary(circuit), atol=1e-6
        )

    @pytest.mark.parametrize("cz_gate", ["cz", "cz_d"])
    def test_kak_adapter_equivalence_and_basis(self, cz_gate):
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, {"cz": "kak_cz", "cz_d": "kak_dcz"}[cz_gate])
        assert allclose_up_to_global_phase(
            circuit_unitary(result.adapted_circuit), circuit_unitary(circuit), atol=1e-6
        )
        two_qubit_names = {
            inst.name for inst in result.adapted_circuit if len(inst.qubits) == 2
        }
        assert two_qubit_names <= {cz_gate}

    def test_kak_with_diabatic_cz_lowers_fidelity(self):
        """The diabatic CZ has fidelity 0.99 < 0.999, so KAK(cz_d) hurts the
        gate-fidelity product (the paper's Fig. 5 observation)."""
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        kak_czd = repro.compile(circuit, target, "kak_dcz")
        assert kak_czd.cost.gate_fidelity_product < kak_czd.baseline_cost.gate_fidelity_product

    @pytest.mark.parametrize("objective", ["fidelity", "idle"])
    def test_template_optimizer_equivalence(self, objective):
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, {"fidelity": "template_f", "idle": "template_r"}[objective])
        assert allclose_up_to_global_phase(
            circuit_unitary(result.adapted_circuit), circuit_unitary(circuit), atol=1e-6
        )

    def test_template_optimizer_never_hurts_its_objective(self):
        circuit = paper_like_example_circuit()
        target = spin_qubit_target(3)
        fidelity_result = repro.compile(circuit, target, "template_f")
        assert (
            fidelity_result.cost.gate_fidelity_product
            >= fidelity_result.baseline_cost.gate_fidelity_product - 1e-12
        )

    def test_invalid_technique_key_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        with pytest.raises(repro.UnknownTechniqueError):
            repro.compile(circuit, spin_qubit_target(2), technique="speed")

    def test_fidelity_objective_reports_critical_path_duration(self):
        """Without schedule variables (Eq. 8), the makespan is the critical
        path of the block dependency graph, not 0.0."""
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2).cx(0, 1)
        target = spin_qubit_target(3)
        preprocessed = preprocess(circuit, target)
        substitutions = evaluate_rules(preprocessed, standard_rules())
        solution = AdaptationModel(preprocessed, substitutions, OBJECTIVE_FIDELITY).solve()
        assert solution.total_duration > 0.0
        # The three blocks form a chain, so the critical path is the sum of
        # the solved block durations.
        assert solution.total_duration == pytest.approx(
            sum(solution.block_durations.values())
        )
        # The derived ASAP starts respect the dependency graph.
        for source, destination in preprocessed.dependency_graph.edges:
            assert (
                solution.block_start_times[destination]
                >= solution.block_start_times[source]
                + solution.block_durations[source]
                - 1e-9
            )

    def test_fidelity_and_idle_makespans_agree_without_substitutions(self):
        """Critical-path makespan matches the scheduled makespan when both
        models keep the reference translation (no candidate substitutions)."""
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        target = spin_qubit_target(3)
        preprocessed = preprocess(circuit, target)
        fidelity = AdaptationModel(preprocessed, [], OBJECTIVE_FIDELITY).solve()
        idle = AdaptationModel(preprocessed, [], OBJECTIVE_IDLE).solve()
        assert fidelity.total_duration == pytest.approx(idle.total_duration)


class TestSatBeatsOrMatchesBaselines:
    """The headline qualitative claim: the SMT adaptation is at least as good
    as every baseline on its own objective."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_fidelity_dominance_on_random_circuits(self, seed):
        circuit = random_template_circuit(3, 25, seed=seed)
        target = spin_qubit_target(3)
        sat = repro.compile(circuit, target, "sat_f")
        template = repro.compile(circuit, target, "template_f")
        direct = repro.compile(circuit, target, "direct")
        assert sat.cost.gate_fidelity_product >= direct.cost.gate_fidelity_product - 1e-9
        assert sat.cost.gate_fidelity_product >= template.cost.gate_fidelity_product - 1e-9

    @pytest.mark.parametrize("seed", [0, 1])
    def test_idle_dominance_on_random_circuits(self, seed):
        circuit = random_template_circuit(3, 25, seed=seed)
        target = spin_qubit_target(3)
        sat = repro.compile(circuit, target, "sat_r")
        direct = repro.compile(circuit, target, "direct")
        assert sat.cost.total_idle_time <= direct.cost.total_idle_time + 1e-6


class TestPaperWorkedExample:
    """Eq. (11)-style bookkeeping on a SWAP-containing block with D0 timings."""

    def test_block1_style_duration_terms(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).swap(0, 1)
        target = spin_qubit_target(2, "D0", include_diabatic_cz=False)
        preprocessed = preprocess(circuit, target)
        substitutions = evaluate_rules(preprocessed, standard_rules())
        by_rule = {}
        for substitution in substitutions:
            by_rule.setdefault(substitution.rule_name, []).append(substitution)
        # The four rule families of the example are all present.
        assert set(by_rule) == {"crot", "swap_d", "swap_c", "kak"}
        # The conditional-rotation substitution increases the block duration
        # (660 + 30 vs 212 for the translated CNOT), the swap substitutions
        # decrease it, exactly as in the example's Eq. (11) discussion.
        assert by_rule["crot"][0].duration_delta > 0
        assert by_rule["swap_d"][0].duration_delta < 0
        assert by_rule["swap_c"][0].duration_delta < 0
        assert by_rule["swap_d"][0].duration_delta < by_rule["swap_c"][0].duration_delta
        # Minimizing duration via the idle objective picks a swap substitution
        # and, for the CNOT, keeps the CZ translation (CROT is slower).
        solution = AdaptationModel(preprocessed, substitutions, OBJECTIVE_IDLE).solve()
        chosen_names = {s.rule_name for s in solution.chosen_substitutions}
        assert chosen_names & {"swap_d", "kak"}
        assert "crot" not in chosen_names
