"""Tests for the statevector / density-matrix simulators and noise channels."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.hardware import spin_qubit_target
from repro.hardware.target import GateProperties, Target
from repro.simulator import (
    DensityMatrixSimulator,
    amplitude_damping_kraus,
    depolarizing_kraus,
    depolarizing_strength_for_fidelity,
    hellinger_distance,
    hellinger_fidelity,
    circuit_probabilities,
    phase_damping_kraus,
    simulate_statevector,
    thermal_relaxation_kraus,
    total_variation_distance,
)
from repro.workloads import ghz_circuit


def perfect_target(num_qubits=4):
    """A noise-free target (fidelity 1.0 everywhere) for sanity checks."""
    return Target(
        name="perfect",
        num_qubits=num_qubits,
        single_qubit_gates=GateProperties(30.0, 1.0),
        two_qubit_gates={name: GateProperties(100.0, 1.0) for name in
                         ("cz", "cz_d", "cx", "swap", "swap_d", "swap_c", "crot")},
        coupling_map=None,
        t1=1e15,
        t2=1e15,
    )


class TestStatevector:
    def test_bell_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        probabilities = circuit_probabilities(circuit)
        assert probabilities == pytest.approx({"00": 0.5, "11": 0.5})

    def test_ghz_state(self):
        probabilities = circuit_probabilities(ghz_circuit(3))
        assert probabilities == pytest.approx({"000": 0.5, "111": 0.5})

    def test_custom_initial_state(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        state = simulate_statevector(circuit, initial_state=np.array([0, 1], dtype=complex))
        assert np.allclose(state, [1, 0])

    def test_wrong_initial_state_rejected(self):
        with pytest.raises(ValueError):
            simulate_statevector(QuantumCircuit(2), initial_state=np.ones(3))


class TestNoiseChannels:
    def test_depolarizing_kraus_complete(self):
        for probability in (0.0, 0.01, 0.5, 1.0):
            kraus = depolarizing_kraus(probability)
            total = sum(k.conj().T @ k for k in kraus)
            assert np.allclose(total, np.eye(2), atol=1e-12)

    def test_amplitude_and_phase_damping_complete(self):
        for gamma in (0.0, 0.3, 1.0):
            total = sum(k.conj().T @ k for k in amplitude_damping_kraus(gamma))
            assert np.allclose(total, np.eye(2), atol=1e-12)
        for lam in (0.0, 0.3, 1.0):
            total = sum(k.conj().T @ k for k in phase_damping_kraus(lam))
            assert np.allclose(total, np.eye(2), atol=1e-12)

    def test_thermal_relaxation_complete_and_decaying(self):
        kraus = thermal_relaxation_kraus(500.0, t1=2.9e6, t2=2900.0)
        total = sum(k.conj().T @ k for k in kraus)
        assert np.allclose(total, np.eye(2), atol=1e-10)
        # Coherence of |+> decays by exp(-t/T2).
        plus = np.array([[0.5, 0.5], [0.5, 0.5]], dtype=complex)
        evolved = sum(k @ plus @ k.conj().T for k in kraus)
        assert abs(evolved[0, 1]) == pytest.approx(0.5 * math.exp(-500.0 / 2900.0), rel=1e-6)

    def test_thermal_relaxation_invalid_inputs(self):
        with pytest.raises(ValueError):
            thermal_relaxation_kraus(-1.0, 100.0, 100.0)
        with pytest.raises(ValueError):
            thermal_relaxation_kraus(1.0, 100.0, 300.0)

    def test_depolarizing_strength(self):
        assert depolarizing_strength_for_fidelity(1.0, 1) == 0.0
        assert depolarizing_strength_for_fidelity(0.99, 1) == pytest.approx(0.01)
        assert depolarizing_strength_for_fidelity(0.99, 2) == pytest.approx(0.005)
        with pytest.raises(ValueError):
            depolarizing_strength_for_fidelity(0.0, 1)


class TestMetrics:
    def test_identical_distributions(self):
        dist = {"00": 0.5, "11": 0.5}
        assert hellinger_distance(dist, dist) == pytest.approx(0.0, abs=1e-12)
        assert hellinger_fidelity(dist, dist) == pytest.approx(1.0)
        assert total_variation_distance(dist, dist) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        first = {"00": 1.0}
        second = {"11": 1.0}
        assert hellinger_distance(first, second) == pytest.approx(1.0)
        assert hellinger_fidelity(first, second) == pytest.approx(0.0)
        assert total_variation_distance(first, second) == pytest.approx(1.0)

    def test_unnormalized_inputs_are_normalized(self):
        first = {"0": 2.0, "1": 2.0}
        second = {"0": 0.5, "1": 0.5}
        assert hellinger_fidelity(first, second) == pytest.approx(1.0)

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            hellinger_distance({}, {"0": 1.0})


class TestDensityMatrixSimulator:
    def test_noiseless_target_matches_statevector(self):
        circuit = ghz_circuit(3)
        simulator = DensityMatrixSimulator(perfect_target(3))
        result = simulator.run(circuit)
        assert result.hellinger_fidelity == pytest.approx(1.0, abs=1e-9)
        assert result.probabilities == pytest.approx(result.ideal_probabilities, abs=1e-9)

    def test_density_matrix_is_valid(self):
        target = spin_qubit_target(2)
        circuit = QuantumCircuit(2)
        circuit.h(0).cz(0, 1).h(1)
        rho = DensityMatrixSimulator(target).evolve(circuit)
        assert np.isclose(np.trace(rho).real, 1.0, atol=1e-9)
        eigenvalues = np.linalg.eigvalsh(rho)
        assert eigenvalues.min() > -1e-9

    def test_noise_reduces_hellinger_fidelity(self):
        target = spin_qubit_target(3)
        circuit = QuantumCircuit(3)
        # Long idle on qubit 2 while (0, 1) are busy, plus several 2q gates.
        circuit.h(0)
        for _ in range(6):
            circuit.cz(0, 1)
        circuit.cz(1, 2)
        result = DensityMatrixSimulator(target).run(circuit)
        assert result.hellinger_fidelity < 1.0
        assert result.total_idle_time > 0

    def test_idle_noise_toggle(self):
        target = spin_qubit_target(3)
        circuit = QuantumCircuit(3)
        circuit.h(0)
        for _ in range(6):
            circuit.cz(0, 1)
        circuit.cz(1, 2)
        with_idle = DensityMatrixSimulator(target, include_idle_noise=True).run(circuit)
        without_idle = DensityMatrixSimulator(target, include_idle_noise=False).run(circuit)
        assert with_idle.hellinger_fidelity <= without_idle.hellinger_fidelity + 1e-12

    def test_lower_gate_fidelity_lowers_result_quality(self):
        good = spin_qubit_target(2, "D0")
        bad = Target(
            name="bad",
            num_qubits=2,
            single_qubit_gates=GateProperties(30.0, 0.999),
            two_qubit_gates={"cz": GateProperties(152.0, 0.9), "cz_d": GateProperties(67.0, 0.9),
                             "crot": GateProperties(660.0, 0.9), "swap_d": GateProperties(19.0, 0.9),
                             "swap_c": GateProperties(89.0, 0.9)},
            coupling_map=[(0, 1)],
            t1=2.9e6,
            t2=2900.0,
        )
        # Bell-state preparation (CX = H CZ H on the target qubit): the ideal
        # distribution is peaked on {00, 11}, so depolarizing errors visibly
        # reduce the Hellinger fidelity.
        circuit = QuantumCircuit(2)
        circuit.h(0).h(1).cz(0, 1).h(1)
        fidelity_good = DensityMatrixSimulator(good).run(circuit).hellinger_fidelity
        fidelity_bad = DensityMatrixSimulator(bad).run(circuit).hellinger_fidelity
        assert fidelity_bad < fidelity_good
