"""Property-style equivalence tests: local kernels vs the dense oracle.

The fast simulation paths (tensor-contraction gate application in
``repro.simulator.kernels``) must agree with the legacy dense
``expand_gate_matrix`` paths on random circuits — statevectors up to a
global phase, density matrices and unitaries entrywise, noisy Kraus
channels included.
"""

import math
import random

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits import gates as glib
from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    circuit_unitary_dense,
    expand_gate_matrix,
)
from repro.hardware.target import GateProperties, Target
from repro.simulator import (
    DensityMatrixSimulator,
    sample_counts,
    simulate_statevector,
    simulate_statevector_dense,
    statevector_probabilities,
)
from repro.simulator.kernels import (
    apply_gate_statevector,
    apply_kraus_density,
    apply_unitary_density,
)
from repro.simulator.noise import depolarizing_kraus, thermal_relaxation_kraus


def random_circuit(num_qubits: int, depth: int, rng: random.Random) -> QuantumCircuit:
    """A random circuit mixing parametrized 1q gates and entangling 2q gates."""
    one_qubit = [
        lambda: glib.h(),
        lambda: glib.x(),
        lambda: glib.s(),
        lambda: glib.t(),
        lambda: glib.rx(rng.uniform(0, 2 * math.pi)),
        lambda: glib.ry(rng.uniform(0, 2 * math.pi)),
        lambda: glib.rz(rng.uniform(0, 2 * math.pi)),
        lambda: glib.u3(*(rng.uniform(0, 2 * math.pi) for _ in range(3))),
    ]
    two_qubit = [
        lambda: glib.cx(),
        lambda: glib.cz(),
        lambda: glib.swap(),
        lambda: glib.iswap(),
        lambda: glib.controlled_phase(rng.uniform(0, 2 * math.pi)),
        lambda: glib.crot(rng.uniform(0, 2 * math.pi), rng.uniform(0, 2 * math.pi)),
    ]
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}")
    for _ in range(depth):
        if num_qubits >= 2 and rng.random() < 0.45:
            a, b = rng.sample(range(num_qubits), 2)
            circuit.append(rng.choice(two_qubit)(), (a, b))
        else:
            circuit.append(rng.choice(one_qubit)(), (rng.randrange(num_qubits),))
    return circuit


def random_state(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    state = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
    return state / np.linalg.norm(state)


class TestStatevectorKernel:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 4, 5, 6])
    def test_random_circuits_match_dense(self, num_qubits):
        rng = random.Random(100 + num_qubits)
        for trial in range(4):
            circuit = random_circuit(num_qubits, depth=4 * num_qubits, rng=rng)
            fast = simulate_statevector(circuit)
            dense = simulate_statevector_dense(circuit)
            assert np.allclose(fast, dense, atol=1e-10)

    @pytest.mark.parametrize("num_qubits", [2, 4, 6])
    def test_random_initial_state(self, num_qubits):
        rng = random.Random(7 + num_qubits)
        nprng = np.random.default_rng(7 + num_qubits)
        circuit = random_circuit(num_qubits, depth=3 * num_qubits, rng=rng)
        initial = random_state(num_qubits, nprng)
        fast = simulate_statevector(circuit, initial_state=initial)
        dense = simulate_statevector_dense(circuit, initial_state=initial)
        assert np.allclose(fast, dense, atol=1e-10)

    def test_single_gate_matches_expand(self):
        rng = random.Random(3)
        for num_qubits in (2, 3, 5):
            nprng = np.random.default_rng(num_qubits)
            state = random_state(num_qubits, nprng)
            for gate, qubits in [
                (glib.cx(), (2 % num_qubits, 0)),
                (glib.crot(1.234, 0.5), (0, num_qubits - 1)),
                (glib.u3(0.3, 0.7, 1.9), (num_qubits - 1,)),
            ]:
                if len(set(qubits)) != len(qubits):
                    continue
                fast = apply_gate_statevector(state, gate.to_matrix(), qubits, num_qubits)
                dense = expand_gate_matrix(gate.to_matrix(), qubits, num_qubits) @ state
                assert np.allclose(fast, dense, atol=1e-12)


class TestUnitaryKernel:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 4, 5])
    def test_circuit_unitary_matches_dense(self, num_qubits):
        rng = random.Random(40 + num_qubits)
        circuit = random_circuit(num_qubits, depth=3 * num_qubits, rng=rng)
        fast = circuit_unitary(circuit)
        dense = circuit_unitary_dense(circuit)
        assert np.allclose(fast, dense, atol=1e-10)
        assert allclose_up_to_global_phase(fast, dense)


class TestDensityKernel:
    def noisy_target(self, num_qubits):
        return Target(
            name="noisy-test",
            num_qubits=num_qubits,
            single_qubit_gates=GateProperties(30.0, 0.995),
            two_qubit_gates={name: GateProperties(100.0, 0.98) for name in
                             ("cz", "cz_d", "cx", "swap", "swap_d", "swap_c", "crot")},
            coupling_map=None,
            t1=2.9e6,
            t2=2900.0,
        )

    def test_unitary_update_matches_dense(self):
        rng = random.Random(11)
        nprng = np.random.default_rng(11)
        num_qubits = 4
        state = random_state(num_qubits, nprng)
        rho = np.outer(state, state.conj())
        for gate, qubits in [(glib.cx(), (3, 1)), (glib.h(), (2,)), (glib.iswap(), (0, 2))]:
            full = expand_gate_matrix(gate.to_matrix(), qubits, num_qubits)
            dense = full @ rho @ full.conj().T
            fast = apply_unitary_density(rho, gate.to_matrix(), qubits, num_qubits)
            assert np.allclose(fast, dense, atol=1e-12)

    def test_kraus_update_matches_dense(self):
        num_qubits = 3
        nprng = np.random.default_rng(23)
        state = random_state(num_qubits, nprng)
        rho = np.outer(state, state.conj())
        for kraus in (
            depolarizing_kraus(0.03),
            thermal_relaxation_kraus(500.0, 2.9e6, 2900.0),
        ):
            for qubit in range(num_qubits):
                dense = np.zeros_like(rho)
                for operator in kraus:
                    full = expand_gate_matrix(operator, (qubit,), num_qubits)
                    dense = dense + full @ rho @ full.conj().T
                fast = apply_kraus_density(rho, kraus, (qubit,), num_qubits)
                assert np.allclose(fast, dense, atol=1e-12)
                assert np.trace(fast).real == pytest.approx(np.trace(rho).real, abs=1e-10)

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_noisy_evolution_matches_dense_simulator(self, num_qubits):
        rng = random.Random(60 + num_qubits)
        target = self.noisy_target(num_qubits)
        circuit = QuantumCircuit(num_qubits)
        # Use target-native gates so scheduling/fidelity lookups succeed.
        circuit.h(0)
        for qubit in range(num_qubits - 1):
            circuit.cz(qubit, qubit + 1)
        for qubit in range(num_qubits):
            circuit.append(glib.rz(rng.uniform(0, 2 * math.pi)), (qubit,))
        circuit.cx(num_qubits - 1, 0)
        fast_rho = DensityMatrixSimulator(target).evolve(circuit)
        dense_rho = DensityMatrixSimulator(target, dense=True).evolve(circuit)
        assert np.allclose(fast_rho, dense_rho, atol=1e-10)
        assert np.trace(fast_rho).real == pytest.approx(1.0, abs=1e-9)


class TestSampling:
    def test_sample_counts_total_and_support(self):
        probabilities = {"00": 0.5, "11": 0.5}
        counts = sample_counts(probabilities, shots=1000, seed=7)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {"00", "11"}

    def test_sample_counts_deterministic_with_seed(self):
        probabilities = {"0": 0.25, "1": 0.75}
        first = sample_counts(probabilities, shots=500, seed=42)
        second = sample_counts(probabilities, shots=500, seed=42)
        assert first == second

    def test_probabilities_roundtrip(self):
        state = np.array([1, 0, 0, 1j], dtype=complex) / math.sqrt(2)
        probabilities = statevector_probabilities(state)
        assert probabilities == pytest.approx({"00": 0.5, "11": 0.5})
