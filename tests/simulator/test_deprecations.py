"""The ``measurement_probabilities`` shim: warns, delegates, stays external.

The tier-1 run itself is kept warning-clean for this shim by the
``filterwarnings`` error entry in ``pyproject.toml`` — no internal code
path may call it.  These tests pin the deprecation surface for external
callers.
"""

import pytest

from repro.simulator import (
    circuit_probabilities,
    measurement_probabilities,
    simulate_statevector,
)
from repro.simulator.statevector import statevector_probabilities
from repro.workloads import ghz_circuit


class TestMeasurementProbabilitiesShim:
    def test_circuit_mode_warns_and_delegates(self):
        circuit = ghz_circuit(3)
        with pytest.warns(DeprecationWarning, match="circuit_probabilities"):
            legacy = measurement_probabilities(circuit)
        assert legacy == circuit_probabilities(circuit)

    def test_statevector_mode_warns_and_delegates(self):
        circuit = ghz_circuit(2)
        state = simulate_statevector(circuit)
        with pytest.warns(DeprecationWarning, match="statevector_probabilities"):
            legacy = measurement_probabilities(state, 2)
        assert legacy == statevector_probabilities(state, 2)

    def test_replacements_do_not_warn(self):
        import warnings

        circuit = ghz_circuit(2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            circuit_probabilities(circuit)
            statevector_probabilities(simulate_statevector(circuit), 2)
