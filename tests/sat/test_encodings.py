"""Tests for cardinality and pseudo-Boolean CNF encodings."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver
from repro.sat.encodings import (
    CardinalityEncoder,
    at_least_k,
    at_most_k,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_k,
    exactly_one,
    pseudo_boolean_leq,
)


def count_models(num_vars, clauses, projection):
    """Count models of ``clauses`` projected onto the first ``projection`` vars."""
    seen = set()
    solver_clauses = [list(clause) for clause in clauses]
    for bits in itertools.product([False, True], repeat=projection):
        assignment = {var + 1: bits[var] for var in range(projection)}
        solver = Solver()
        for clause in solver_clauses:
            solver.add_clause(clause)
        assumptions = [var if value else -var for var, value in assignment.items()]
        if solver.solve_limited(assumptions).value == "sat":
            seen.add(bits)
    return seen


class TestAtMostOne:
    def test_pairwise_structure(self):
        clauses = at_most_one_pairwise([1, 2, 3])
        assert sorted(map(sorted, clauses)) == [[-3, -2], [-3, -1], [-2, -1]]

    @pytest.mark.parametrize("encoder", ["pairwise", "sequential"])
    def test_allows_zero_or_one(self, encoder):
        literals = [1, 2, 3, 4, 5]
        solver = Solver()
        for lit in literals:
            solver._ensure_var(lit)
        if encoder == "pairwise":
            clauses = at_most_one_pairwise(literals)
        else:
            clauses = at_most_one_sequential(literals, solver.new_var)
        for clause in clauses:
            solver.add_clause(clause)
        # All false is allowed.
        assert solver.solve([-lit for lit in literals])
        # Any single literal is allowed.
        for lit in literals:
            assert solver.solve([lit] + [-other for other in literals if other != lit])
        # Any two literals together are forbidden.
        assert not solver.solve([1, 2])
        assert not solver.solve([3, 5])

    def test_sequential_trivial_sizes(self):
        assert at_most_one_sequential([], lambda: 99) == []
        assert at_most_one_sequential([7], lambda: 99) == []


class TestCardinality:
    @pytest.mark.parametrize("bound", [0, 1, 2, 3, 4])
    def test_at_most_k_counts(self, bound):
        literals = [1, 2, 3, 4]
        solver = Solver()
        for lit in literals:
            solver._ensure_var(lit)
        for clause in at_most_k(literals, bound, solver.new_var):
            solver.add_clause(clause)
        for bits in itertools.product([False, True], repeat=4):
            assumptions = [lit if bit else -lit for lit, bit in zip(literals, bits)]
            expected = sum(bits) <= bound
            assert solver.solve_limited(assumptions).value == (
                "sat" if expected else "unsat"
            )

    @pytest.mark.parametrize("bound", [0, 1, 2, 3, 4])
    def test_at_least_k_counts(self, bound):
        literals = [1, 2, 3, 4]
        solver = Solver()
        for lit in literals:
            solver._ensure_var(lit)
        for clause in at_least_k(literals, bound, solver.new_var):
            solver.add_clause(clause)
        for bits in itertools.product([False, True], repeat=4):
            assumptions = [lit if bit else -lit for lit, bit in zip(literals, bits)]
            expected = sum(bits) >= bound
            assert solver.solve_limited(assumptions).value == (
                "sat" if expected else "unsat"
            )

    @pytest.mark.parametrize("bound", [0, 1, 2, 3])
    def test_exactly_k_counts(self, bound):
        literals = [1, 2, 3]
        solver = Solver()
        for lit in literals:
            solver._ensure_var(lit)
        for clause in exactly_k(literals, bound, solver.new_var):
            solver.add_clause(clause)
        for bits in itertools.product([False, True], repeat=3):
            assumptions = [lit if bit else -lit for lit, bit in zip(literals, bits)]
            expected = sum(bits) == bound
            assert solver.solve_limited(assumptions).value == (
                "sat" if expected else "unsat"
            )

    def test_exactly_one_requires_one(self):
        literals = [1, 2, 3]
        solver = Solver()
        for clause in exactly_one(literals):
            solver.add_clause(clause)
        assert not solver.solve([-1, -2, -3])
        assert solver.solve([2, -1, -3])
        assert not solver.solve([1, 2])

    def test_at_least_more_than_available_unsat(self):
        solver = Solver()
        for clause in at_least_k([1, 2], 3, solver.new_var):
            solver.add_clause(clause)
        assert not solver.solve()

    def test_at_most_negative_bound_unsat(self):
        solver = Solver()
        solver._ensure_var(1)
        solver._ensure_var(2)
        for clause in at_most_k([1, 2], -1, solver.new_var):
            solver.add_clause(clause)
        assert not solver.solve()

    def test_encoder_facade(self):
        solver = Solver()
        encoder = CardinalityEncoder(solver.new_var)
        for lit in (1, 2, 3, 4, 5, 6):
            solver._ensure_var(lit)
        for clause in encoder.at_most_one([1, 2, 3, 4, 5, 6]):
            solver.add_clause(clause)
        assert solver.solve([3])
        assert not solver.solve([3, 4])

        other = Solver()
        other_encoder = CardinalityEncoder(other.new_var)
        for lit in (1, 2, 3):
            other._ensure_var(lit)
        for clause in other_encoder.exactly_k([1, 2, 3], 2):
            other.add_clause(clause)
        assert other.solve()
        model = other.model()
        assert sum(model[lit] for lit in (1, 2, 3)) == 2


class TestPseudoBoolean:
    def test_weighted_sum_bound(self):
        # 3*x1 + 2*x2 + 1*x3 <= 3
        solver = Solver()
        for lit in (1, 2, 3):
            solver._ensure_var(lit)
        for clause in pseudo_boolean_leq([(3, 1), (2, 2), (1, 3)], 3, solver.new_var):
            solver.add_clause(clause)
        assert solver.solve([1, -2, -3])
        assert solver.solve([-1, 2, 3])
        assert not solver.solve([1, 2])
        assert not solver.solve([1, 3])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            pseudo_boolean_leq([(-1, 1)], 0, lambda: 5)


@settings(max_examples=40, deadline=None)
@given(
    num_literals=st.integers(min_value=1, max_value=6),
    bound=st.integers(min_value=0, max_value=6),
    data=st.data(),
)
def test_property_at_most_k_exact_semantics(num_literals, bound, data):
    """at_most_k admits exactly the assignments with <= bound true literals."""
    literals = list(range(1, num_literals + 1))
    solver = Solver()
    for lit in literals:
        solver._ensure_var(lit)
    for clause in at_most_k(literals, bound, solver.new_var):
        solver.add_clause(clause)
    bits = data.draw(
        st.lists(st.booleans(), min_size=num_literals, max_size=num_literals)
    )
    assumptions = [lit if bit else -lit for lit, bit in zip(literals, bits)]
    expected = sum(bits) <= bound
    assert solver.solve_limited(assumptions).value == ("sat" if expected else "unsat")
