"""Unit and property-based tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver, SolverResult
from repro.sat.solver import luby


def brute_force_sat(num_vars, clauses):
    """Reference satisfiability check by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {var + 1: bits[var] for var in range(num_vars)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True, assignment
    return False, None


def check_model(clauses, model):
    """Assert that a model satisfies every clause."""
    for clause in clauses:
        assert any(model[abs(lit)] == (lit > 0) for lit in clause), clause


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert Solver().solve()

    def test_single_unit_clause(self):
        solver = Solver()
        solver.add_clause([3])
        assert solver.solve()
        assert solver.model_value(3) is True

    def test_negative_unit_clause(self):
        solver = Solver()
        solver.add_clause([-2])
        assert solver.solve()
        assert solver.model_value(2) is False

    def test_conflicting_units_unsat(self):
        solver = Solver()
        solver.add_clause([1])
        assert not solver.add_clause([-1]) or not solver.solve()
        assert solver.solve_limited() == SolverResult.UNSAT

    def test_simple_implication_chain(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        solver.add_clause([-3, 4])
        assert solver.solve()
        for var in (1, 2, 3, 4):
            assert solver.model_value(var) is True

    def test_empty_clause_unsat(self):
        solver = Solver()
        assert not solver.add_clause([])
        assert not solver.solve()

    def test_tautological_clause_ignored(self):
        solver = Solver()
        solver.add_clause([1, -1])
        solver.add_clause([2])
        assert solver.solve()
        assert solver.model_value(2)

    def test_duplicate_literals_handled(self):
        solver = Solver()
        solver.add_clause([1, 1, 2, 2])
        solver.add_clause([-1])
        assert solver.solve()
        assert solver.model_value(2)

    def test_zero_literal_rejected(self):
        solver = Solver()
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_small_unsat_pigeonhole(self):
        # 3 pigeons in 2 holes: variables p_ij = 2*(i-1)+j.
        solver = Solver()
        for pigeon in range(3):
            solver.add_clause([2 * pigeon + 1, 2 * pigeon + 2])
        for hole in (1, 2):
            for first in range(3):
                for second in range(first + 1, 3):
                    solver.add_clause([-(2 * first + hole), -(2 * second + hole)])
        assert not solver.solve()

    def test_pigeonhole_4_in_3_unsat(self):
        solver = Solver()
        def var(pigeon, hole):
            return pigeon * 3 + hole + 1
        for pigeon in range(4):
            solver.add_clause([var(pigeon, hole) for hole in range(3)])
        for hole in range(3):
            for first in range(4):
                for second in range(first + 1, 4):
                    solver.add_clause([-var(first, hole), -var(second, hole)])
        assert not solver.solve()

    def test_satisfiable_graph_coloring(self):
        # Color a 4-cycle with 2 colors: x_i true = color A.
        solver = Solver()
        edges = [(1, 2), (2, 3), (3, 4), (4, 1)]
        for a, b in edges:
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])
        assert solver.solve()
        model = solver.model()
        for a, b in edges:
            assert model[a] != model[b]

    def test_triangle_two_coloring_unsat(self):
        solver = Solver()
        edges = [(1, 2), (2, 3), (3, 1)]
        for a, b in edges:
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])
        assert not solver.solve()


class TestIncrementalAndAssumptions:
    def test_assumption_sat_and_unsat(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[1])
        assert solver.model_value(2) is True
        solver.add_clause([-2])
        assert not solver.solve(assumptions=[1])
        # Without the assumption the formula is still satisfiable.
        assert solver.solve()

    def test_failed_assumptions_core(self):
        solver = Solver()
        solver.add_clause([-1, -2])
        assert not solver.solve(assumptions=[1, 2, 3])
        core = solver.failed_assumptions()
        assert set(core) <= {1, 2, 3}
        assert set(core) & {1, 2}

    def test_incremental_clause_addition(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve()
        solver.add_clause([-1])
        assert solver.solve()
        assert solver.model_value(2)
        solver.add_clause([-2])
        assert not solver.solve()

    def test_solve_twice_same_result(self):
        solver = Solver()
        solver.add_clause([1, 2, 3])
        solver.add_clause([-1, -2])
        assert solver.solve()
        first = solver.model()
        assert solver.solve()
        check_model([[1, 2, 3], [-1, -2]], first)

    def test_assumptions_do_not_persist(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1])
        assert solver.model_value(2)
        assert solver.solve(assumptions=[-2])
        assert solver.model_value(1)


class TestStatisticsAndUtilities:
    def test_luby_sequence_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_luby_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            luby(0)

    def test_statistics_counters_move(self):
        solver = Solver()
        random_instance = random_3sat(num_vars=20, num_clauses=85, seed=7)
        for clause in random_instance:
            solver.add_clause(clause)
        solver.solve_limited()
        stats = solver.statistics.as_dict()
        assert stats["propagations"] > 0
        assert stats["decisions"] >= 0

    def test_new_var_allocates_fresh(self):
        solver = Solver()
        solver.add_clause([5, 6])
        fresh = solver.new_var()
        assert fresh not in (5, 6)
        solver.add_clause([-fresh])
        assert solver.solve()


def random_3sat(num_vars, num_clauses, seed):
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([var if rng.random() < 0.5 else -var for var in variables])
    return clauses


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_3sat_agrees_with_brute_force(self, seed):
        num_vars = 8
        clauses = random_3sat(num_vars, 30, seed)
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        expected, _ = brute_force_sat(num_vars, clauses)
        got = solver.solve_limited()
        assert got != SolverResult.UNKNOWN
        assert (got == SolverResult.SAT) == expected
        if expected:
            check_model(clauses, solver.model())

    @pytest.mark.parametrize("seed", range(4))
    def test_larger_random_instances_model_valid(self, seed):
        clauses = random_3sat(30, 100, seed + 100)
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve():
            check_model(clauses, solver.model())


@settings(max_examples=60, deadline=None)
@given(
    clauses=st.lists(
        st.lists(
            st.integers(min_value=1, max_value=6).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=25,
    )
)
def test_property_matches_brute_force(clauses):
    """The CDCL solver agrees with brute force on arbitrary small formulas."""
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    expected, _ = brute_force_sat(6, clauses)
    assert solver.solve_limited() == (
        SolverResult.SAT if expected else SolverResult.UNSAT
    )
    if expected:
        check_model(clauses, solver.model())


@settings(max_examples=30, deadline=None)
@given(
    clauses=st.lists(
        st.lists(
            st.integers(min_value=1, max_value=5).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=15,
    ),
    assumption=st.integers(min_value=1, max_value=5).flatmap(
        lambda v: st.sampled_from([v, -v])
    ),
)
def test_property_assumptions_consistent(clauses, assumption):
    """Solving under an assumption equals solving with that unit clause added."""
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    under_assumption = solver.solve_limited([assumption])

    reference = Solver()
    for clause in clauses:
        reference.add_clause(clause)
    reference.add_clause([assumption])
    expected = reference.solve_limited()
    assert under_assumption == expected
