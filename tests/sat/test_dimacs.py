"""Tests for DIMACS parsing and serialization."""

import pytest

from repro.sat import Solver, parse_dimacs, to_dimacs


SAMPLE = """c sample instance
p cnf 3 2
1 -3 0
2 3 -1 0
"""


class TestParse:
    def test_parse_simple(self):
        num_vars, clauses = parse_dimacs(SAMPLE)
        assert num_vars == 3
        assert clauses == [[1, -3], [2, 3, -1]]

    def test_parse_multiline_clause(self):
        text = "p cnf 4 1\n1 2\n3 4 0\n"
        _, clauses = parse_dimacs(text)
        assert clauses == [[1, 2, 3, 4]]

    def test_parse_without_problem_line(self):
        num_vars, clauses = parse_dimacs("1 -2 0\n2 0\n")
        assert num_vars == 2
        assert clauses == [[1, -2], [2]]

    def test_parse_rejects_bad_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs("p cnf three two\n1 0\n")

    def test_parse_rejects_out_of_range_literal(self):
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 2 1\n5 0\n")

    def test_parse_ignores_satlib_trailer(self):
        text = "p cnf 2 1\n1 2 0\n%\n0\n"
        _, clauses = parse_dimacs(text)
        assert clauses == [[1, 2]]


class TestRoundTrip:
    def test_serialize_and_reparse(self):
        clauses = [[1, -2], [2, 3], [-3, -1]]
        text = to_dimacs(3, clauses)
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3
        assert parsed == clauses

    def test_serialized_instance_is_solvable(self):
        clauses = [[1, 2], [-1, 2], [-2, 3]]
        num_vars, parsed = parse_dimacs(to_dimacs(3, clauses))
        solver = Solver()
        for clause in parsed:
            solver.add_clause(clause)
        assert solver.solve()
        assert solver.model_value(3)

    def test_to_dimacs_grows_num_vars(self):
        text = to_dimacs(1, [[5, -6]])
        assert "p cnf 6 1" in text
