"""Tests for routing, block collection, basis translation, scheduling, costs."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import QuantumCircuit, allclose_up_to_global_phase, circuit_unitary
from repro.hardware import ibm_like_source_target, spin_qubit_target
from repro.transpiler import (
    analyze_cost,
    asap_schedule,
    block_dependency_graph,
    collect_two_qubit_blocks,
    route_circuit,
    translate_to_basis,
    trivial_layout,
)
from repro.transpiler.basis import translate_instruction_to_cz
from repro.circuits.circuit import Instruction
from repro.circuits import gates as glib
from repro.workloads import random_template_circuit


class TestRouting:
    def test_already_routed_circuit_unchanged_content(self):
        target = spin_qubit_target(3)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        routed = route_circuit(circuit, target)
        assert routed.count_ops().get("swap", 0) == 0
        assert routed.count_ops()["cx"] == 2

    def test_swap_inserted_for_distant_pair(self):
        target = spin_qubit_target(4)
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        routed = route_circuit(circuit, target)
        assert routed.count_ops().get("swap", 0) >= 1
        for instruction in routed:
            if len(instruction.qubits) == 2:
                assert target.are_connected(*instruction.qubits)

    def test_routing_preserves_semantics_up_to_permutation(self):
        # On 3 qubits, verify the routed circuit equals the original followed
        # by the permutation induced by the inserted swaps.
        target = spin_qubit_target(3)
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 2).rz(0.3, 2)
        routed = route_circuit(circuit, target)
        # Undo the permutation by re-simulating: the sets of measurement
        # probabilities (as multisets) must agree.
        original = np.abs(circuit_unitary(circuit)[:, 0]) ** 2
        routed_probs = np.abs(circuit_unitary(routed)[:, 0]) ** 2
        assert sorted(np.round(original, 10)) == sorted(np.round(routed_probs, 10))

    def test_layout_too_large_rejected(self):
        target = spin_qubit_target(2)
        circuit = QuantumCircuit(3)
        with pytest.raises(ValueError):
            trivial_layout(circuit, target)


class TestBlockCollection:
    def test_single_pair_circuit_is_one_block(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1).rz(0.1, 1).cx(0, 1)
        blocks = collect_two_qubit_blocks(circuit)
        assert len(blocks) == 1
        assert blocks[0].qubits == (0, 1)
        assert len(blocks[0].instructions) == 4

    def test_blocks_split_on_pair_change(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2).cx(0, 1)
        blocks = collect_two_qubit_blocks(circuit)
        assert [block.qubits for block in blocks] == [(0, 1), (1, 2), (0, 1)]

    def test_single_qubit_gates_attach_to_open_block(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).h(1).h(2).cx(1, 2)
        blocks = collect_two_qubit_blocks(circuit)
        # h(1) joins the (0,1) block; h(2) is absorbed into the (1,2) block.
        assert len(blocks) == 2
        assert blocks[0].gate_names() == ["cx", "h"]
        assert "h" in blocks[1].gate_names()

    def test_lone_single_qubit_block(self):
        circuit = QuantumCircuit(3)
        circuit.h(2).rz(0.3, 2).cx(0, 1)
        blocks = collect_two_qubit_blocks(circuit)
        kinds = {block.qubits for block in blocks}
        assert (2,) in kinds
        assert (0, 1) in kinds

    def test_block_instructions_cover_circuit(self):
        circuit = random_template_circuit(4, 40, seed=3)
        blocks = collect_two_qubit_blocks(circuit)
        total = sum(len(block.instructions) for block in blocks)
        assert total == len(circuit)

    def test_dependency_graph_is_acyclic_and_ordered(self):
        import networkx as nx

        circuit = random_template_circuit(4, 30, seed=5)
        blocks = collect_two_qubit_blocks(circuit)
        graph = block_dependency_graph(circuit, blocks)
        assert nx.is_directed_acyclic_graph(graph)
        assert set(graph.nodes) == {block.index for block in blocks}
        for source, destination in graph.edges:
            assert source < destination

    def test_block_as_circuit_local_qubits(self):
        circuit = QuantumCircuit(4)
        circuit.cx(2, 3).rz(0.5, 3)
        block = collect_two_qubit_blocks(circuit)[0]
        local = block.as_circuit()
        assert local.num_qubits == 2
        assert local.instructions[0].qubits == (0, 1)


class TestBasisTranslation:
    @pytest.mark.parametrize(
        "build",
        [
            lambda c: c.cx(0, 1),
            lambda c: c.cy(0, 1),
            lambda c: c.swap(0, 1),
            lambda c: c.iswap(0, 1),
            lambda c: c.cphase(0.7, 0, 1),
            lambda c: c.crx(1.1, 0, 1),
            lambda c: c.crot(math.pi, 0, 1),
        ],
    )
    def test_translations_preserve_unitary(self, build):
        circuit = QuantumCircuit(2)
        build(circuit)
        target = spin_qubit_target(2)
        translated = translate_to_basis(circuit, target)
        assert allclose_up_to_global_phase(
            circuit_unitary(translated), circuit_unitary(circuit), atol=1e-7
        )
        for instruction in translated:
            if len(instruction.qubits) == 2:
                # Foreign gates become CZ; already-native gates (e.g. CROT)
                # are allowed to pass through unchanged.
                assert target.supports(instruction.name)

    def test_whole_circuit_translation(self):
        circuit = random_template_circuit(3, 25, seed=1)
        target = spin_qubit_target(3)
        translated = translate_to_basis(circuit, target)
        assert allclose_up_to_global_phase(
            circuit_unitary(translated), circuit_unitary(circuit), atol=1e-6
        )

    def test_unknown_gate_rejected(self):
        instruction = Instruction(glib.iswap().with_name("mystery"), (0, 1))
        with pytest.raises(KeyError):
            translate_instruction_to_cz(instruction)


class TestScheduling:
    def test_serial_chain_duration(self):
        target = spin_qubit_target(2)
        circuit = QuantumCircuit(2)
        circuit.h(0).cz(0, 1).h(1)
        schedule = asap_schedule(circuit, target)
        assert schedule.total_duration == pytest.approx(30 + 152 + 30)

    def test_parallel_gates_overlap(self):
        target = spin_qubit_target(4)
        circuit = QuantumCircuit(4)
        circuit.cz(0, 1).cz(2, 3)
        schedule = asap_schedule(circuit, target)
        assert schedule.total_duration == pytest.approx(152)
        assert schedule.total_idle_time == pytest.approx(0.0)

    def test_idle_time_accounting(self):
        target = spin_qubit_target(2)
        circuit = QuantumCircuit(2)
        circuit.h(0).h(0).cz(0, 1)
        schedule = asap_schedule(circuit, target)
        # Qubit 1 waits for the two Hadamards on qubit 0.
        assert schedule.idle_time_per_qubit()[1] == pytest.approx(60.0)
        assert schedule.total_idle_time == pytest.approx(60.0)

    def test_idle_windows_match_total(self):
        target = spin_qubit_target(3)
        circuit = QuantumCircuit(3)
        circuit.h(0).cz(0, 1).h(2).cz(1, 2).cz(0, 1)
        schedule = asap_schedule(circuit, target)
        windows_total = sum(duration for _, __, duration in schedule.idle_windows())
        assert windows_total == pytest.approx(schedule.total_idle_time)

    def test_unused_qubits_not_counted_idle(self):
        target = spin_qubit_target(4)
        circuit = QuantumCircuit(4)
        circuit.cz(0, 1)
        schedule = asap_schedule(circuit, target)
        assert 3 not in schedule.idle_time_per_qubit()
        assert 2 not in schedule.idle_time_per_qubit()


class TestCostAnalysis:
    def test_fidelity_product(self):
        target = spin_qubit_target(2)
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1).cz(0, 1)
        cost = analyze_cost(circuit, target)
        assert cost.gate_fidelity_product == pytest.approx(0.999**2)
        assert cost.two_qubit_gate_count == 2

    def test_idle_survival_matches_eq7(self):
        target = spin_qubit_target(2)
        circuit = QuantumCircuit(2)
        circuit.h(0).h(0).cz(0, 1)
        cost = analyze_cost(circuit, target)
        assert cost.idle_survival_probability == pytest.approx(math.exp(-60.0 / 2900.0))

    def test_combined_score(self):
        target = spin_qubit_target(2)
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        cost = analyze_cost(circuit, target)
        assert cost.combined_score == pytest.approx(
            cost.gate_fidelity_product * cost.idle_survival_probability
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_blocks_partition_random_circuits(seed):
    """Block collection partitions every instruction exactly once."""
    circuit = random_template_circuit(4, 30, seed=seed)
    blocks = collect_two_qubit_blocks(circuit)
    assert sum(len(block.instructions) for block in blocks) == len(circuit)
    for block in blocks:
        for instruction in block.instructions:
            assert set(instruction.qubits) <= set(block.qubits)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_basis_translation_preserves_unitary(seed):
    """Direct basis translation never changes the computed unitary."""
    circuit = random_template_circuit(3, 15, seed=seed)
    target = spin_qubit_target(3)
    translated = translate_to_basis(circuit, target)
    assert allclose_up_to_global_phase(
        circuit_unitary(translated), circuit_unitary(circuit), atol=1e-6
    )
