"""The gateway's ``GET /metrics`` quality block end to end."""

import pytest

from repro.golden import quality_summary, reset_quality_state, run_golden
from repro.server import ReproClient, build_server


@pytest.fixture(scope="module")
def server():
    server = build_server(workers=2).start_background()
    yield server
    server.stop(drain=False)


@pytest.fixture(scope="module")
def client(server):
    return ReproClient(server.url, timeout=120.0)


@pytest.fixture(autouse=True)
def _forget_last_run():
    reset_quality_state()
    yield
    reset_quality_state()


def test_metrics_quality_block_reflects_the_last_golden_run(
        client, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_QUALITY_REPORT",
                       str(tmp_path / "unwritten.json"))

    # No golden run in this process, no readable report: degrade cleanly.
    payload = client.metrics()
    assert payload["quality"]["status"] == "unavailable"
    assert "reason" in payload["quality"]

    # A golden run in this process surfaces through the gateway.
    out = str(tmp_path / "BENCH_quality.json")
    baseline_path = str(tmp_path / "baseline.json")
    run_golden(baseline_path=baseline_path, only=["toffoli_n3:direct"],
               rebaseline=True, output=out)
    payload = client.metrics()
    quality = payload["quality"]
    assert quality["status"] == "ok"
    assert quality["source"] == "in-process"
    assert quality["failed"] is False
    assert quality["counts"]["within"] == 1
    assert quality["worst_regression"] is None

    # After a restart (simulated by forgetting), the written report
    # named by REPRO_QUALITY_REPORT backs the same block.
    reset_quality_state()
    monkeypatch.setenv("REPRO_QUALITY_REPORT", out)
    payload = client.metrics()
    quality = payload["quality"]
    assert quality["status"] == "ok"
    assert quality["source"] == out
    assert quality["counts"]["within"] == 1


def test_quality_summary_matches_what_the_gateway_serves(
        client, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_QUALITY_REPORT",
                       str(tmp_path / "unwritten.json"))
    baseline_path = str(tmp_path / "baseline.json")
    run_golden(baseline_path=baseline_path, only=["wstate_n3:direct"],
               rebaseline=True)
    direct = quality_summary()
    served = client.metrics()["quality"]
    assert served == direct
