"""Quality-record extraction: canonical metrics, JSON stability."""

import json
import math

import pytest

import repro
from repro.golden import (
    METRIC_NAMES,
    METRIC_SPECS,
    QUALITY_METRICS,
    QualityRecord,
    extract_quality,
    stable_float,
)
from repro.golden.metrics import MetricSpec, _solver_digest
from repro.hardware import spin_qubit_target
from repro.interop import suite_circuit


@pytest.fixture(scope="module")
def direct_result():
    return repro.compile(
        suite_circuit("toffoli_n3"), spin_qubit_target(3), "direct",
        use_cache=False, merge_single_qubit_gates=True,
    )


class TestExtraction:
    def test_every_gated_metric_is_present(self, direct_result):
        record = extract_quality(direct_result, benchmark="toffoli_n3")
        assert set(record.metrics) == set(METRIC_NAMES)
        assert record.benchmark == "toffoli_n3"
        assert record.technique == "direct"

    def test_metrics_match_the_result(self, direct_result):
        record = extract_quality(direct_result)
        cost = direct_result.cost
        assert record.metrics["gate_count"] == cost.gate_count
        assert record.metrics["two_qubit_gate_count"] == cost.two_qubit_gate_count
        assert record.metrics["depth"] == direct_result.adapted_circuit.depth()
        assert record.metrics["duration"] == stable_float(cost.duration)
        assert (record.metrics["gate_fidelity_product"]
                == stable_float(cost.gate_fidelity_product))
        assert (record.metrics["combined_score"]
                == stable_float(cost.combined_score))

    def test_solver_digest_is_deterministic_counters_only(self):
        digest = _solver_digest({
            "sat_conflicts": 51, "selection": "greedy", "flag": True,
            "seconds": 0.123, "weird": object(),
        })
        assert digest == {"sat_conflicts": 51, "selection": "greedy",
                          "flag": 1}

    def test_record_json_round_trip_is_exact(self, direct_result):
        record = extract_quality(direct_result, benchmark="toffoli_n3")
        payload = json.loads(json.dumps(record.to_dict()))
        back = QualityRecord.from_dict(payload)
        assert back.metrics == record.metrics
        assert back.benchmark == record.benchmark
        assert back.technique == record.technique
        assert back.solver == record.solver

    def test_extraction_is_deterministic_across_compiles(self):
        records = []
        for _ in range(2):
            result = repro.compile(
                suite_circuit("wstate_n3"), spin_qubit_target(3),
                "template_f", use_cache=False,
                merge_single_qubit_gates=True,
            )
            records.append(extract_quality(result, benchmark="wstate_n3"))
        assert records[0].to_dict() == records[1].to_dict()


class TestStableFloat:
    def test_normalizes_to_twelve_significant_digits(self):
        assert stable_float(0.1234567890123456789) == 0.123456789012

    def test_non_finite_pass_through(self):
        assert math.isnan(stable_float(float("nan")))
        assert stable_float(float("inf")) == float("inf")

    def test_idempotent(self):
        value = stable_float(math.pi)
        assert stable_float(value) == value


class TestSpecs:
    def test_directions_are_sane(self):
        assert METRIC_SPECS["gate_count"].direction == "lower"
        assert METRIC_SPECS["gate_fidelity_product"].direction == "higher"
        assert METRIC_SPECS["combined_score"].direction == "higher"

    def test_integer_metrics_have_zero_tolerance(self):
        for spec in QUALITY_METRICS:
            if spec.integer:
                assert spec.abs_tol == 0.0 and spec.rel_tol == 0.0, spec.name

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            MetricSpec("x", "sideways")
