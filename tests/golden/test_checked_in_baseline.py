"""The checked-in golden file: coverage, well-formedness, and the gate.

These tests pin the contract the ISSUE asks of
``benchmarks/golden/baseline.json``: at least 24 benchmarks, every
technique key covered, ``expected_timeout`` annotations only on SMT
cells, and the unmodified tree comparing clean against it.
"""

import os

import pytest

from repro.api import PAPER_TECHNIQUES
from repro.golden import (
    GoldenBaseline,
    default_baseline_path,
    fast_cells,
    run_golden,
)
from repro.interop import suite_names


@pytest.fixture(scope="module")
def baseline():
    path = default_baseline_path()
    if not os.path.exists(path):
        pytest.skip(f"no checked-in golden baseline at {path}")
    return GoldenBaseline.load(path)


class TestCoverage:
    def test_at_least_twenty_four_benchmarks(self, baseline):
        assert len(baseline.benchmarks()) >= 24

    def test_every_technique_key_is_covered(self, baseline):
        assert set(baseline.techniques()) == set(PAPER_TECHNIQUES)

    def test_every_suite_benchmark_has_every_technique_cell(self, baseline):
        for benchmark in suite_names():
            for technique in PAPER_TECHNIQUES:
                assert baseline.get(benchmark, technique) is not None, (
                    f"{benchmark}:{technique} has no golden cell; "
                    "run 'python -m repro.golden --rebaseline --only "
                    f"{benchmark}:{technique}'")

    def test_baseline_names_exist_in_the_suite(self, baseline):
        assert set(baseline.benchmarks()) <= set(suite_names())

    def test_timeout_annotations_only_on_smt_cells(self, baseline):
        for benchmark, technique in baseline.expected_timeout_cells():
            assert technique.startswith("sat_"), (
                f"{benchmark}:{technique} annotated expected_timeout but "
                "is not an SMT technique — cheap techniques never time out")

    def test_fast_subset_cells_are_never_timeout_annotated(self, baseline):
        for benchmark, technique in fast_cells():
            entry = baseline.get(benchmark, technique)
            assert entry is not None and not entry.expected_timeout, (
                f"fast cell {benchmark}:{technique} must stay runnable")

    def test_provenance_is_recorded(self, baseline):
        assert baseline.provenance.get("updated_at")
        assert baseline.provenance.get("tool")

    def test_non_timeout_cells_carry_the_gated_metrics(self, baseline):
        from repro.golden import METRIC_NAMES

        for entry in baseline.entries.values():
            if entry.expected_timeout:
                assert not entry.metrics
            else:
                assert set(entry.metrics) == set(METRIC_NAMES), entry.key


class TestGate:
    def test_one_cheap_cell_compares_within(self, baseline):
        """A quick true positive: the tree still hits its golden number."""
        report = run_golden(baseline_path=default_baseline_path(),
                            only=["toffoli_n3:direct"])
        (verdict,) = report.comparison.verdicts
        assert verdict.status == "within", verdict.to_dict()
        assert report.exit_code == 0

    @pytest.mark.slow
    def test_full_matrix_has_zero_regressions(self):
        """The whole suite × technique matrix against the golden file."""
        path = default_baseline_path()
        if not os.path.exists(path):
            pytest.skip(f"no checked-in golden baseline at {path}")
        report = run_golden(baseline_path=path, full=True)
        failing = [v.to_dict() for v in report.comparison.verdicts
                   if v.failing]
        assert report.exit_code == 0, failing
        assert report.comparison.counts["new"] == 0
