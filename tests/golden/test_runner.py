"""The golden runner: matrix resolution, gating, rebaselining, tracing."""

import json

import pytest

from repro.api import PAPER_TECHNIQUES
from repro.golden import (
    DEFAULT_CELL_TIMEOUT,
    GoldenBaseline,
    GoldenBaselineError,
    fast_cells,
    full_cells,
    golden_options,
    make_timeout_entry,
    quality_summary,
    reset_quality_state,
    resolve_cells,
    run_golden,
)
from repro.golden.__main__ import main as golden_main
from repro.trace import load_events, scoped_tracer, validate_trace

#: Two sub-0.1s cells that exercise two different techniques.
CHEAP_CELLS = ["toffoli_n3:direct", "wstate_n3:template_f"]


@pytest.fixture(autouse=True)
def _forget_last_run():
    reset_quality_state()
    yield
    reset_quality_state()


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    """A tmp golden file seeded from the two cheap cells."""
    path = str(tmp_path_factory.mktemp("golden") / "baseline.json")
    report = run_golden(baseline_path=path, only=CHEAP_CELLS,
                        rebaseline=True, note="test seed")
    return path, report


class TestMatrixResolution:
    def test_fast_subset_covers_all_eight_techniques(self):
        cells = fast_cells()
        assert resolve_cells() == cells
        assert {technique for _, technique in cells} == set(PAPER_TECHNIQUES)
        assert len(cells) == len(set(cells))

    def test_full_matrix_is_suite_times_techniques(self):
        from repro.interop import suite_names

        cells = full_cells()
        assert len(cells) == len(suite_names()) * len(PAPER_TECHNIQUES)
        assert resolve_cells(full=True) == sorted(cells)

    def test_only_wins_over_the_ambient_matrix(self):
        cells = resolve_cells(full=True, only=["rc_adder_n6:sat_p"])
        assert cells == [("rc_adder_n6", "sat_p")]

    def test_axis_overrides(self):
        cells = resolve_cells(benchmarks=["ghz_n5"],
                              techniques=["direct", "kak_cz"])
        assert cells == [("ghz_n5", "direct"), ("ghz_n5", "kak_cz")]
        every = resolve_cells(benchmarks=["ghz_n5"])
        assert {t for _, t in every} == set(PAPER_TECHNIQUES)

    def test_malformed_only_spec(self):
        with pytest.raises(ValueError, match="benchmark:technique"):
            resolve_cells(only=["toffoli_n3"])

    def test_unknown_benchmark_rejected_early(self):
        with pytest.raises(KeyError, match="available"):
            resolve_cells(only=["nope_n3:direct"])
        with pytest.raises(KeyError, match="available"):
            resolve_cells(benchmarks=["nope_n3"])

    def test_golden_options_pin_merging_and_smt_rounds(self):
        assert golden_options("direct") == {"merge_single_qubit_gates": True}
        smt = golden_options("sat_p")
        assert smt["max_improvement_rounds"] == 10
        override = golden_options("direct",
                                  {"merge_single_qubit_gates": False})
        assert override["merge_single_qubit_gates"] is False


class TestGate:
    def test_rebaseline_run_is_all_within(self, seeded):
        _, report = seeded
        assert report.rebaselined
        assert report.exit_code == 0
        assert report.comparison.counts["within"] == len(CHEAP_CELLS)

    def test_round_trip_run_rebaseline_run_is_all_within(self, seeded):
        path, _ = seeded
        report = run_golden(baseline_path=path, only=CHEAP_CELLS)
        assert report.exit_code == 0
        assert report.comparison.counts["within"] == len(CHEAP_CELLS)
        assert not report.comparison.failed

    def test_fresh_cell_reports_new_without_failing(self, seeded):
        path, _ = seeded
        report = run_golden(baseline_path=path, only=["teleport_n3:direct"])
        (verdict,) = report.comparison.verdicts
        assert verdict.status == "new"
        assert report.exit_code == 0

    def test_deliberate_mutation_fails_the_gate(self, seeded):
        """The CI mutation check: disabling 1q-merging must regress."""
        path, _ = seeded
        report = run_golden(baseline_path=path, only=CHEAP_CELLS,
                            extra_options={"merge_single_qubit_gates": False})
        assert report.exit_code == 1
        worst = report.comparison.worst_regression()
        assert worst is not None
        assert worst["metric"] in ("gate_count", "depth", "duration",
                                   "total_idle_time", "gate_fidelity_product",
                                   "combined_score")
        assert "regressed" in report.table()

    def test_compile_error_reports_missing(self, seeded):
        path, _ = seeded
        report = run_golden(baseline_path=path, only=["toffoli_n3:direct"],
                            extra_options={"bogus_option": True})
        (verdict,) = report.comparison.verdicts
        assert verdict.status == "missing"
        assert "TypeError" in verdict.reason
        assert report.exit_code == 1

    def test_missing_baseline_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(GoldenBaselineError, match="rebaseline"):
            run_golden(baseline_path=str(tmp_path / "absent.json"),
                       only=CHEAP_CELLS)


class TestTimeouts:
    def test_unexpected_deadline_reports_missing(self, seeded, tmp_path):
        path = str(tmp_path / "with-sat.json")
        baseline = GoldenBaseline.load(seeded[0])
        baseline.set(make_timeout_entry("toffoli_n3", "sat_f"))
        # Pretend the annotation is a real entry so the deadline is
        # *unexpected*: strip the flag but keep the cell in the matrix.
        baseline.get("toffoli_n3", "sat_f").expected_timeout = False
        baseline.get("toffoli_n3", "sat_f").metrics = {"gate_count": 1.0}
        baseline.save(path)
        report = run_golden(baseline_path=path, only=["toffoli_n3:sat_f"],
                            cell_timeout=0.05)
        (verdict,) = report.comparison.verdicts
        assert verdict.status == "missing"
        assert "deadline" in verdict.reason
        assert report.exit_code == 1

    def test_rebaseline_adopts_deadline_hits_as_annotations(self, tmp_path):
        path = str(tmp_path / "timeouts.json")
        report = run_golden(baseline_path=path, only=["toffoli_n3:sat_f"],
                            cell_timeout=0.05, rebaseline=True,
                            note="too slow here")
        (verdict,) = report.comparison.verdicts
        assert verdict.status == "skipped"
        assert report.exit_code == 0
        baseline = GoldenBaseline.load(path)
        assert baseline.is_expected_timeout("toffoli_n3", "sat_f")
        assert baseline.get("toffoli_n3", "sat_f").note == "too slow here"

        # A later plain run skips the cell without compiling it.
        again = run_golden(baseline_path=path, only=["toffoli_n3:sat_f"])
        (verdict,) = again.comparison.verdicts
        assert verdict.status == "skipped"
        assert again.exit_code == 0
        assert again.elapsed_seconds < 1.0

        # --retry-timeouts with a sane budget replaces the annotation.
        retried = run_golden(baseline_path=path, only=["toffoli_n3:sat_f"],
                             rebaseline=True, retry_timeouts=True,
                             cell_timeout=DEFAULT_CELL_TIMEOUT)
        assert retried.exit_code == 0
        baseline = GoldenBaseline.load(path)
        assert not baseline.is_expected_timeout("toffoli_n3", "sat_f")
        assert baseline.get("toffoli_n3", "sat_f").metrics["gate_count"] > 0


class TestReportAndTrace:
    def test_output_report_and_quality_summary(self, seeded, tmp_path,
                                               monkeypatch):
        path, _ = seeded
        out = str(tmp_path / "BENCH_quality.json")
        report = run_golden(baseline_path=path, only=CHEAP_CELLS, output=out)
        with open(out) as handle:
            payload = json.load(handle)
        assert payload["mode"] == "custom"
        assert payload["failed"] is False
        assert payload["common_options"] == {"merge_single_qubit_gates": True}
        assert len(payload["records"]) == len(CHEAP_CELLS)
        assert payload["counts"]["within"] == len(CHEAP_CELLS)
        assert "golden OK" in report.summary_line()

        # In-process summary first ...
        summary = quality_summary()
        assert summary["status"] == "ok"
        assert summary["source"] == "in-process"
        assert summary["failed"] is False

        # ... then the written report once the process forgets.
        reset_quality_state()
        monkeypatch.setenv("REPRO_QUALITY_REPORT", out)
        summary = quality_summary()
        assert summary["status"] == "ok"
        assert summary["source"] == out
        assert summary["counts"]["within"] == len(CHEAP_CELLS)

    def test_quality_summary_degrades_cleanly(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUALITY_REPORT",
                           str(tmp_path / "never-written.json"))
        summary = quality_summary()
        assert summary["status"] == "unavailable"
        assert "never-written" in summary["reason"]

    def test_golden_events_are_traced_and_schema_valid(self, seeded,
                                                       tmp_path):
        path, _ = seeded
        trace_path = str(tmp_path / "golden.jsonl")
        with scoped_tracer(trace_path):
            run_golden(baseline_path=path, only=CHEAP_CELLS)
        events = load_events(trace_path)
        validate_trace(events)
        assert {e["layer"] for e in events
                if e["name"].startswith("golden.")} == {"golden"}
        names = [e["name"] for e in events]
        assert "golden.run" in names
        cell_events = [e for e in events if e["name"] == "golden.cell"]
        check_events = [e for e in events if e["name"] == "golden.check"]
        assert len(cell_events) == len(CHEAP_CELLS)
        assert len(check_events) == len(CHEAP_CELLS)
        assert all(e["fields"]["status"] == "compiled" for e in cell_events)
        assert all(e["fields"]["regressed_metrics"] == []
                   for e in check_events)


class TestCli:
    def test_rebaseline_then_check_then_mutate(self, tmp_path, capsys):
        path = str(tmp_path / "baseline.json")
        assert golden_main(["--baseline", path, "--rebaseline",
                            "--only", "toffoli_n3:direct",
                            "--note", "cli seed", "--quiet"]) == 0
        assert golden_main(["--baseline", path,
                            "--only", "toffoli_n3:direct"]) == 0
        out = capsys.readouterr().out
        assert "within" in out and "golden OK" in out

        code = golden_main(["--baseline", path, "--only", "toffoli_n3:direct",
                            "--option", "merge_single_qubit_gates=false"])
        out = capsys.readouterr().out
        assert code == 1
        assert "regressed" in out and "worst regression" in out

    def test_list_and_bad_input_exit_codes(self, tmp_path, capsys):
        assert golden_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "toffoli_n3:direct" in out
        assert golden_main(["--baseline", str(tmp_path / "nope.json"),
                            "--only", "toffoli_n3:direct"]) == 2
        assert golden_main(["--only", "garbage"]) == 2
