"""Comparison-engine edge cases and golden-file round-trips."""

import json
import math

import pytest

from repro.golden import (
    FAILING_STATUSES,
    BaselineEntry,
    GoldenBaseline,
    GoldenBaselineError,
    QualityRecord,
    Tolerance,
    compare_metric,
    compare_record,
    compare_run,
    default_baseline_path,
    make_entry,
    make_timeout_entry,
)

BASE_METRICS = {
    "gate_count": 40.0,
    "two_qubit_gate_count": 9.0,
    "depth": 20.0,
    "duration": 1500.0,
    "total_idle_time": 300.0,
    "gate_fidelity_product": 0.97,
    "combined_score": 0.9,
}


def record(benchmark="toffoli_n3", technique="direct", **overrides):
    metrics = dict(BASE_METRICS)
    metrics.update(overrides)
    return QualityRecord(benchmark=benchmark, technique=technique,
                         metrics=metrics)


def entry(benchmark="toffoli_n3", technique="direct", **kwargs):
    kwargs.setdefault("metrics", dict(BASE_METRICS))
    return BaselineEntry(benchmark=benchmark, technique=technique, **kwargs)


class TestCompareMetric:
    def test_lower_is_better_regression(self):
        delta = compare_metric("gate_count", 40.0, 43.0)
        assert delta.status == "regressed"
        assert delta.worse_by == 3.0
        assert delta.rel_worse_by == pytest.approx(3.0 / 40.0)

    def test_lower_is_better_improvement(self):
        assert compare_metric("gate_count", 40.0, 37.0).status == "improved"

    def test_higher_is_better_direction_flips_the_sign(self):
        worse = compare_metric("gate_fidelity_product", 0.97, 0.90)
        better = compare_metric("gate_fidelity_product", 0.90, 0.97)
        assert worse.status == "regressed" and worse.worse_by > 0
        assert better.status == "improved" and better.worse_by < 0

    def test_tolerance_boundary_exactly_met_is_within(self):
        """The inclusive boundary: worsening == slack passes."""
        tolerance = Tolerance(abs=5.0)
        at = compare_metric("duration", 100.0, 105.0, tolerance)
        past = compare_metric("duration", 100.0, 105.0000001, tolerance)
        assert at.status == "within"
        assert past.status == "regressed"

    def test_relative_tolerance_boundary(self):
        tolerance = Tolerance(rel=0.1)
        assert compare_metric("duration", 200.0, 220.0,
                              tolerance).status == "within"
        assert compare_metric("duration", 200.0, 220.01,
                              tolerance).status == "regressed"

    def test_slack_is_max_of_abs_and_rel(self):
        assert Tolerance(abs=2.0, rel=0.1).slack(100.0) == 10.0
        assert Tolerance(abs=2.0, rel=0.1).slack(5.0) == 2.0

    def test_nan_actual_is_a_regression(self):
        delta = compare_metric("duration", 100.0, float("nan"))
        assert delta.status == "regressed"
        assert "NaN" in delta.reason

    def test_nan_baseline_is_a_regression(self):
        assert compare_metric("duration", float("nan"),
                              100.0).status == "regressed"

    def test_worse_direction_infinity_is_a_regression(self):
        delta = compare_metric("duration", 100.0, float("inf"))
        assert delta.status == "regressed"
        assert delta.worse_by == float("inf")

    def test_good_direction_against_infinite_baseline_is_improved(self):
        delta = compare_metric("duration", float("inf"), 100.0)
        assert delta.status == "improved"

    def test_both_infinite_is_within(self):
        assert compare_metric("duration", float("inf"),
                              float("inf")).status == "within"

    def test_zero_baseline_relative_delta_is_well_defined(self):
        delta = compare_metric("total_idle_time", 0.0, 1.0)
        assert delta.status == "regressed"
        assert delta.rel_worse_by == float("inf")
        assert compare_metric("total_idle_time", 0.0, 0.0).rel_worse_by == 0.0

    def test_integer_metrics_gate_on_any_worsening(self):
        assert compare_metric("depth", 20.0, 21.0).status == "regressed"
        assert compare_metric("depth", 20.0, 20.0).status == "within"


class TestCompareRecord:
    def test_identical_record_is_within(self):
        verdict = compare_record(record(), entry())
        assert verdict.status == "within"
        assert not verdict.failing
        assert verdict.regressed_metrics() == []

    def test_one_regressed_metric_fails_the_cell(self):
        verdict = compare_record(record(gate_count=41.0), entry())
        assert verdict.status == "regressed"
        assert verdict.failing
        assert [d.metric for d in verdict.regressed_metrics()] == ["gate_count"]

    def test_mixed_improved_and_regressed_is_regressed(self):
        verdict = compare_record(
            record(gate_count=30.0, depth=25.0), entry())
        assert verdict.status == "regressed"

    def test_pure_improvement_is_improved(self):
        verdict = compare_record(record(gate_count=30.0), entry())
        assert verdict.status == "improved"
        assert not verdict.failing

    def test_metric_missing_from_the_run_regresses(self):
        sparse = record()
        del sparse.metrics["depth"]
        verdict = compare_record(sparse, entry())
        assert verdict.status == "regressed"
        (delta,) = verdict.regressed_metrics()
        assert delta.metric == "depth"
        assert "missing" in delta.reason

    def test_metric_missing_from_the_baseline_is_not_gated(self):
        old = entry(metrics={"gate_count": 40.0})
        verdict = compare_record(record(depth=999.0), old)
        assert verdict.status == "within"
        assert [d.metric for d in verdict.deltas] == ["gate_count"]

    def test_per_metric_tolerance_override(self):
        loose = entry(tolerances={"gate_count": {"abs": 5.0}})
        assert compare_record(record(gate_count=44.0),
                              loose).status == "within"
        assert compare_record(record(gate_count=46.0),
                              loose).status == "regressed"


class TestCompareRun:
    def test_new_benchmark_not_in_baseline(self):
        baseline = GoldenBaseline()
        baseline.set(entry())
        result = compare_run([record(), record(benchmark="brand_new_n3")],
                             baseline,
                             expected=[("toffoli_n3", "direct"),
                                       ("brand_new_n3", "direct")])
        by_key = {v.key: v for v in result.verdicts}
        assert by_key["brand_new_n3:direct"].status == "new"
        assert "rebaseline" in by_key["brand_new_n3:direct"].reason
        assert not result.failed

    def test_missing_technique_reports_the_cell_error(self):
        baseline = GoldenBaseline()
        baseline.set(entry())
        baseline.set(entry(technique="sat_p"))
        result = compare_run(
            [record()], baseline,
            expected=[("toffoli_n3", "direct"), ("toffoli_n3", "sat_p")],
            errors={("toffoli_n3", "sat_p"): "deadline exceeded after 1s"})
        by_key = {v.key: v for v in result.verdicts}
        assert by_key["toffoli_n3:sat_p"].status == "missing"
        assert "deadline" in by_key["toffoli_n3:sat_p"].reason
        assert result.failed

    def test_expected_timeout_cell_is_skipped_not_failed(self):
        baseline = GoldenBaseline()
        baseline.set(make_timeout_entry("rc_adder_n6", "sat_p", note="slow"))
        result = compare_run([], baseline,
                             expected=[("rc_adder_n6", "sat_p")])
        (verdict,) = result.verdicts
        assert verdict.status == "skipped"
        assert not result.failed

    def test_completed_expected_timeout_cell_suggests_rebaseline(self):
        baseline = GoldenBaseline()
        baseline.set(make_timeout_entry("toffoli_n3", "sat_p"))
        result = compare_run([record(technique="sat_p")], baseline,
                             expected=[("toffoli_n3", "sat_p")])
        (verdict,) = result.verdicts
        assert verdict.status == "improved"
        assert "rebaseline" in verdict.reason

    def test_verdicts_are_sorted_and_counted(self):
        baseline = GoldenBaseline()
        baseline.set(entry())
        baseline.set(entry(benchmark="bv_n5"))
        result = compare_run([record(), record(benchmark="bv_n5")], baseline,
                             expected=[("toffoli_n3", "direct"),
                                       ("bv_n5", "direct")])
        assert [v.benchmark for v in result.verdicts] == ["bv_n5", "toffoli_n3"]
        assert result.counts["within"] == 2
        assert result.counts["regressed"] == 0

    def test_worst_regression_ranks_nan_first(self):
        baseline = GoldenBaseline()
        baseline.set(entry())
        baseline.set(entry(benchmark="bv_n5"))
        result = compare_run(
            [record(gate_count=80.0),
             record(benchmark="bv_n5", duration=float("nan"))],
            baseline,
            expected=[("toffoli_n3", "direct"), ("bv_n5", "direct")])
        worst = result.worst_regression()
        assert worst["benchmark"] == "bv_n5"
        assert worst["metric"] == "duration"
        assert worst["actual"] == "nan"  # JSON-safe rendering

    def test_failing_statuses_are_exactly_regressed_and_missing(self):
        assert set(FAILING_STATUSES) == {"regressed", "missing"}


class TestGoldenFile:
    def test_save_load_round_trip_is_exact(self, tmp_path):
        baseline = GoldenBaseline(provenance={"note": "test"})
        baseline.set(make_entry(record(), note="seed"))
        baseline.set(make_timeout_entry("rc_adder_n6", "sat_f"))
        path = str(tmp_path / "golden.json")
        baseline.save(path)
        back = GoldenBaseline.load(path)
        assert back.to_dict() == baseline.to_dict()
        assert back.is_expected_timeout("rc_adder_n6", "sat_f")
        assert back.get("toffoli_n3", "direct").metrics == \
            baseline.get("toffoli_n3", "direct").metrics

    def test_rebaseline_round_trip_compares_within(self):
        """Adopting a record then comparing the same record: all-within."""
        fresh = record(duration=1234.56789012345678,
                       gate_fidelity_product=0.9712345678901234567)
        adopted = make_entry(fresh)
        assert compare_record(fresh, adopted).status == "within"
        # ... and survives a JSON round-trip of the golden file.
        reloaded = BaselineEntry.from_dict(
            json.loads(json.dumps(adopted.to_dict())))
        assert compare_record(fresh, reloaded).status == "within"

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(GoldenBaselineError, match="rebaseline"):
            GoldenBaseline.load(str(tmp_path / "nope.json"))

    def test_invalid_json_is_a_clean_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GoldenBaselineError, match="not valid JSON"):
            GoldenBaseline.load(str(path))

    def test_cell_key_mismatch_is_rejected(self):
        payload = {"cells": {"wrong:key": entry().to_dict()}}
        with pytest.raises(GoldenBaselineError, match="disagrees"):
            GoldenBaseline.from_dict(payload)

    def test_env_var_overrides_the_default_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_GOLDEN_BASELINE", "/tmp/elsewhere.json")
        assert default_baseline_path() == "/tmp/elsewhere.json"

    def test_timeout_cells_listed(self):
        baseline = GoldenBaseline()
        baseline.set(make_timeout_entry("qft_n8", "sat_p"))
        baseline.set(entry())
        assert baseline.expected_timeout_cells() == [("qft_n8", "sat_p")]

    def test_nan_metric_survives_report_serialization(self):
        delta = compare_metric("duration", 100.0, float("nan"))
        payload = json.dumps(delta.to_dict())  # must not raise
        assert "nan" in payload
        assert math.isnan(delta.worse_by)
