"""Prometheus text-format conformance: render, scrape, validate, merge.

The in-repo scraper (:func:`parse_prometheus` / :func:`validate_prometheus`)
is the conformance oracle both here and in CI's telemetry-smoke job, so
these tests also pin the scraper's own behaviour (escaping round-trips,
histogram invariant enforcement).
"""

import pytest

from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    PrometheusParseError,
    merge_prometheus,
    parse_prometheus,
    render_prometheus,
    sanitize_label_name,
    sanitize_metric_name,
    validate_prometheus,
)
from repro.telemetry.registry import (
    MetricRegistry,
    disable_telemetry,
    enable_telemetry,
    telemetry_enabled,
)


@pytest.fixture(autouse=True)
def _enabled():
    was_enabled = telemetry_enabled()
    enable_telemetry()
    yield
    if not was_enabled:
        disable_telemetry()


def _document():
    registry = MetricRegistry()
    requests = registry.counter("repro_http_requests_total",
                                "Requests served.", ("route",))
    requests.labels("GET /healthz").inc(3)
    requests.labels('weird "route"\nname\\x').inc()
    gauge = registry.gauge("repro_queue_depth", "Queue depth.")
    gauge.set(7)
    latency = registry.histogram("repro_latency_seconds", "Latency.",
                                 ("route",), buckets=(0.1, 1.0))
    child = latency.labels("GET /healthz")
    child.observe(0.05)
    child.observe(0.5)
    child.observe(30.0)
    return render_prometheus(registry.collect())


class TestRender:
    def test_content_type_is_the_004_text_format(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE

    def test_help_and_type_precede_samples(self):
        lines = _document().splitlines()
        type_at = lines.index("# TYPE repro_http_requests_total counter")
        help_at = lines.index(
            "# HELP repro_http_requests_total Requests served.")
        first_sample = next(i for i, line in enumerate(lines)
                            if line.startswith("repro_http_requests_total{"))
        assert help_at < type_at < first_sample

    def test_histogram_buckets_cumulative_with_inf_sum_count(self):
        document = _document()
        families = validate_prometheus(document)  # enforces the invariants
        histogram = families["repro_latency_seconds"]
        values = {sample_name: value
                  for sample_name, labels, value in histogram.samples
                  if labels.get("le") in (None, "+Inf")}
        assert values["repro_latency_seconds_count"] == 3
        # +Inf bucket equals _count; _sum carries the raw total.
        inf_bucket = [value for sample_name, labels, value in histogram.samples
                      if labels.get("le") == "+Inf"]
        assert inf_bucket == [3.0]
        total = [value for sample_name, _labels, value in histogram.samples
                 if sample_name == "repro_latency_seconds_sum"]
        assert total[0] == pytest.approx(30.55)

    def test_label_escaping_round_trips(self):
        document = _document()
        families = validate_prometheus(document)
        routes = {labels["route"]
                  for _name, labels, _value in
                  families["repro_http_requests_total"].samples}
        assert 'weird "route"\nname\\x' in routes

    def test_extra_labels_land_on_every_sample(self):
        registry = MetricRegistry()
        registry.counter("repro_total", "t").inc()
        document = render_prometheus(registry.collect(),
                                     extra_labels={"shard": "s1"})
        families = parse_prometheus(document)
        assert families["repro_total"].samples[0][1] == {"shard": "s1"}

    def test_empty_families_are_skipped(self):
        registry = MetricRegistry()
        registry.counter("repro_labelled_total", "t", ("route",))  # no children
        assert "repro_labelled_total" not in render_prometheus(registry.collect())


class TestSanitization:
    @pytest.mark.parametrize("raw,expected", [
        ("repro_ok_total", "repro_ok_total"),
        ("has space", "has_space"),
        ("1starts_with_digit", "_1starts_with_digit"),
        ("dots.and-dashes", "dots_and_dashes"),
        ("", "_"),
    ])
    def test_metric_names(self, raw, expected):
        assert sanitize_metric_name(raw) == expected

    @pytest.mark.parametrize("raw,expected", [
        ("route", "route"),
        ("has-dash", "has_dash"),
        ("9lives", "_9lives"),
        ("__reserved", "label__reserved"),
    ])
    def test_label_names(self, raw, expected):
        assert sanitize_label_name(raw) == expected


class TestScraper:
    def test_rejects_malformed_sample_line(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("this is not a sample\n")

    def test_rejects_type_after_samples(self):
        bad = "x_total 1\n# TYPE x_total counter\n"
        with pytest.raises(PrometheusParseError):
            parse_prometheus(bad)

    def test_rejects_noncumulative_histogram(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'      # decreasing: not cumulative
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(PrometheusParseError, match="not cumulative"):
            validate_prometheus(bad)

    def test_rejects_inf_bucket_count_mismatch(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 4\n"               # != +Inf bucket
        )
        with pytest.raises(PrometheusParseError, match=r"\+Inf bucket"):
            validate_prometheus(bad)

    def test_rejects_missing_sum_or_count(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
        )
        with pytest.raises(PrometheusParseError, match="_sum"):
            validate_prometheus(bad)

    def test_rejects_negative_counter(self):
        bad = "# TYPE x_total counter\nx_total -1\n"
        with pytest.raises(PrometheusParseError, match="negative"):
            validate_prometheus(bad)

    def test_own_document_round_trips(self):
        document = _document()
        families = validate_prometheus(document)
        assert set(families) == {"repro_http_requests_total",
                                 "repro_queue_depth",
                                 "repro_latency_seconds"}
        assert families["repro_latency_seconds"].kind == "histogram"


class TestMerge:
    def _shard_document(self, shard: str, count: int) -> str:
        registry = MetricRegistry()
        registry.counter("repro_http_requests_total", "Requests.",
                         ("route",)).labels("GET /metrics").inc(count)
        registry.histogram("repro_latency_seconds", "Latency.",
                           ("route",)).labels("GET /metrics").observe(0.01)
        return render_prometheus(registry.collect(),
                                 extra_labels={"shard": shard})

    def test_merged_document_is_conformant_with_one_type_per_family(self):
        merged = merge_prometheus([self._shard_document("s0", 2),
                                   self._shard_document("s1", 5)])
        families = validate_prometheus(merged)
        assert merged.count("# TYPE repro_http_requests_total counter") == 1
        shards = {labels["shard"] for _n, labels, _v in
                  families["repro_http_requests_total"].samples}
        assert shards == {"s0", "s1"}
        # Both shards' histogram series survive, disambiguated by label.
        count_series = [
            (labels["shard"], value)
            for name, labels, value in families["repro_latency_seconds"].samples
            if name == "repro_latency_seconds_count"
        ]
        assert sorted(count_series) == [("s0", 1.0), ("s1", 1.0)]

    def test_unparsable_shard_document_is_skipped(self):
        merged = merge_prometheus([self._shard_document("s0", 1),
                                   "total garbage {{{\n"])
        families = validate_prometheus(merged)
        assert {labels["shard"] for _n, labels, _v in
                families["repro_http_requests_total"].samples} == {"s0"}
