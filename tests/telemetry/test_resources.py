"""Resource sampler: probes, gauge refresh, thread lifecycle."""

import threading

import pytest

from repro.telemetry.instruments import PROCESS_CPU, PROCESS_RSS
from repro.telemetry.registry import (
    REGISTRY,
    disable_telemetry,
    enable_telemetry,
    telemetry_enabled,
)
from repro.telemetry.resources import (
    ResourceSampler,
    resource_usage,
    sample_resources,
    start_resource_sampler,
    stop_resource_sampler,
)


@pytest.fixture(autouse=True)
def _enabled():
    was_enabled = telemetry_enabled()
    enable_telemetry()
    yield
    stop_resource_sampler()
    if not was_enabled:
        disable_telemetry()


def test_resource_usage_reports_positive_cpu_and_rss():
    cpu, peak_rss = resource_usage()
    assert cpu > 0.0
    assert peak_rss > 1024 * 1024  # a running interpreter is >1 MiB


def test_sample_resources_refreshes_process_gauges():
    sample_resources()
    assert PROCESS_RSS.value > 0.0
    assert PROCESS_CPU.value > 0.0


def test_sample_resources_is_a_noop_when_disabled():
    sample_resources()
    cpu_before = PROCESS_CPU.value
    disable_telemetry()
    try:
        for _ in range(50_000):
            pass  # burn a little CPU so a live sample would move the total
        sample_resources()
    finally:
        enable_telemetry()
    assert PROCESS_CPU.value == cpu_before


def test_registry_scrape_pulls_fresh_numbers_between_ticks():
    # The "process_resources" collector keys every collect() to a fresh
    # sample, so scrapes never depend on sampler timing.
    assert REGISTRY.get_collector("process_resources") is sample_resources
    REGISTRY.collect()
    assert PROCESS_RSS.value > 0.0


def test_sampler_singleton_and_idempotent_start():
    first = start_resource_sampler(interval=60.0)
    second = start_resource_sampler(interval=60.0)
    assert first is second
    thread_names = {thread.name for thread in threading.enumerate()}
    assert "repro-telemetry-resources" in thread_names
    stop_resource_sampler()
    thread_names = {thread.name for thread in threading.enumerate()}
    assert "repro-telemetry-resources" not in thread_names


def test_sampler_start_stop_start_recovers():
    sampler = ResourceSampler(interval=60.0)
    sampler.start()
    sampler.stop()
    sampler.start()
    assert sampler._thread is not None and sampler._thread.is_alive()
    sampler.stop()
