"""Dashboard rendering: pure frames from gateway and shard-envelope docs."""

from repro.telemetry.dashboard import render_dashboard


def _gateway_doc():
    return {
        "server": {"version": "1.0", "uptime_seconds": 12.5, "jobs_tracked": 3},
        "service": {
            "workers": 4, "busy_workers": 2, "queue_depth": 1,
            "worker_utilization": 0.5, "submitted": 10, "deduplicated": 2,
            "completed": 7, "failed": 1, "cancelled": 0, "worker_crashes": 0,
            "l1_hit_rate": 0.25,
            "l2": {"total_bytes": 2048, "entries": 4},
            "l2_hit_rate": 0.5,
        },
        "requests": {
            "POST /compile": {
                "count": 8, "server_errors": 1, "client_errors": 0,
                "windows": {"5m": {"count": 8, "p95_ms": 120.5}},
            },
            "GET /healthz": {
                "count": 2, "server_errors": 0, "client_errors": 0,
                "windows": {"5m": {"count": 2, "p95_ms": 0.4}},
            },
        },
        "telemetry": [
            {
                "name": "repro_http_requests_total",
                "kind": "counter",
                "samples": [
                    {"labels": {"route": "POST /compile"}, "value": 8,
                     "rates": {"1m": 0.5, "5m": 0.1, "15m": 0.05}},
                ],
            },
            {
                "name": "repro_solver_events_total",
                "kind": "counter",
                "samples": [
                    {"labels": {"event": "conflicts"}, "value": 4096,
                     "rates": {"1m": 2048.0}},
                    {"labels": {"event": "propagations"}, "value": 100000,
                     "rates": {"1m": 50000.0}},
                ],
            },
            {
                "name": "repro_compile_duration_seconds",
                "kind": "histogram",
                "samples": [
                    {"labels": {"technique": "sat_p"}, "count": 6,
                     "windows": {"5m": {"count": 6, "p95": 0.8}}},
                ],
            },
            {
                "name": "repro_process_resident_memory_bytes",
                "kind": "gauge",
                "samples": [{"labels": {}, "value": 64 * 1024 * 1024}],
            },
            {
                "name": "repro_process_cpu_seconds_total",
                "kind": "counter",
                "samples": [{"labels": {}, "value": 3.5}],
            },
        ],
    }


def test_gateway_frame_carries_every_section():
    frame = render_dashboard(_gateway_doc())
    assert frame.startswith("repro telemetry\n")
    assert "workers 2/4 busy" in frame
    assert "L1 hit  25.0%" in frame
    assert "L2 hit  50.0%" in frame
    assert "POST /compile" in frame
    assert "p95(5m)   120.50 ms" in frame
    assert "conflicts   2048.0/s" in frame
    assert "sat_p" in frame
    assert "rss 64.0 MiB" in frame
    assert "cpu 3.5s" in frame


def test_shard_envelope_renders_one_section_per_shard():
    doc = {
        "shards": 2,
        "aggregate": {"queue_depth": 3, "busy_workers": 2, "workers": 8,
                      "completed": 11},
        "per_shard": {"s0": _gateway_doc(), "s1": _gateway_doc()},
    }
    frame = render_dashboard(doc, title="cluster")
    assert frame.startswith("cluster\n")
    assert "2 shards" in frame
    assert "shard s0" in frame and "shard s1" in frame
    assert frame.index("shard s0") < frame.index("shard s1")


def test_sparse_document_renders_without_crashing():
    # A freshly booted server may not have served anything yet.
    frame = render_dashboard({"server": {}, "service": {}, "requests": {},
                              "telemetry": []})
    assert "workers 0/0 busy" in frame
    assert frame.endswith("\n")
