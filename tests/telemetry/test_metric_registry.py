"""Unit tests for the process-wide metric registry.

The window ring is driven with a fake clock (patching ``registry._now``)
so the 1/5/15-minute behaviour is deterministic: windowed stats decay
after idle time while lifetime counters stay monotone — the exact
property the lifetime-percentile fix rides on.
"""

import threading

import pytest

from repro.telemetry import registry as registry_module
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricRegistry,
    REGISTRY,
    WINDOWS,
    _quantile_from_buckets,
    disable_telemetry,
    enable_telemetry,
    telemetry_enabled,
)


@pytest.fixture(autouse=True)
def _enabled():
    was_enabled = telemetry_enabled()
    enable_telemetry()
    yield
    if not was_enabled:
        disable_telemetry()


@pytest.fixture()
def clock(monkeypatch):
    state = {"now": 1000.0}
    monkeypatch.setattr(registry_module, "_now", lambda: state["now"])
    return state


@pytest.fixture()
def registry():
    return MetricRegistry()


class TestCounter:
    def test_inc_and_lifetime_value(self, registry):
        counter = registry.counter("t_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("t_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_disabled_hook_is_a_noop(self, registry):
        counter = registry.counter("t_total", "help")
        disable_telemetry()
        try:
            counter.inc(10)
        finally:
            enable_telemetry()
        assert counter.value == 0.0

    def test_windowed_rates_decay_while_lifetime_is_monotone(
            self, registry, clock):
        counter = registry.counter("t_total", "help")
        counter.inc(60)
        assert counter.rates()["1m"] == pytest.approx(1.0)
        before = counter.value
        clock["now"] += 2 * WINDOWS["15m"]  # idle well past every window
        assert counter.rates()["1m"] == 0.0
        assert counter.rates()["15m"] == 0.0
        assert counter.value == before  # lifetime never decays

    def test_set_total_mirrors_and_windows_the_delta(self, registry, clock):
        counter = registry.counter("t_total", "help")
        counter.set_total(100)
        counter.set_total(160)
        assert counter.value == 160.0
        # Only the observed delta lands in the ring, never the base.
        assert counter.rates()["1m"] == pytest.approx(160 / 60.0)

    def test_set_total_backwards_resets_without_negative_rate(
            self, registry, clock):
        counter = registry.counter("t_total", "help")
        counter.set_total(100)
        counter.set_total(40)  # source restarted
        assert counter.value == 40.0
        assert counter.rates()["1m"] >= 0.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("t_gauge", "help")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6.0


class TestHistogram:
    def test_bucket_assignment_le_semantics(self, registry):
        histogram = registry.histogram("t_seconds", "help",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.1)   # == bound -> first bucket (le is <=)
        histogram.observe(0.5)
        histogram.observe(9.0)   # overflow
        snapshot = histogram.snapshot()["samples"][0]
        assert snapshot["buckets"] == [[0.1, 1], [1.0, 2]]
        assert snapshot["count"] == 3

    def test_window_percentiles_change_after_idle(self, registry, clock):
        histogram = registry.histogram("t_seconds", "help",
                                       buckets=DEFAULT_BUCKETS)
        for _ in range(100):
            histogram.observe(0.2)
        busy = histogram.window_stats("1m")
        assert busy["count"] == 100
        assert 0.1 <= busy["p95"] <= 0.25
        clock["now"] += 2 * WINDOWS["1m"]
        idle = histogram.window_stats("1m")
        assert idle["count"] == 0
        assert idle["p95"] == 0.0
        # Lifetime histogram still remembers everything.
        assert histogram.snapshot()["samples"][0]["count"] == 100

    def test_slot_reuse_after_a_full_ring_lap(self, registry, clock):
        histogram = registry.histogram("t_seconds", "help")
        histogram.observe(0.01)
        clock["now"] += 2 * WINDOWS["15m"]  # lap the ring twice
        histogram.observe(0.01)
        assert histogram.window_stats("15m")["count"] == 1


class TestQuantileInterpolation:
    def test_linear_within_bucket(self):
        # 100 observations all in (0.1, 0.2]: p50 sits mid-bucket.
        bounds = (0.1, 0.2, 0.4)
        counts = (0, 100, 0, 0)
        assert _quantile_from_buckets(bounds, counts, 100, 0.50) == \
            pytest.approx(0.15)

    def test_overflow_clamps_to_last_finite_bound(self):
        bounds = (0.1, 0.2)
        counts = (0, 0, 10)  # everything beyond the last bound
        assert _quantile_from_buckets(bounds, counts, 10, 0.95) == 0.2

    def test_empty_is_zero(self):
        assert _quantile_from_buckets((1.0,), (0, 0), 0, 0.5) == 0.0


class TestFamilies:
    def test_labelled_children_are_distinct(self, registry):
        family = registry.counter("t_total", "help", ("route",))
        family.labels("a").inc()
        family.labels("a").inc()
        family.labels("b").inc()
        by_label = {
            sample["labels"]["route"]: sample["value"]
            for sample in family.snapshot()["samples"]
        }
        assert by_label == {"a": 2.0, "b": 1.0}

    def test_labelless_family_proxies_child_api(self, registry):
        gauge = registry.gauge("t_gauge", "help")
        gauge.set(3)
        assert gauge.value == 3.0

    def test_labelled_family_rejects_bare_use(self, registry):
        family = registry.counter("t_total", "help", ("route",))
        with pytest.raises(ValueError):
            family.inc()

    def test_reregistration_is_idempotent_but_conflicts_raise(self, registry):
        first = registry.counter("t_total", "help", ("route",))
        again = registry.counter("t_total", "help", ("route",))
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("t_total", "help")

    def test_concurrent_increments_are_not_lost(self, registry):
        counter = registry.counter("t_total", "help")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestCollectors:
    def test_collectors_run_at_collect_and_replace_by_key(self, registry):
        gauge = registry.gauge("t_gauge", "help")
        registry.register_collector("k", lambda: gauge.set(1))
        registry.register_collector("k", lambda: gauge.set(2))  # replaces
        registry.collect()
        assert gauge.value == 2.0

    def test_broken_collector_does_not_break_the_scrape(self, registry):
        def boom():
            raise RuntimeError("collector bug")

        registry.register_collector("bad", boom)
        registry.counter("t_total", "help").inc()
        snapshots = registry.collect()  # must not raise
        assert any(s["name"] == "t_total" for s in snapshots)

    def test_unregister_and_get(self, registry):
        fn = lambda: None  # noqa: E731
        registry.register_collector("k", fn)
        assert registry.get_collector("k") is fn
        registry.unregister_collector("k")
        assert registry.get_collector("k") is None


class TestResetHygiene:
    def test_reset_values_zeroes_children_but_keeps_families(self, registry):
        counter = registry.counter("t_total", "help")
        counter.inc(7)
        registry.reset_values()
        assert counter.value == 0.0
        assert registry.get("t_total") is counter or \
            registry.get("t_total").name == "t_total"

    def test_global_registry_has_the_instrument_families(self):
        import repro.telemetry.instruments  # noqa: F401 - registers families
        assert REGISTRY.get("repro_http_requests_total") is not None
        assert REGISTRY.get("repro_solver_events_total") is not None
