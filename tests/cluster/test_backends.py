"""Store backends: spec parsing, peer discovery, HTTP peer fetch, adoption."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

import repro
from repro.api import cache_key, clear_compilation_cache
from repro.cluster.backends import (
    PEERS_FILE,
    ReplicatedStoreBackend,
    StoreBackend,
    _parse_spec,
    resolve_store_backend,
    write_peers_file,
)
from repro.hardware import spin_qubit_target
from repro.service import PersistentResultStore
from repro.service.store import _entry_digest


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


def _probe():
    circuit = repro.QuantumCircuit(2, name="backend_probe")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


def _compiled():
    circuit = _probe()
    target = spin_qubit_target(2)
    result = repro.compile(circuit, target, "direct")
    return cache_key(circuit, target, "direct", {}), result


class TestSpecParsing:
    def test_bare_path_is_local_dir(self, tmp_path):
        backend = resolve_store_backend(str(tmp_path / "s"))
        assert isinstance(backend, PersistentResultStore)
        assert backend.backend == "local_dir"

    def test_dir_scheme(self, tmp_path):
        backend = resolve_store_backend(f"dir:{tmp_path / 's'}")
        assert isinstance(backend, PersistentResultStore)

    def test_replicated_scheme_with_static_peers(self, tmp_path):
        backend = resolve_store_backend(
            f"replicated:{tmp_path / 's'}"
            "?peers=http://a:1,http://b:2&timeout=0.5")
        assert isinstance(backend, ReplicatedStoreBackend)
        assert backend.peers() == ["http://a:1", "http://b:2"]
        assert backend.peer_timeout == 0.5

    def test_parse_spec_shapes(self):
        assert _parse_spec("dir:/x") == ("dir", "/x", {})
        scheme, path, query = _parse_spec("replicated:/x?peers=u1,u2")
        assert (scheme, path) == ("replicated", "/x")
        assert query == {"peers": ["u1,u2"]}
        assert _parse_spec("/plain/path")[0] == "dir"

    def test_none_and_objects_pass_through(self, tmp_path):
        assert resolve_store_backend(None) is None
        store = PersistentResultStore(str(tmp_path / "s"))
        assert resolve_store_backend(store) is store

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            resolve_store_backend("dir:")
        with pytest.raises(ValueError):
            resolve_store_backend("replicated:/x?timeout=soon")
        with pytest.raises(TypeError):
            resolve_store_backend(42)

    def test_both_backends_are_store_backends(self, tmp_path):
        assert isinstance(PersistentResultStore(str(tmp_path / "a")),
                          StoreBackend)
        assert isinstance(ReplicatedStoreBackend(str(tmp_path / "b")),
                          StoreBackend)


class TestPeerDiscovery:
    def test_peers_file_round_trip_excludes_own_node(self, tmp_path):
        root = str(tmp_path)
        write_peers_file(root, {"s0": "http://h:1", "s1": "http://h:2"})
        backend = ReplicatedStoreBackend(root, node="s0")
        assert backend.peers() == ["http://h:2"]

    def test_missing_peers_file_means_no_peers(self, tmp_path):
        backend = ReplicatedStoreBackend(str(tmp_path), node="s0")
        assert backend.peers() == []

    def test_peers_file_is_reread_on_mtime_change(self, tmp_path):
        import os

        root = str(tmp_path)
        path = write_peers_file(root, {"s1": "http://h:2"})
        backend = ReplicatedStoreBackend(root, node="s0")
        assert backend.peers() == ["http://h:2"]
        write_peers_file(root, {"s1": "http://h:2", "s2": "http://h:3"})
        # Guarantee an mtime step even on coarse filesystem clocks.
        os.utime(path, (os.stat(path).st_atime,
                        os.stat(path).st_mtime + 2))
        assert backend.peers() == ["http://h:2", "http://h:3"]

    def test_corrupt_peers_file_is_tolerated(self, tmp_path):
        (tmp_path / PEERS_FILE).write_text("{not json")
        backend = ReplicatedStoreBackend(str(tmp_path), node="s0")
        assert backend.peers() == []

    def test_statistics_with_a_peers_file_does_not_deadlock(self, tmp_path):
        # Regression: statistics() once called peers() while holding the
        # (non-reentrant) counter lock peers() also takes.
        root = str(tmp_path)
        write_peers_file(root, {"s0": "http://h:1", "s1": "http://h:2"})
        backend = ReplicatedStoreBackend(root, node="s0")
        stats = backend.statistics()
        assert stats["peers"] == 1
        assert stats["backend"] == "replicated"

    def test_node_scopes_the_local_tier(self, tmp_path):
        key, result = _compiled()
        a = ReplicatedStoreBackend(str(tmp_path), node="s0", peers=[])
        b = ReplicatedStoreBackend(str(tmp_path), node="s1", peers=[])
        a.put(key, result)
        assert a.get(key) is not None
        assert b.get(key) is None  # Private tiers, no peers configured.


class _PeerHandler(BaseHTTPRequestHandler):
    """Serves one store's entries the way the gateway's /internal route does."""

    store = None
    requests = []

    def do_GET(self):  # noqa: N802 - http.server API
        type(self).requests.append(self.path)
        digest = self.path.rsplit("/", 1)[-1]
        document = self.store.read_raw(digest)
        if document is None:
            self.send_response(404)
            self.end_headers()
            return
        raw = document.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def log_message(self, *args):  # noqa: D102 - silence
        pass


@pytest.fixture()
def peer_server(tmp_path):
    store = PersistentResultStore(str(tmp_path / "peer-tier"))
    handler = type("Handler", (_PeerHandler,),
                   {"store": store, "requests": []})
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield store, f"http://127.0.0.1:{server.server_port}", handler
    server.shutdown()
    server.server_close()


class TestPeerFetch:
    def test_miss_fetches_from_peer_and_adopts(self, tmp_path, peer_server):
        peer_store, peer_url, handler = peer_server
        key, result = _compiled()
        peer_store.put(key, result)

        backend = ReplicatedStoreBackend(str(tmp_path / "local"),
                                         peers=[peer_url])
        fetched = backend.get(key)
        assert fetched is not None
        assert fetched.cost == result.cost
        stats = backend.statistics()
        assert stats["peer_hits"] == 1
        # Adoption: the second read is local, no extra peer request.
        before = len(handler.requests)
        assert backend.get(key) is not None
        assert len(handler.requests) == before

    def test_peer_miss_counts_and_returns_none(self, tmp_path, peer_server):
        _, peer_url, _ = peer_server
        key, _ = _compiled()
        backend = ReplicatedStoreBackend(str(tmp_path / "local"),
                                         peers=[peer_url])
        assert backend.get(key) is None
        assert backend.statistics()["peer_misses"] == 1

    def test_unreachable_peer_degrades_to_miss(self, tmp_path):
        key, _ = _compiled()
        backend = ReplicatedStoreBackend(
            str(tmp_path / "local"),
            peers=["http://127.0.0.1:1"],  # Nothing listens there.
            peer_timeout=0.2)
        assert backend.get(key) is None
        assert backend.statistics()["peer_errors"] >= 1

    def test_garbage_from_peer_is_not_adopted(self, tmp_path):
        key, result = _compiled()
        digest = _entry_digest(key)

        class _Garbage:
            def read_raw(self, _digest):
                return "{\"not\": \"an entry\"}"

        handler = type("Handler", (_PeerHandler,),
                       {"store": _Garbage(), "requests": []})
        server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            backend = ReplicatedStoreBackend(
                str(tmp_path / "local"),
                peers=[f"http://127.0.0.1:{server.server_port}"])
            assert backend.get(key) is None
            assert backend.local.read_raw(digest) is None
            assert backend.statistics()["peer_errors"] >= 1
        finally:
            server.shutdown()
            server.server_close()

    def test_read_raw_serves_local_entries_only(self, tmp_path, peer_server):
        # No transitive fan-out: a peer's read_raw never triggers fetches.
        peer_store, peer_url, handler = peer_server
        key, result = _compiled()
        peer_store.put(key, result)
        backend = ReplicatedStoreBackend(str(tmp_path / "local"),
                                         peers=[peer_url])
        assert backend.read_raw(_entry_digest(key)) is None
        assert handler.requests == []


class TestRawTransport:
    def test_write_raw_round_trips_bit_identically(self, tmp_path):
        key, result = _compiled()
        source = PersistentResultStore(str(tmp_path / "src"))
        sink = PersistentResultStore(str(tmp_path / "dst"))
        source.put(key, result)
        digest = _entry_digest(key)
        document = source.read_raw(digest)
        assert document is not None
        assert sink.write_raw(digest, document)
        assert sink.read_raw(digest) == document
        assert sink.get(key).cost == result.cost

    def test_write_raw_rejects_malformed_documents(self, tmp_path):
        store = PersistentResultStore(str(tmp_path))
        bad_digest = "zz" * 32
        assert not store.write_raw(bad_digest, "{}")
        good_digest = "ab" * 32
        assert not store.write_raw(good_digest, "not json")
        assert not store.write_raw(good_digest, json.dumps({"no": "result"}))
