"""Priority-aware load shedding: the admission curve and the gate."""

import pytest

from repro.cluster.auth import MAX_PRIORITY, ApiKey
from repro.cluster.shedding import LoadShedder, ShedError, SheddingPolicy


def _key(priority):
    return ApiKey(secret=f"sk-{priority}", name=f"p{priority}",
                  priority=priority, rate=1000, burst=1000)


class TestSheddingPolicy:
    def test_below_threshold_admits_everyone(self):
        policy = SheddingPolicy(threshold=0.75, full=0.95)
        assert policy.cutoff(0.0) == 0
        assert policy.cutoff(0.74) == 0

    def test_at_full_only_top_priority_survives(self):
        policy = SheddingPolicy(threshold=0.75, full=0.95)
        assert policy.cutoff(0.95) == MAX_PRIORITY
        assert policy.cutoff(1.0) == MAX_PRIORITY

    def test_cutoff_rises_monotonically(self):
        policy = SheddingPolicy(threshold=0.5, full=1.0)
        cutoffs = [policy.cutoff(0.5 + i * 0.05) for i in range(11)]
        assert cutoffs == sorted(cutoffs)
        assert cutoffs[0] >= 1  # Crossing the threshold sheds someone.

    def test_retry_after_scales_with_saturation(self):
        policy = SheddingPolicy()
        assert policy.retry_after(0.8) < policy.retry_after(1.0)
        assert policy.retry_after(1.0) == policy.retry_after_ceiling
        assert policy.retry_after(0.0) == policy.retry_after_floor


class TestLoadShedder:
    def test_admits_everyone_when_calm(self):
        shedder = LoadShedder(lambda: 0.1)
        shedder.admit(_key(0))
        shedder.admit(None)

    def test_sheds_low_priority_first(self):
        shedder = LoadShedder(lambda: 0.85,
                              SheddingPolicy(threshold=0.75, full=0.95))
        cutoff = shedder.policy.cutoff(0.85)
        with pytest.raises(ShedError) as excinfo:
            shedder.admit(_key(cutoff - 1))
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after > 0
        shedder.admit(_key(cutoff))  # At the cutoff: admitted.

    def test_top_priority_survives_full_saturation(self):
        shedder = LoadShedder(lambda: 1.0)
        shedder.admit(_key(MAX_PRIORITY))
        with pytest.raises(ShedError):
            shedder.admit(_key(MAX_PRIORITY - 1))

    def test_anonymous_uses_the_policy_default_class(self):
        policy = SheddingPolicy(threshold=0.5, full=0.9,
                                anonymous_priority=0)
        shedder = LoadShedder(lambda: 0.8, policy)
        with pytest.raises(ShedError) as excinfo:
            shedder.admit(None)
        assert excinfo.value.key_name == "anonymous"

    def test_snapshot_reports_the_live_cutoff(self):
        shedder = LoadShedder(lambda: 0.9)
        snapshot = shedder.snapshot()
        assert snapshot["saturation"] == 0.9
        assert snapshot["priority_cutoff"] == shedder.policy.cutoff(0.9)
