"""The job-event broker: replay, terminal semantics, heartbeats, bounds."""

import threading

from repro.cluster.events import TERMINAL_EVENTS, JobEventBroker


def _drain(broker, channel, **kwargs):
    return list(broker.stream(channel, **kwargs))


class TestPublishAndReplay:
    def test_history_replays_before_waiting(self):
        broker = JobEventBroker()
        channel = ("svc", "j1")
        broker.publish(channel, "queued", {"job_id": "j1"})
        broker.publish(channel, "running")
        broker.publish(channel, "done")
        events = _drain(broker, channel)
        assert [name for name, _ in events] == ["queued", "running", "done"]

    def test_terminal_event_ends_the_stream(self):
        broker = JobEventBroker()
        broker.publish(("svc", "j"), "done")
        assert [n for n, _ in _drain(broker, ("svc", "j"))] == ["done"]

    def test_nothing_follows_a_terminal_event(self):
        broker = JobEventBroker()
        channel = ("svc", "j")
        broker.publish(channel, "failed")
        broker.publish(channel, "running")  # Ignored.
        assert broker.history(channel) == [("failed", {})]

    def test_live_subscriber_sees_later_events(self):
        broker = JobEventBroker()
        channel = ("svc", "live")
        broker.publish(channel, "queued")
        seen = []

        def subscribe():
            seen.extend(n for n, _ in broker.stream(channel,
                                                    poll_seconds=0.05))

        thread = threading.Thread(target=subscribe)
        thread.start()
        broker.publish(channel, "running")
        broker.publish(channel, "done")
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert seen == ["queued", "running", "done"]

    def test_payloads_are_copied(self):
        broker = JobEventBroker()
        payload = {"status": "queued"}
        broker.publish(("svc", "j"), "queued", payload)
        payload["status"] = "mutated"
        assert broker.history(("svc", "j"))[0][1] == {"status": "queued"}


class TestStreamControls:
    def test_timeout_yields_a_final_timeout_event(self):
        broker = JobEventBroker()
        events = _drain(broker, ("svc", "never"),
                        poll_seconds=0.02, timeout=0.05)
        assert events and events[-1][0] == "timeout"

    def test_dead_connection_ends_the_stream(self):
        broker = JobEventBroker()
        events = _drain(broker, ("svc", "gone"),
                        poll_seconds=0.01, is_alive=lambda: False)
        assert events == []

    def test_idle_stream_heartbeats(self):
        broker = JobEventBroker()
        stream = broker.stream(("svc", "idle"), heartbeat_seconds=0.0,
                               poll_seconds=0.01, timeout=1.0)
        name, payload = next(stream)
        assert name == "heartbeat"
        assert "elapsed_seconds" in payload
        stream.close()


class TestBounds:
    def test_history_keeps_the_tail(self):
        broker = JobEventBroker(max_history=4)
        channel = ("svc", "busy")
        for i in range(10):
            broker.publish(channel, f"e{i}")
        names = [n for n, _ in broker.history(channel)]
        assert len(names) <= 4
        assert names[-1] == "e9"

    def test_terminal_channels_evict_first(self):
        broker = JobEventBroker(max_channels=4)
        for i in range(4):
            broker.publish(("svc", f"t{i}"), "done")
        broker.publish(("svc", "fresh"), "queued")
        assert broker.channels() <= 4
        # The live channel survived the eviction.
        assert broker.history(("svc", "fresh")) == [("queued", {})]

    def test_forget_drops_a_channel(self):
        broker = JobEventBroker()
        broker.publish(("svc", "x"), "queued")
        broker.forget(("svc", "x"))
        assert broker.history(("svc", "x")) == []

    def test_terminal_set(self):
        assert TERMINAL_EVENTS == {"done", "failed", "cancelled"}
