"""API keys: parsing, token buckets, quotas, expiry, the authenticator."""

import json
import time

import pytest

from repro.cluster.auth import (
    ApiKey,
    Authenticator,
    ExpiredKeyError,
    InvalidKeyError,
    MissingKeyError,
    QuotaExceededError,
    RateLimitedError,
    TokenBucket,
    credential_from_headers,
)


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        now = 1000.0
        assert bucket.take(now) is None
        assert bucket.take(now) is None
        assert bucket.take(now) is None
        wait = bucket.take(now)
        assert wait is not None and wait > 0

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        now = 1000.0
        assert bucket.take(now) is None
        assert bucket.take(now) is not None
        # 0.5 s at 2 tokens/s refills the one token we need.
        assert bucket.take(now + 0.5) is None

    def test_wait_hint_is_exact(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        now = 1000.0
        bucket.take(now)
        wait = bucket.take(now)
        assert wait == pytest.approx(0.25)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)


class TestApiKey:
    def test_from_dict_defaults(self):
        key = ApiKey.from_dict({"key": "sk-x", "name": "x"})
        assert key.priority == 5
        assert key.rate == 10.0
        assert key.burst == 20.0  # 2 * rate
        assert key.daily_quota is None
        assert not key.expired()

    def test_from_dict_requires_secret(self):
        with pytest.raises(ValueError):
            ApiKey.from_dict({"name": "nameless"})

    def test_priority_is_clamped(self):
        assert ApiKey.from_dict({"key": "a", "priority": 99}).priority == 9
        assert ApiKey.from_dict({"key": "b", "priority": -3}).priority == 0

    def test_iso_expiry_covers_the_whole_day(self):
        key = ApiKey.from_dict({"key": "a", "expires": "2020-01-01"})
        assert key.expired()  # Long past.
        future = ApiKey.from_dict({"key": "b", "expires": "2099-01-01"})
        assert not future.expired()

    def test_unix_expiry(self):
        key = ApiKey.from_dict({"key": "a", "expires": time.time() - 1})
        assert key.expired()

    def test_bad_expiry_raises(self):
        with pytest.raises(ValueError):
            ApiKey.from_dict({"key": "a", "expires": "next tuesday"})

    def test_charge_throttles_after_burst(self):
        key = ApiKey(secret="s", name="n", rate=0.001, burst=2)
        key.charge()
        key.charge()
        with pytest.raises(RateLimitedError) as excinfo:
            key.charge()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after > 0

    def test_quota_exhaustion_and_midnight_retry_hint(self):
        key = ApiKey(secret="s", name="n", rate=1000, burst=1000,
                     daily_quota=3)
        for _ in range(3):
            key.charge()
        with pytest.raises(QuotaExceededError) as excinfo:
            key.charge()
        # Retry-After points at the UTC midnight rollover.
        assert 0 < excinfo.value.retry_after <= 86400
        assert key.quota_remaining() == 0

    def test_throttled_request_does_not_burn_quota(self):
        key = ApiKey(secret="s", name="n", rate=0.001, burst=1,
                     daily_quota=10)
        key.charge()
        with pytest.raises(RateLimitedError):
            key.charge()
        # The throttled attempt rolled its quota debit back.
        assert key.quota_remaining() == 9


class TestAuthenticator:
    def _auth(self, enforce_limits=True, **extra):
        entry = {"key": "sk-alpha", "name": "alpha", "rate": 1000,
                 "burst": 1000}
        entry.update(extra)
        return Authenticator.from_spec({"keys": [entry]},
                                       enforce_limits=enforce_limits)

    def test_open_when_no_keys_configured(self):
        auth = Authenticator()
        assert not auth.enabled
        assert auth.authenticate(None) is None
        assert auth.authenticate("whatever") is None

    def test_missing_and_invalid_keys(self):
        auth = self._auth()
        with pytest.raises(MissingKeyError):
            auth.authenticate(None)
        with pytest.raises(InvalidKeyError):
            auth.authenticate("sk-wrong")

    def test_valid_key_returns_the_principal(self):
        auth = self._auth()
        key = auth.authenticate("sk-alpha")
        assert key is not None and key.name == "alpha"

    def test_expired_key_is_403(self):
        auth = self._auth(expires="2020-01-01")
        with pytest.raises(ExpiredKeyError) as excinfo:
            auth.authenticate("sk-alpha")
        assert excinfo.value.status == 403

    def test_backend_role_skips_charging(self):
        # A gateway behind a charging router validates but never debits.
        auth = self._auth(enforce_limits=False, rate=0.001, burst=1)
        for _ in range(10):
            assert auth.authenticate("sk-alpha") is not None

    def test_from_spec_json_string_and_file(self, tmp_path):
        config = {"keys": [{"key": "sk-f", "name": "filed"}]}
        from_string = Authenticator.from_spec(json.dumps(config))
        assert from_string.enabled and len(from_string) == 1
        path = tmp_path / "keys.json"
        path.write_text(json.dumps(config))
        from_file = Authenticator.from_spec(str(path))
        assert from_file.lookup("sk-f").name == "filed"

    def test_from_spec_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_API_KEYS",
                           '{"keys": [{"key": "sk-env", "name": "env"}]}')
        auth = Authenticator.from_spec(None)
        assert auth.lookup("sk-env").name == "env"
        monkeypatch.delenv("REPRO_API_KEYS")
        assert not Authenticator.from_spec(None).enabled

    def test_key_config_round_trips(self):
        auth = self._auth(daily_quota=50, priority=8)
        clone = Authenticator.from_spec(auth.key_config(),
                                        enforce_limits=False)
        key = clone.lookup("sk-alpha")
        assert key.name == "alpha"
        assert key.daily_quota == 50
        assert key.priority == 8


class TestCredentialExtraction:
    def test_bearer_header(self):
        assert credential_from_headers(
            {"Authorization": "Bearer sk-1"}) == "sk-1"
        assert credential_from_headers(
            {"Authorization": "bearer sk-2"}) == "sk-2"

    def test_x_api_key_header(self):
        assert credential_from_headers({"X-API-Key": " sk-3 "}) == "sk-3"

    def test_no_credential(self):
        assert credential_from_headers({}) is None
        assert credential_from_headers({"Authorization": "Basic abc"}) is None
        assert credential_from_headers({"Authorization": "Bearer "}) is None
