"""Pipeline pass ordering, reordering helpers and report contents."""

import pytest

import repro
from repro.api import resolve_technique
from repro.hardware import spin_qubit_target
from repro.pipeline import CompilationReport, Pipeline, PassStats

#: The canonical stage sequence of the Fig. 2 flow.
EXPECTED_STAGES = [
    "route",
    "preprocess",
    "evaluate_rules",
    "solve",
    "apply",
    "merge_1q",
    "verify",
    "analyze_cost",
]


def probe_circuit():
    circuit = repro.QuantumCircuit(2, name="pipeline_probe")
    circuit.cx(0, 1)
    circuit.swap(0, 1)
    return circuit


class TestPassOrdering:
    @pytest.mark.parametrize("technique", ["direct", "kak_cz", "template_f", "sat_p"])
    def test_every_builtin_uses_the_eight_canonical_passes(self, technique):
        pipeline = resolve_technique(technique).build_pipeline()
        assert pipeline.pass_names == EXPECTED_STAGES

    def test_report_stages_follow_execution_order(self):
        result = repro.compile(probe_circuit(), spin_qubit_target(2), "sat_p",
                               use_cache=False)
        assert result.report.stage_names == EXPECTED_STAGES

    def test_rewriting_helpers(self):
        pipeline = resolve_technique("direct").build_pipeline()
        shorter = pipeline.without("merge_1q")
        assert "merge_1q" not in shorter.pass_names
        assert len(shorter) == len(pipeline) - 1
        # insertion before/after keeps relative order
        merge = pipeline.passes[5]
        reordered = shorter.inserted_before("verify", merge)
        assert reordered.pass_names == EXPECTED_STAGES
        with pytest.raises(KeyError):
            pipeline.without("no_such_pass")

    def test_duplicate_pass_names_rejected(self):
        pipeline = resolve_technique("direct").build_pipeline()
        with pytest.raises(ValueError):
            Pipeline(pipeline.passes + [pipeline.passes[0]])


class TestReportContents:
    def test_report_fields_populated(self):
        circuit = probe_circuit()
        target = spin_qubit_target(2)
        result = repro.compile(circuit, target, "sat_r", use_cache=False)
        report = result.report
        assert isinstance(report, CompilationReport)
        assert report.technique == "sat_r"
        assert report.circuit_name == "pipeline_probe"
        assert len(report.circuit_hash) == 64
        assert len(report.target_fingerprint) == 64
        assert report.cache_hit is False
        assert report.total_seconds > 0.0
        for stage in report.stages:
            assert isinstance(stage, PassStats)
            assert stage.seconds >= 0.0

    def test_stage_counters_carry_sizes(self):
        result = repro.compile(probe_circuit(), spin_qubit_target(2), "sat_p",
                               use_cache=False)
        report = result.report
        assert report.stage("route").counters["gates_in"] == 2
        assert report.stage("preprocess").counters["blocks"] == 1
        assert report.stage("evaluate_rules").counters["candidates"] >= 1
        assert report.stage("solve").counters["chosen"] == len(
            result.chosen_substitutions
        )
        assert report.stage("analyze_cost").counters["gates"] == len(
            result.adapted_circuit
        )
        with pytest.raises(KeyError):
            report.stage("fuse")

    def test_solver_counters_surface_in_solve_stage(self):
        result = repro.compile(probe_circuit(), spin_qubit_target(2), "sat_f",
                               use_cache=False)
        counters = result.report.stage("solve").counters
        assert counters["improvement_rounds"] >= 1
        assert counters["theory_checks"] >= 1

    def test_resources_attributed_when_telemetry_enabled(self):
        from repro.telemetry.registry import (
            disable_telemetry,
            enable_telemetry,
            telemetry_enabled,
        )

        was_enabled = telemetry_enabled()
        enable_telemetry()
        try:
            result = repro.compile(probe_circuit(), spin_qubit_target(2),
                                   "direct", use_cache=False)
        finally:
            if not was_enabled:
                disable_telemetry()
        resources = result.report.resources
        assert set(resources) == {"cpu_seconds", "peak_rss_bytes"}
        assert resources["cpu_seconds"] >= 0.0
        assert resources["peak_rss_bytes"] > 0.0
        # The attribution survives the dict round-trip with the rest of
        # the report.
        restored = CompilationReport.from_dict(result.report.to_dict())
        assert restored.resources == resources

    def test_resources_empty_when_telemetry_disabled(self):
        from repro.telemetry.registry import (
            disable_telemetry,
            enable_telemetry,
            telemetry_enabled,
        )

        was_enabled = telemetry_enabled()
        disable_telemetry()
        try:
            result = repro.compile(probe_circuit(), spin_qubit_target(2),
                                   "direct", use_cache=False)
        finally:
            if was_enabled:
                enable_telemetry()
        assert result.report.resources == {}

    def test_verify_stage_records_whether_it_checked(self):
        circuit = probe_circuit()
        target = spin_qubit_target(2)
        unchecked = repro.compile(circuit, target, "direct", use_cache=False)
        checked = repro.compile(circuit, target, "direct", verify=True,
                                use_cache=False)
        assert unchecked.report.stage("verify").counters["checked"] == 0
        assert checked.report.stage("verify").counters["checked"] == 1

    def test_summary_renders_every_stage(self):
        result = repro.compile(probe_circuit(), spin_qubit_target(2), "direct",
                               use_cache=False)
        summary = result.report.summary()
        for name in EXPECTED_STAGES:
            assert name in summary
