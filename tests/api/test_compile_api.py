"""The facade acceptance surface: compile() parity and compile_many() batches."""

import pytest

import repro
from repro.api import PAPER_TECHNIQUES, clear_compilation_cache
from repro.circuits import allclose_up_to_global_phase, circuit_unitary
from repro.hardware import spin_qubit_target
from repro.workloads import WorkloadSpec, evaluation_suite, quantum_volume_circuit


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


def quickstart_circuit():
    circuit = repro.QuantumCircuit(3, name="quickstart")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(1, 2)
    circuit.cx(0, 1)
    circuit.rz(0.25, 2)
    return circuit


class TestCompile:
    @pytest.mark.parametrize("technique", PAPER_TECHNIQUES)
    def test_every_registry_key_compiles_the_quickstart_circuit(self, technique):
        circuit = quickstart_circuit()
        target = spin_qubit_target(3)
        result = repro.compile(circuit, target, technique=technique, verify=True)
        assert result.technique == technique
        assert result.cost.gate_fidelity_product > 0
        assert result.report is not None and len(result.report.stages) == 8
        assert allclose_up_to_global_phase(
            circuit_unitary(result.adapted_circuit), circuit_unitary(circuit),
            atol=1e-6,
        )

    def test_default_technique_is_sat_p(self):
        result = repro.compile(quickstart_circuit(), spin_qubit_target(3))
        assert result.technique == "sat_p"

    @pytest.mark.parametrize("technique", PAPER_TECHNIQUES)
    def test_statistics_are_never_empty(self, technique):
        """Heuristic techniques report selection counters (or an explicit
        reason), not a silently empty statistics dict."""
        result = repro.compile(quickstart_circuit(), spin_qubit_target(3),
                               technique=technique)
        statistics = result.statistics
        assert statistics, f"{technique} reported no statistics"
        if technique.startswith("sat_"):
            assert statistics["improvement_rounds"] >= 1
        else:
            assert statistics["selection"] in ("greedy", "all", "none")
            assert "candidates" in statistics and "accepted" in statistics

    def test_direct_is_its_own_baseline_even_when_merged(self):
        """Direct translation is the normalization reference, so its cost
        deltas stay exactly zero with single-qubit merging enabled."""
        circuit = quickstart_circuit()
        target = spin_qubit_target(3)
        merged = repro.compile(circuit, target, "direct",
                               merge_single_qubit_gates=True)
        assert merged.baseline_cost == merged.cost
        assert merged.fidelity_change == 0.0

    def test_compile_is_deterministic(self):
        circuit = quickstart_circuit()
        target = spin_qubit_target(3)
        first = repro.compile(circuit, target, "sat_p", use_cache=False)
        second = repro.compile(circuit, target, "sat_p", use_cache=False)
        assert first.cost == second.cost
        assert first.objective_value == second.objective_value


class TestCompileMany:
    def test_batch_over_evaluation_suite_returns_reports(self):
        suite = evaluation_suite(max_qubits=3, seeds=(0,))
        results = repro.compile_many(suite, technique="direct")
        assert len(results) == len(suite)
        for spec in suite:
            result = results[spec.name]
            report = result.report
            assert report is not None
            timings = report.stage_seconds()
            assert set(timings) == {
                "route", "preprocess", "evaluate_rules", "solve",
                "apply", "merge_1q", "verify", "analyze_cost",
            }
            assert all(seconds >= 0.0 for seconds in timings.values())

    def test_batch_accepts_mixed_item_kinds(self):
        circuit = quickstart_circuit()
        items = [
            circuit,
            ("renamed", quickstart_circuit()),
            WorkloadSpec("qv", 2, 2, 0),
        ]
        results = repro.compile_many(items, technique="direct")
        assert set(results) == {"quickstart", "renamed", "qv-q2-d2-s0"}

    def test_duplicate_names_are_not_dropped(self):
        items = [quickstart_circuit(), quickstart_circuit()]
        results = repro.compile_many(items, technique="direct")
        assert len(results) == 2

    def test_explicit_target_and_callable_target(self):
        circuit = quickstart_circuit()
        fixed = spin_qubit_target(3, "D1")
        by_target = repro.compile_many([circuit], target=fixed, technique="direct")
        by_factory = repro.compile_many(
            [circuit],
            target=lambda c: spin_qubit_target(c.num_qubits, "D1"),
            technique="direct",
        )
        assert (
            by_target["quickstart"].cost.duration
            == by_factory["quickstart"].cost.duration
        )

    def test_batch_matches_individual_compiles(self):
        suite = [WorkloadSpec("qv", 2, 2, 0), WorkloadSpec("random", 2, 10, 1)]
        batch = repro.compile_many(suite, technique="template_f")
        for spec in suite:
            circuit = (
                quantum_volume_circuit(spec.num_qubits, spec.depth, seed=spec.seed)
                if spec.kind == "qv"
                else None
            )
            if circuit is None:
                continue
            single = repro.compile(
                circuit, spin_qubit_target(max(2, spec.num_qubits)), "template_f"
            )
            assert batch[spec.name].cost == single.cost

    def test_rejects_unknown_item_type(self):
        with pytest.raises(TypeError):
            repro.compile_many([42], technique="direct")

    def test_process_pool_fanout_matches_serial(self):
        suite = [
            WorkloadSpec("qv", 2, 2, 0),
            WorkloadSpec("random", 2, 10, 0),
            WorkloadSpec("random", 2, 10, 1),
        ]
        serial = repro.compile_many(suite, technique="direct", use_cache=False)
        clear_compilation_cache()
        parallel = repro.compile_many(suite, technique="direct", processes=2)
        assert set(serial) == set(parallel)
        for name in serial:
            assert serial[name].cost == parallel[name].cost
        # Worker results were merged into the local cache.
        warm = repro.compile_many(suite, technique="direct")
        assert all(r.report.cache_hit for r in warm.values())

    def test_process_pool_fanout_returns_per_item_reports(self):
        """Every fanned-out item carries its own full per-stage report."""
        suite = [
            WorkloadSpec("qv", 2, 2, 0),
            WorkloadSpec("random", 2, 10, 0),
            WorkloadSpec("random", 2, 12, 1),
        ]
        results = repro.compile_many(suite, technique="direct", processes=2)
        assert len(results) == len(suite)
        hashes = set()
        for spec in suite:
            report = results[spec.name].report
            assert report is not None
            assert report.cache_hit is False
            assert report.technique == "direct"
            assert set(report.stage_seconds()) == {
                "route", "preprocess", "evaluate_rules", "solve",
                "apply", "merge_1q", "verify", "analyze_cost",
            }
            assert report.total_seconds >= 0.0
            assert report.circuit_hash
            hashes.add(report.circuit_hash)
        assert len(hashes) == len(suite)  # Reports were not cross-wired.

    def test_process_pool_fanout_cache_hits_survive_the_round_trip(self):
        """Pre-warmed entries are served from the parent cache (not
        recompiled in workers), and worker results hit on the next batch."""
        suite = [
            WorkloadSpec("qv", 2, 2, 0),
            WorkloadSpec("random", 2, 10, 0),
            WorkloadSpec("random", 2, 10, 1),
        ]
        warm_spec = suite[0]
        single = repro.compile_many([warm_spec], technique="direct")
        assert single[warm_spec.name].report.cache_hit is False

        mixed = repro.compile_many(suite, technique="direct", processes=2)
        assert list(mixed) == [spec.name for spec in suite]  # Input order kept.
        assert mixed[warm_spec.name].report.cache_hit is True
        cold_names = [spec.name for spec in suite[1:]]
        assert all(mixed[name].report.cache_hit is False for name in cold_names)

        # Everything — pre-warmed and worker-compiled — now hits locally,
        # with identical costs across the round trip.
        warm = repro.compile_many(suite, technique="direct")
        for spec in suite:
            assert warm[spec.name].report.cache_hit is True
            assert warm[spec.name].cost == mixed[spec.name].cost


class TestQasmInput:
    """repro.compile() ingests OpenQASM 2.0 strings and .qasm paths (PR 4)."""

    SOURCE = (
        'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
        "qreg q[3];\nh q[0];\ncx q[0],q[1];\nswap q[1],q[2];\n"
    )

    def test_compile_from_source_string(self):
        target = spin_qubit_target(3)
        # verify=True makes the VerifyPass raise on any non-equivalence.
        result = repro.compile(
            self.SOURCE, target, "direct", use_cache=False, verify=True
        )
        assert result.cost.gate_count > 0
        assert result.report.circuit_name == "qasm_circuit"

    def test_compile_from_path(self, tmp_path):
        path = tmp_path / "bench.qasm"
        path.write_text(self.SOURCE)
        target = spin_qubit_target(3)
        result = repro.compile(str(path), target, "direct", use_cache=False)
        assert result.cost.gate_count > 0

    def test_missing_path_is_a_clean_error(self):
        with pytest.raises(FileNotFoundError):
            repro.compile("/nonexistent/bench.qasm", spin_qubit_target(2))

    def test_malformed_source_raises_qasm_error(self):
        with pytest.raises(repro.QasmError):
            repro.compile("OPENQASM 2.0;\nqreg q[2]\nh q[0];", spin_qubit_target(2))

    def test_compile_many_accepts_qasm_strings(self):
        results = repro.compile_many(
            [("from_qasm", repro.circuit_from_qasm(self.SOURCE)), self.SOURCE],
            technique="direct",
        )
        assert "from_qasm" in results
        assert "qasm_circuit" in results
