"""Registry resolution: keys, aliases, errors, and the plugin hook."""

import pytest

import repro
from repro.api import (
    PAPER_TECHNIQUES,
    UnknownTechniqueError,
    available_techniques,
    register_technique,
    resolve_technique,
    unregister_technique,
)
from repro.hardware import spin_qubit_target
from repro.pipeline import Pipeline


def small_circuit():
    circuit = repro.QuantumCircuit(2, name="registry_probe")
    circuit.cx(0, 1)
    return circuit


class TestResolution:
    def test_all_paper_techniques_registered(self):
        known = available_techniques()
        assert set(PAPER_TECHNIQUES) <= set(known)
        assert set(known) >= {
            "sat_f", "sat_r", "sat_p", "direct",
            "kak_cz", "kak_dcz", "template_f", "template_r",
        }
        for key, description in known.items():
            assert description, f"technique {key} has no description"

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("kak", "kak_cz"),
            ("kak_czd", "kak_dcz"),
            ("sat", "sat_p"),
            ("sat_combined", "sat_p"),
            ("sat_fidelity", "sat_f"),
            ("sat_idle", "sat_r"),
            ("template_fidelity", "template_f"),
            ("template_idle", "template_r"),
        ],
    )
    def test_aliases_resolve_to_canonical_spec(self, alias, canonical):
        assert resolve_technique(alias) is resolve_technique(canonical)

    def test_unknown_key_raises_with_known_keys_listed(self):
        with pytest.raises(UnknownTechniqueError) as excinfo:
            resolve_technique("quantum_annealing")
        message = str(excinfo.value)
        assert "quantum_annealing" in message
        assert "sat_p" in message

    def test_unknown_technique_error_is_a_key_error(self):
        assert issubclass(UnknownTechniqueError, KeyError)

    def test_compile_surfaces_unknown_technique(self):
        with pytest.raises(UnknownTechniqueError):
            repro.compile(small_circuit(), spin_qubit_target(2), technique="nope")

    def test_unknown_option_rejected_with_allowed_list(self):
        with pytest.raises(TypeError, match="unexpected option"):
            repro.compile(small_circuit(), spin_qubit_target(2), "direct",
                          optimization_level=3)

    def test_sat_only_options_rejected_for_direct(self):
        with pytest.raises(TypeError):
            repro.compile(small_circuit(), spin_qubit_target(2), "direct",
                          max_improvement_rounds=5)


class TestPluginHook:
    def test_register_and_compile_custom_technique(self):
        base = resolve_technique("direct")

        def factory() -> Pipeline:
            # Derive from the direct pipeline but drop the verify stage.
            return base.build_pipeline().without("verify").renamed("direct_noverify")

        register_technique(
            "direct_noverify",
            factory,
            description="direct translation without the verify stage",
            aliases=("dnv",),
        )
        try:
            circuit = small_circuit()
            target = spin_qubit_target(2)
            result = repro.compile(circuit, target, "direct_noverify")
            assert result.technique == "direct_noverify"
            assert "verify" not in result.report.stage_names
            reference = repro.compile(circuit, target, "direct")
            assert result.cost == reference.cost
            # The alias reaches the same registration.
            assert resolve_technique("dnv").key == "direct_noverify"
        finally:
            unregister_technique("direct_noverify")
        with pytest.raises(UnknownTechniqueError):
            resolve_technique("direct_noverify")

    def test_plugin_technique_batch_falls_back_to_serial(self):
        """A runtime-registered technique only exists in this process, so a
        processes>1 batch must still succeed (serial fallback)."""
        base = resolve_technique("direct")
        register_technique(
            "direct_local", lambda: base.build_pipeline().renamed("direct_local"),
            description="process-local plugin",
        )
        try:
            results = repro.compile_many(
                [small_circuit(), ("b", small_circuit())],
                technique="direct_local",
                processes=2,
            )
            assert len(results) == 2
            assert all(r.technique == "direct_local" for r in results.values())
        finally:
            unregister_technique("direct_local")

    def test_duplicate_registration_rejected_without_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_technique("direct", lambda: None)

    def test_overwrite_allows_replacing(self):
        from repro.api import registry as registry_module

        spec = resolve_technique("direct")
        try:
            replacement = register_technique(
                "direct", spec.pipeline_factory, description="replaced",
                overwrite=True,
            )
            assert resolve_technique("direct") is replacement
        finally:
            # Restore the exact import-time spec object: builtin identity
            # gates the process-pool fan-out tested elsewhere.
            registry_module._REGISTRY["direct"] = spec

    def test_overwriting_an_alias_key_detaches_it(self):
        """Re-registering under an alias makes it a canonical key of its
        own; the alias's old target keeps its registration."""
        from repro.api import registry as registry_module

        original = resolve_technique("kak_cz")
        base = resolve_technique("direct")
        try:
            replacement = register_technique(
                "kak", lambda: base.build_pipeline().renamed("kak"),
                description="detached alias", overwrite=True,
            )
            assert resolve_technique("kak") is replacement
            assert resolve_technique("kak_cz") is original
        finally:
            registry_module._REGISTRY.pop("kak", None)
            registry_module._ALIASES["kak"] = "kak_cz"

    def test_alias_cannot_hijack_existing_technique_even_with_overwrite(self):
        with pytest.raises(ValueError, match="shadow"):
            register_technique(
                "my_direct", lambda: None, aliases=("direct",), overwrite=True,
            )
        with pytest.raises(ValueError, match="shadow"):
            register_technique(
                "my_direct", lambda: None, aliases=("kak",), overwrite=True,
            )
        # The failed registrations must not leave partial state behind.
        with pytest.raises(UnknownTechniqueError):
            resolve_technique("my_direct")
