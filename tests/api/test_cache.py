"""Deterministic result caching: hits, isolation, invalidation by key."""

import pytest

import repro
from repro.api import (
    cache_key,
    circuit_hash,
    clear_compilation_cache,
    compilation_cache_info,
    options_fingerprint,
    target_fingerprint,
)
from repro.core import standard_rules
from repro.hardware import spin_qubit_target


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compilation_cache()
    yield
    clear_compilation_cache()


def swap_circuit(name="cache_probe"):
    circuit = repro.QuantumCircuit(2, name=name)
    circuit.cx(0, 1)
    circuit.swap(0, 1)
    return circuit


class TestCacheHits:
    def test_second_compile_is_a_cache_hit_with_identical_result(self):
        circuit = swap_circuit()
        target = spin_qubit_target(2)
        first = repro.compile(circuit, target, "sat_p")
        second = repro.compile(circuit, target, "sat_p")
        assert first.report.cache_hit is False
        assert second.report.cache_hit is True
        assert second.cost == first.cost
        assert second.objective_value == first.objective_value
        assert [s.identifier for s in second.chosen_substitutions] == [
            s.identifier for s in first.chosen_substitutions
        ]
        info = compilation_cache_info()
        assert info.hits == 1 and info.size == 1

    def test_cached_result_is_detached_from_the_store(self):
        circuit = swap_circuit()
        target = spin_qubit_target(2)
        repro.compile(circuit, target, "direct")
        hit = repro.compile(circuit, target, "direct")
        hit.adapted_circuit.h(0)  # caller-side mutation
        clean = repro.compile(circuit, target, "direct")
        assert len(clean.adapted_circuit) == len(hit.adapted_circuit) - 1

    def test_renamed_circuit_shares_the_cache_entry(self):
        target = spin_qubit_target(2)
        repro.compile(swap_circuit("alpha"), target, "direct")
        hit = repro.compile(swap_circuit("beta"), target, "direct")
        assert hit.report.cache_hit is True


class TestCacheKeying:
    def test_different_technique_misses(self):
        circuit = swap_circuit()
        target = spin_qubit_target(2)
        repro.compile(circuit, target, "sat_f")
        other = repro.compile(circuit, target, "sat_r")
        assert other.report.cache_hit is False

    def test_different_target_calibration_misses(self):
        circuit = swap_circuit()
        repro.compile(circuit, spin_qubit_target(2, "D0"), "direct")
        other = repro.compile(circuit, spin_qubit_target(2, "D1"), "direct")
        assert other.report.cache_hit is False

    def test_different_options_miss(self):
        circuit = swap_circuit()
        target = spin_qubit_target(2)
        repro.compile(circuit, target, "direct")
        merged = repro.compile(circuit, target, "direct",
                               merge_single_qubit_gates=True)
        assert merged.report.cache_hit is False

    def test_gate_content_changes_the_hash(self):
        first = swap_circuit()
        second = swap_circuit()
        second.rz(0.5, 0)
        assert circuit_hash(first) != circuit_hash(second)
        assert circuit_hash(first) == circuit_hash(swap_circuit())

    def test_target_fingerprint_is_calibration_sensitive(self):
        assert target_fingerprint(spin_qubit_target(2, "D0")) != target_fingerprint(
            spin_qubit_target(2, "D1")
        )
        assert target_fingerprint(spin_qubit_target(2)) == target_fingerprint(
            spin_qubit_target(2)
        )

    def test_non_primitive_options_bypass_the_cache(self):
        assert options_fingerprint({"rules": standard_rules()}) is None
        circuit = swap_circuit()
        target = spin_qubit_target(2)
        assert cache_key(circuit, target, "sat_p", {"rules": standard_rules()}) is None
        first = repro.compile(circuit, target, "sat_p", rules=standard_rules())
        second = repro.compile(circuit, target, "sat_p", rules=standard_rules())
        assert first.report.cache_hit is False
        assert second.report.cache_hit is False
        assert second.cost == first.cost

    def test_use_cache_false_bypasses(self):
        circuit = swap_circuit()
        target = spin_qubit_target(2)
        repro.compile(circuit, target, "direct")
        fresh = repro.compile(circuit, target, "direct", use_cache=False)
        assert fresh.report.cache_hit is False

    def test_alias_and_canonical_key_share_entries(self):
        circuit = swap_circuit()
        target = spin_qubit_target(2)
        repro.compile(circuit, target, "kak")
        hit = repro.compile(circuit, target, "kak_cz")
        assert hit.report.cache_hit is True

    def test_lru_eviction_prefers_recently_used_entries(self):
        """A hit refreshes recency: filling the cache evicts the least
        recently *used* entry, not the oldest-inserted one."""
        from dataclasses import dataclass

        from repro.api import CompilationCache

        @dataclass
        class Stub:
            value: int
            report: object = None

        cache = CompilationCache(max_entries=2)
        key_a = ("a", "t", "x", "o")
        key_b = ("b", "t", "x", "o")
        key_c = ("c", "t", "x", "o")
        cache.put(key_a, Stub(1))
        cache.put(key_b, Stub(2))
        # Touch A: B becomes the least recently used entry.
        assert cache.get(key_a).value == 1
        assert cache.keys() == [key_b, key_a]  # LRU -> MRU order.
        cache.put(key_c, Stub(3))
        assert cache.keys() == [key_a, key_c]
        assert cache.get(key_b) is None  # Evicted.
        assert cache.get(key_a).value == 1  # Survived thanks to the hit.
        assert cache.get(key_c).value == 3
        assert cache.info().size == 2

    def test_lru_eviction_order_without_hits_is_insertion_order(self):
        from dataclasses import dataclass

        from repro.api import CompilationCache

        @dataclass
        class Stub:
            value: int
            report: object = None

        cache = CompilationCache(max_entries=2)
        keys = [(name, "t", "x", "o") for name in "abc"]
        for index, key in enumerate(keys):
            cache.put(key, Stub(index))
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]).value == 1
        assert cache.get(keys[2]).value == 2

    def test_put_refreshes_recency_of_overwritten_entries(self):
        from dataclasses import dataclass

        from repro.api import CompilationCache

        @dataclass
        class Stub:
            value: int
            report: object = None

        cache = CompilationCache(max_entries=2)
        key_a = ("a", "t", "x", "o")
        key_b = ("b", "t", "x", "o")
        cache.put(key_a, Stub(1))
        cache.put(key_b, Stub(2))
        cache.put(key_a, Stub(10))  # Overwrite refreshes A's recency.
        cache.put(("c", "t", "x", "o"), Stub(3))
        assert cache.get(key_b) is None  # B was the LRU entry.
        assert cache.get(key_a).value == 10

    def test_reregistration_invalidates_cached_results(self):
        from repro.api import register_technique, resolve_technique
        from repro.api import registry as registry_module

        circuit = swap_circuit()
        target = spin_qubit_target(2)
        repro.compile(circuit, target, "direct")
        spec = resolve_technique("direct")
        try:
            register_technique("direct", spec.pipeline_factory,
                               description=spec.description, overwrite=True)
            fresh = repro.compile(circuit, target, "direct")
            assert fresh.report.cache_hit is False
        finally:
            # Restore the exact import-time spec object: builtin identity
            # gates the process-pool fan-out tested elsewhere.
            registry_module._REGISTRY["direct"] = spec
