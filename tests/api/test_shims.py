"""The legacy adapter classes: deprecation warnings + identical results."""

import warnings

import pytest

import repro
from repro.core import (
    DirectTranslationAdapter,
    KakAdapter,
    SatAdapter,
    TemplateOptimizationAdapter,
)
from repro.core.baselines import all_techniques
from repro.hardware import spin_qubit_target


def probe_circuit():
    circuit = repro.QuantumCircuit(3, name="shim_probe")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(1, 2)
    circuit.cx(0, 1)
    circuit.rz(0.25, 2)
    return circuit


#: (constructor, kwargs, equivalent registry key)
SHIM_CASES = [
    (DirectTranslationAdapter, {}, "direct"),
    (KakAdapter, {"cz_gate": "cz"}, "kak_cz"),
    (KakAdapter, {"cz_gate": "cz_d"}, "kak_dcz"),
    (TemplateOptimizationAdapter, {"objective": "fidelity"}, "template_f"),
    (TemplateOptimizationAdapter, {"objective": "idle"}, "template_r"),
    (SatAdapter, {"objective": "fidelity"}, "sat_f"),
    (SatAdapter, {"objective": "idle"}, "sat_r"),
    (SatAdapter, {"objective": "combined"}, "sat_p"),
]


class TestDeprecationWarnings:
    @pytest.mark.parametrize("constructor, kwargs, key", SHIM_CASES)
    def test_construction_warns_and_names_the_replacement(self, constructor, kwargs, key):
        with pytest.warns(DeprecationWarning, match=key):
            constructor(**kwargs)

    def test_all_techniques_warns(self):
        with pytest.warns(DeprecationWarning, match="PAPER_TECHNIQUES"):
            adapters = all_techniques()
        assert len(adapters) == 8

    def test_invalid_template_objective_still_rejected(self):
        with pytest.raises(ValueError):
            TemplateOptimizationAdapter("speed")

    def test_invalid_sat_objective_rejected(self):
        with pytest.raises(ValueError):
            SatAdapter(objective="speed")

    def test_invalid_kak_gate_rejected(self):
        with pytest.raises(ValueError):
            KakAdapter("cx")


class TestShimResultParity:
    @pytest.mark.parametrize("constructor, kwargs, key", SHIM_CASES)
    def test_shim_matches_facade_result(self, constructor, kwargs, key):
        circuit = probe_circuit()
        target = spin_qubit_target(3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = constructor(**kwargs).adapt(circuit, target)
        facade = repro.compile(circuit, target, technique=key, use_cache=False)
        assert legacy.technique == facade.technique == key
        assert legacy.cost == facade.cost
        assert legacy.baseline_cost == facade.baseline_cost
        assert legacy.objective_value == facade.objective_value
        assert [s.identifier for s in legacy.chosen_substitutions] == [
            s.identifier for s in facade.chosen_substitutions
        ]
        assert legacy.adapted_circuit.count_ops() == facade.adapted_circuit.count_ops()

    def test_shim_result_carries_a_report(self):
        circuit = probe_circuit()
        target = spin_qubit_target(3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = DirectTranslationAdapter().adapt(circuit, target)
        assert result.report is not None
        assert result.report.stage_names[0] == "route"

    def test_shim_forwards_options(self):
        circuit = probe_circuit()
        target = spin_qubit_target(3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            merged = SatAdapter(
                objective="combined", merge_single_qubit_gates=True, verify=True
            ).adapt(circuit, target)
        facade = repro.compile(
            circuit, target, "sat_p",
            merge_single_qubit_gates=True, verify=True, use_cache=False,
        )
        assert merged.cost == facade.cost
        assert merged.report.options["merge_single_qubit_gates"] is True
