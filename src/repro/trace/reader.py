"""Trace-file loading and aggregation: "where did the milliseconds go".

:func:`load_events` reads one or many JSONL trace files (tolerating a
truncated final line from a killed process); :func:`summarize` turns the
event stream into the analysis the ``python -m repro.trace`` CLI prints:

- per-(layer, span-name) latency rollup (count/total/mean/p50/p95/max);
- per-technique per-pass breakdown (pipeline spans carry the technique);
- solver point-event rollups (restarts, conflicts, theory checks, OMT
  rounds — numeric fields summed, last value kept for gauges);
- slowest-span top-N across the whole trace.

:func:`diff_summaries` compares two summaries pass-by-pass for A/B runs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

PathLike = Union[str, "os.PathLike[str]"]


def load_events(paths: Union[PathLike, Sequence[PathLike]]) -> List[Dict[str, object]]:
    """Load events from one or many trace files, in file order.

    A truncated final line (process killed mid-flush) is skipped rather
    than raising; any other malformed line raises ``ValueError`` with
    the offending location.
    """
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    events: List[Dict[str, object]] = []
    for path in paths:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) or (number == len(lines) - 1
                                            and not lines[-1].strip()):
                    continue  # torn final write from a killed producer
                raise ValueError(
                    f"{os.fspath(path)}:{number}: malformed trace line"
                ) from None
            if isinstance(event, dict):
                events.append(event)
    return events


class Span:
    """One reconstructed span: its begin/end events joined by (pid, id)."""

    __slots__ = ("span_id", "pid", "tid", "name", "layer", "parent",
                 "remote_parent", "start", "duration", "fields")

    def __init__(self, begin: Mapping[str, object]) -> None:
        self.span_id = begin["span"]
        self.pid = begin["pid"]
        self.tid = begin["tid"]
        self.name = begin["name"]
        self.layer = begin["layer"]
        self.parent = begin.get("parent")
        self.start = float(begin["ts"])  # type: ignore[arg-type]
        self.duration: Optional[float] = None
        self.fields: Dict[str, object] = dict(begin.get("fields") or {})  # type: ignore[arg-type]
        #: ``(pid, span)`` of the remote caller, from the propagation header.
        self.remote_parent = parse_remote_parent(self.fields.get("remote_parent"))

    def close(self, end: Mapping[str, object]) -> None:
        self.duration = float(end["dur"])  # type: ignore[arg-type]
        self.fields.update(end.get("fields") or {})  # type: ignore[arg-type]


def parse_remote_parent(value: object) -> Optional[Tuple[int, int]]:
    """Parse a ``"pid:span"`` propagation field into ``(pid, span)``."""
    if not isinstance(value, str):
        return None
    pid_text, sep, span_text = value.partition(":")
    if not sep or not pid_text.isdigit() or not span_text.isdigit():
        return None
    return int(pid_text), int(span_text)


def build_spans(events: Iterable[Mapping[str, object]]) -> List[Span]:
    """Join begin/end events into spans (unclosed spans keep duration None)."""
    spans: Dict[Tuple[object, object], Span] = {}
    ordered: List[Span] = []
    for event in events:
        kind = event.get("kind")
        if kind == "begin":
            span = Span(event)
            spans[(event["pid"], event["span"])] = span
            ordered.append(span)
        elif kind == "end":
            span = spans.get((event["pid"], event["span"]))
            if span is not None:
                span.close(event)
    return ordered


def resolve_parent(span: Span,
                   span_index: Mapping[Tuple[object, object], Span]) -> Optional[Span]:
    """Return a span's parent, following cross-process links if needed.

    Structural parents are process-local; a span whose local parent is
    absent (or that has none) falls back to its ``remote_parent`` — the
    ``pid:span`` identity propagated over HTTP — stitching client,
    gateway, shard, and worker processes into one tree.
    """
    if span.parent is not None:
        local = span_index.get((span.pid, span.parent))
        if local is not None:
            return local
    if span.remote_parent is not None:
        return span_index.get(span.remote_parent)
    return None


def trace_forest(spans: Sequence[Span]) -> Tuple[List[Span], Dict[Tuple[object, object], List[Span]]]:
    """Stitch spans into trees across processes.

    Returns ``(roots, children)`` where ``children`` maps a span's
    ``(pid, span_id)`` to its child spans (local children plus remote
    spans whose propagation header named it).
    """
    span_index = {(span.pid, span.span_id): span for span in spans}
    roots: List[Span] = []
    children: Dict[Tuple[object, object], List[Span]] = {}
    for span in spans:
        parent = resolve_parent(span, span_index)
        if parent is None:
            roots.append(span)
        else:
            children.setdefault((parent.pid, parent.span_id), []).append(span)
    return roots, children


def _stat_block(durations: List[float]) -> Dict[str, float]:
    durations = sorted(durations)
    count = len(durations)
    total = sum(durations)
    def pct(q: float) -> float:
        rank = min(count - 1, max(0, int(round(q * (count - 1)))))
        return durations[rank]
    return {
        "count": count,
        "total_seconds": total,
        "mean_ms": 1e3 * total / count if count else 0.0,
        "p50_ms": 1e3 * pct(0.50),
        "p95_ms": 1e3 * pct(0.95),
        "max_ms": 1e3 * durations[-1] if durations else 0.0,
    }


def summarize(events: Sequence[Mapping[str, object]],
              top: int = 10) -> Dict[str, object]:
    """Aggregate an event stream into the CLI's analysis document."""
    spans = build_spans(events)
    closed = [span for span in spans if span.duration is not None]

    # -- per-(layer, name) latency rollup --------------------------------
    by_name: Dict[Tuple[str, str], List[float]] = {}
    for span in closed:
        by_name.setdefault((str(span.layer), str(span.name)), []).append(
            span.duration)  # type: ignore[arg-type]
    stages = {
        f"{layer}:{name}": _stat_block(durations)
        for (layer, name), durations in sorted(by_name.items())
    }

    # -- per-technique per-pass breakdown --------------------------------
    # Pipeline pass spans carry the technique on their enclosing pipeline
    # span; passes inherit it through the parent chain within a pid.
    span_index = {(span.pid, span.span_id): span for span in spans}

    def technique_of(span: Span) -> str:
        seen = set()
        node: Optional[Span] = span
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            technique = node.fields.get("technique")
            if technique:
                return str(technique)
            node = span_index.get((node.pid, node.parent)) if node.parent else None
        return "unknown"

    techniques: Dict[str, Dict[str, List[float]]] = {}
    for span in closed:
        if span.layer != "pipeline" or not str(span.name).startswith("pass:"):
            continue
        pass_name = str(span.name)[len("pass:"):]
        techniques.setdefault(technique_of(span), {}).setdefault(
            pass_name, []).append(span.duration)  # type: ignore[arg-type]
    technique_breakdown = {
        technique: {
            name: _stat_block(durations)
            for name, durations in sorted(passes.items())
        }
        for technique, passes in sorted(techniques.items())
    }

    # -- solver point-event rollups --------------------------------------
    solver_events: Dict[str, Dict[str, object]] = {}
    for event in events:
        if event.get("kind") != "point" or event.get("layer") != "solver":
            continue
        name = str(event["name"])
        rollup = solver_events.setdefault(name, {"count": 0})
        rollup["count"] = int(rollup["count"]) + 1  # type: ignore[arg-type]
        for key, value in (event.get("fields") or {}).items():  # type: ignore[union-attr]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if key.startswith(("d_", "delta_")):
                rollup[key] = rollup.get(key, 0) + value  # type: ignore[operator]
            else:
                rollup[f"last_{key}"] = value
    solver_rollup = {name: solver_events[name] for name in sorted(solver_events)}

    # -- slowest spans ----------------------------------------------------
    slowest = sorted(closed, key=lambda span: span.duration or 0.0,
                     reverse=True)[:max(0, top)]
    slowest_entries = [
        {
            "name": span.name,
            "layer": span.layer,
            "pid": span.pid,
            "span": span.span_id,
            "duration_ms": 1e3 * (span.duration or 0.0),
            "fields": {key: value for key, value in span.fields.items()
                       if isinstance(value, (int, float, str, bool))},
        }
        for span in slowest
    ]

    layers = sorted({str(event.get("layer")) for event in events
                     if event.get("layer") and event.get("layer") != "trace"})
    roots, _children = trace_forest(spans)
    return {
        "events": len(events),
        "spans": len(spans),
        "unclosed_spans": len(spans) - len(closed),
        "processes": len({span.pid for span in spans}),
        "trace_trees": len(roots),
        "layers": layers,
        "stages": stages,
        "techniques": technique_breakdown,
        "solver": solver_rollup,
        "slowest": slowest_entries,
    }


def pass_totals(summary: Mapping[str, object]) -> Dict[str, float]:
    """Total seconds per pipeline pass across all techniques in a summary."""
    totals: Dict[str, float] = {}
    for passes in summary.get("techniques", {}).values():  # type: ignore[union-attr]
        for name, block in passes.items():
            totals[name] = totals.get(name, 0.0) + float(block["total_seconds"])
    return totals


def diff_summaries(a: Mapping[str, object],
                   b: Mapping[str, object]) -> Dict[str, object]:
    """Compare two summaries: per-stage mean latency deltas (B vs A)."""
    stages_a = a.get("stages", {})
    stages_b = b.get("stages", {})
    rows: List[Dict[str, object]] = []
    for key in sorted(set(stages_a) | set(stages_b)):  # type: ignore[arg-type]
        mean_a = float(stages_a[key]["mean_ms"]) if key in stages_a else None  # type: ignore[index]
        mean_b = float(stages_b[key]["mean_ms"]) if key in stages_b else None  # type: ignore[index]
        row: Dict[str, object] = {"stage": key, "a_mean_ms": mean_a,
                                  "b_mean_ms": mean_b}
        if mean_a and mean_b is not None:
            row["delta_ms"] = mean_b - mean_a
            row["delta_percent"] = 100.0 * (mean_b - mean_a) / mean_a
        rows.append(row)
    return {
        "a_events": a.get("events"),
        "b_events": b.get("events"),
        "stages": rows,
    }


# ---------------------------------------------------------------------------
# Text rendering (the CLI's default output)
# ---------------------------------------------------------------------------
def render_summary(summary: Mapping[str, object]) -> str:
    lines: List[str] = []
    lines.append(
        f"trace: {summary['events']} events, {summary['spans']} spans "
        f"({summary['unclosed_spans']} unclosed), "
        f"{summary.get('processes', '?')} processes, "
        f"{summary.get('trace_trees', '?')} trees, "
        f"layers: {', '.join(summary['layers']) or '-'}"  # type: ignore[arg-type]
    )
    stages = summary.get("stages", {})
    if stages:
        lines.append("")
        lines.append("per-stage latency (layer:name):")
        lines.append(f"  {'stage':<34} {'count':>6} {'total_s':>9} "
                     f"{'mean_ms':>9} {'p50_ms':>8} {'p95_ms':>8}")
        for key, block in stages.items():  # type: ignore[union-attr]
            lines.append(
                f"  {key:<34} {block['count']:>6} "
                f"{block['total_seconds']:>9.4f} {block['mean_ms']:>9.3f} "
                f"{block['p50_ms']:>8.3f} {block['p95_ms']:>8.3f}"
            )
    techniques = summary.get("techniques", {})
    if techniques:
        lines.append("")
        lines.append("per-technique pass breakdown:")
        for technique, passes in techniques.items():  # type: ignore[union-attr]
            total = sum(float(block["total_seconds"]) for block in passes.values())
            lines.append(f"  {technique} (total {total:.4f}s):")
            for name, block in passes.items():
                share = (100.0 * float(block["total_seconds"]) / total
                         if total else 0.0)
                lines.append(
                    f"    {name:<18} {block['total_seconds']:>9.4f}s "
                    f"{share:>5.1f}%  mean {block['mean_ms']:.3f}ms  "
                    f"x{block['count']}"
                )
    solver = summary.get("solver", {})
    if solver:
        lines.append("")
        lines.append("solver events:")
        for name, rollup in solver.items():  # type: ignore[union-attr]
            extras = ", ".join(
                f"{key}={value}" for key, value in rollup.items() if key != "count"
            )
            lines.append(f"  {name:<24} x{rollup['count']}"
                         + (f"  ({extras})" if extras else ""))
    slowest = summary.get("slowest", [])
    if slowest:
        lines.append("")
        lines.append("slowest spans:")
        for entry in slowest:  # type: ignore[union-attr]
            lines.append(
                f"  {entry['duration_ms']:>10.3f}ms  {entry['layer']}:"
                f"{entry['name']} (pid {entry['pid']}, span {entry['span']})"
            )
    return "\n".join(lines)


def render_diff(diff: Mapping[str, object]) -> str:
    lines = [f"diff: A={diff['a_events']} events, B={diff['b_events']} events",
             "",
             f"  {'stage':<34} {'A mean_ms':>10} {'B mean_ms':>10} "
             f"{'delta':>9} {'pct':>8}"]
    for row in diff.get("stages", []):  # type: ignore[union-attr]
        mean_a = row.get("a_mean_ms")
        mean_b = row.get("b_mean_ms")
        a_text = f"{mean_a:.3f}" if mean_a is not None else "-"
        b_text = f"{mean_b:.3f}" if mean_b is not None else "-"
        if "delta_ms" in row:
            delta = f"{row['delta_ms']:+.3f}"
            pct = f"{row['delta_percent']:+.1f}%"
        else:
            delta, pct = "-", "-"
        lines.append(f"  {row['stage']:<34} {a_text:>10} {b_text:>10} "
                     f"{delta:>9} {pct:>8}")
    return "\n".join(lines)
