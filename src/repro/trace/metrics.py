"""In-process per-pass latency metrics fed from the pipeline trace hooks.

The ``/metrics`` endpoint historically exposed per-route latency only;
this registry extends it with per-pipeline-pass histograms (same bucket
bounds and p50/p95 estimation as the server's request metrics) fed from
the exact hook points that emit trace events.  Unlike tracing, the
registry is in-memory aggregation — no file, no events — and is enabled
by the gateway on construction so ``/metrics`` always has pass data,
even when JSONL tracing is off.

The recording path is one flag check when disabled, one lock + histogram
update when enabled; it never allocates event objects.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List

#: Upper bucket bounds (milliseconds); matches the server's route buckets
#: so the two ``/metrics`` sections read the same way.
PASS_LATENCY_BUCKETS_MS = (1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)


def _percentile(sorted_values: List[float], quantile: float) -> float:
    """Nearest-rank percentile of an already sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(quantile * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class _PassStats:
    """Counters and a latency reservoir for one pipeline pass."""

    __slots__ = ("count", "total_seconds", "buckets", "recent")

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.buckets = [0] * (len(PASS_LATENCY_BUCKETS_MS) + 1)
        self.recent: "deque[float]" = deque(maxlen=2048)


class PassMetricsRegistry:
    """Thread-safe per-pass latency histograms with p50/p95 snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._passes: Dict[str, _PassStats] = {}
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def reset(self) -> None:
        with self._lock:
            self._passes.clear()

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            stats = self._passes.get(name)
            if stats is None:
                stats = self._passes[name] = _PassStats()
            stats.count += 1
            stats.total_seconds += seconds
            stats.recent.append(seconds)
            millis = 1e3 * seconds
            for index, bound in enumerate(PASS_LATENCY_BUCKETS_MS):
                if millis <= bound:
                    stats.buckets[index] += 1
                    break
            else:
                stats.buckets[-1] += 1

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-pass counters, histogram and p50/p95 latency."""
        with self._lock:
            passes = {name: (stats.count, stats.total_seconds,
                             list(stats.buckets), sorted(stats.recent))
                      for name, stats in self._passes.items()}
        snapshot: Dict[str, Dict[str, object]] = {}
        for name, (count, total, buckets, latencies) in passes.items():
            histogram = {
                f"le_{bound}ms": buckets[index]
                for index, bound in enumerate(PASS_LATENCY_BUCKETS_MS)
            }
            histogram["le_inf"] = buckets[-1]
            snapshot[name] = {
                "count": count,
                "total_seconds": total,
                "mean_ms": 1e3 * total / count if count else 0.0,
                "p50_ms": 1e3 * _percentile(latencies, 0.50),
                "p95_ms": 1e3 * _percentile(latencies, 0.95),
                "histogram_ms": histogram,
            }
        return snapshot


#: Process-wide registry the pipeline hooks feed (when enabled).
PASS_METRICS = PassMetricsRegistry()


def enable_pass_metrics() -> PassMetricsRegistry:
    """Turn on in-process pass-latency aggregation and return the registry."""
    PASS_METRICS.enable()
    return PASS_METRICS


def observe_pass(name: str, seconds: float) -> None:
    """Record one pass execution (no-op unless the registry is enabled)."""
    if PASS_METRICS.enabled:
        PASS_METRICS.observe(name, seconds)
