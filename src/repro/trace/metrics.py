"""Per-pass latency metrics — a facade over ``repro.telemetry``.

Historically this module kept its own histogram registry; pass timing
now lands in the process-wide telemetry registry
(``repro_pass_duration_seconds``) so one sink feeds the JSON
``/metrics`` block, the Prometheus exposition, and the windowed
percentiles.  The public surface (``PASS_METRICS``, ``observe_pass``,
``enable_pass_metrics``) and the ``/metrics`` JSON shape are unchanged;
``p50_ms``/``p95_ms`` are now interpolated from the lifetime buckets
(not a recency-biased reservoir) and each pass block gains a
``windows`` sub-dict with 1/5/15-minute percentiles.
"""

from __future__ import annotations

from typing import Dict

from repro.telemetry.instruments import PASS_LATENCY
from repro.telemetry.registry import (
    _quantile_from_buckets,
    enable_telemetry,
    telemetry_enabled,
)

#: Upper bucket bounds (milliseconds); matches the server's route buckets
#: so the two ``/metrics`` sections read the same way.
PASS_LATENCY_BUCKETS_MS = (1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)


def _bucket_label(bound_seconds: float) -> str:
    millis = 1e3 * bound_seconds
    return f"le_{int(millis)}ms" if millis == int(millis) else f"le_{millis}ms"


def snapshot_histogram_family(family, label_name: str) -> Dict[str, Dict[str, object]]:
    """JSON block for one labelled histogram family, keyed by label value.

    The shape the gateway's ``/metrics`` always used: lifetime
    ``count``/``mean_ms``/``p50_ms``/``p95_ms`` plus a *non-cumulative*
    ``histogram_ms``, now with a ``windows`` sub-dict of 1/5/15-minute
    percentiles sourced from the registry's sliding ring.
    """
    snapshot: Dict[str, Dict[str, object]] = {}
    for sample in family.snapshot()["samples"]:
        name = sample["labels"].get(label_name, "")
        count = sample["count"]
        total = sample["sum"]
        bounds = [bound for bound, _running in sample["buckets"]]
        # buckets arrive cumulative; the JSON block is non-cumulative.
        flat = []
        previous = 0
        for _bound, running in sample["buckets"]:
            flat.append(running - previous)
            previous = running
        flat.append(count - previous)  # +Inf overflow
        histogram = {_bucket_label(bound): flat[index]
                     for index, bound in enumerate(bounds)}
        histogram["le_inf"] = flat[-1]
        windows = {
            window: {
                "count": stats["count"],
                "p50_ms": 1e3 * stats["p50"],
                "p95_ms": 1e3 * stats["p95"],
                "p99_ms": 1e3 * stats["p99"],
            }
            for window, stats in sample["windows"].items()
        }
        snapshot[name] = {
            "count": count,
            "total_seconds": total,
            "mean_ms": 1e3 * total / count if count else 0.0,
            "p50_ms": 1e3 * _quantile_from_buckets(bounds, flat, count, 0.50),
            "p95_ms": 1e3 * _quantile_from_buckets(bounds, flat, count, 0.95),
            "histogram_ms": histogram,
            "windows": windows,
        }
    return snapshot


class PassMetricsRegistry:
    """Compatibility facade over the telemetry pass-latency family."""

    @property
    def enabled(self) -> bool:
        return telemetry_enabled()

    def enable(self) -> None:
        enable_telemetry()

    def reset(self) -> None:
        PASS_LATENCY._reset()

    def observe(self, name: str, seconds: float) -> None:
        PASS_LATENCY.labels(name).observe(seconds)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-pass counters, histogram and latency stats."""
        return snapshot_histogram_family(PASS_LATENCY, "pass")


#: Process-wide registry the pipeline hooks feed (when enabled).
PASS_METRICS = PassMetricsRegistry()


def enable_pass_metrics() -> PassMetricsRegistry:
    """Turn on in-process pass-latency aggregation and return the registry."""
    PASS_METRICS.enable()
    return PASS_METRICS


def observe_pass(name: str, seconds: float) -> None:
    """Record one pass execution (no-op unless telemetry is enabled)."""
    if not telemetry_enabled():
        return
    PASS_LATENCY.labels(name).observe(seconds)


__all__ = [
    "PASS_LATENCY_BUCKETS_MS",
    "PASS_METRICS",
    "PassMetricsRegistry",
    "enable_pass_metrics",
    "observe_pass",
    "snapshot_histogram_family",
]
