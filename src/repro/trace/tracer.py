"""The structured event tracer: spans, point events, buffered JSONL output.

One :class:`Tracer` owns one append-only JSONL file.  Every line is one
event (see :mod:`repro.trace.schema` for the checked-in schema): a span
``begin``/``end`` pair, a ``point`` event inside the enclosing span, or a
``meta`` header describing the producing process.  Timestamps are
``time.perf_counter()`` (monotonic within a process); parent links are
explicit span ids, so traces merged across processes still reconstruct.

Tracing is **opt-in and near-zero-overhead when off**: every hook in the
compile stack first checks the module-level :func:`tracing_active` flag —
a single global ``bool`` read — and bails out before building any event.
The active tracer is resolved through :func:`current_tracer`, which
consults a context-variable scope first (per-``compile(trace=...)``
overrides, cross-thread span resumption) and the installed global tracer
second (``REPRO_TRACE`` / :func:`start_tracing`).

Writes are thread- and multiprocess-safe: events buffer per tracer under
a lock and flush as one ``os.write`` to an ``O_APPEND`` descriptor, so
complete lines from concurrent writers never interleave mid-line.  A
fork handler drops inherited buffers in the child (the parent flushes its
own copy), preventing duplicated events from process pools.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple, Union

#: Fast-path switch read by every instrumentation hook.  True while a
#: global tracer is installed or at least one scoped activation is live.
_ACTIVE = False

#: Number of live activations (global install counts as one).
_ACTIVE_COUNT = 0
_ACTIVE_LOCK = threading.Lock()

#: Process-wide span id allocator (``next`` on ``count`` is atomic under
#: the GIL).  Span ids are unique per process; readers key by (pid, span).
_SPAN_IDS = itertools.count(1)

try:  # contextvars is 3.7+; repro requires 3.9, so this always succeeds.
    import contextvars

    _SCOPE: "contextvars.ContextVar[Optional[_Scope]]" = contextvars.ContextVar(
        "repro_trace_scope", default=None
    )
except ImportError:  # pragma: no cover - unreachable on supported pythons
    raise


class _Scope:
    """The context-local tracing state: which tracer, which parent span."""

    __slots__ = ("tracer", "span_id")

    def __init__(self, tracer: "Tracer", span_id: Optional[int]) -> None:
        self.tracer = tracer
        self.span_id = span_id


def _activate() -> None:
    global _ACTIVE, _ACTIVE_COUNT
    with _ACTIVE_LOCK:
        _ACTIVE_COUNT += 1
        _ACTIVE = True


def _deactivate() -> None:
    global _ACTIVE, _ACTIVE_COUNT
    with _ACTIVE_LOCK:
        _ACTIVE_COUNT = max(0, _ACTIVE_COUNT - 1)
        _ACTIVE = _ACTIVE_COUNT > 0


def tracing_active() -> bool:
    """True when any tracer (global or scoped) may receive events."""
    return _ACTIVE


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    enabled = False
    closed = False
    path: Optional[str] = None

    def event(self, name: str, layer: str, **fields: object) -> None:
        pass

    def begin(self, name: str, layer: str, **fields: object):
        return None

    def end(self, token, **fields: object) -> None:
        pass

    @contextmanager
    def span(self, name: str, layer: str, **fields: object) -> Iterator[None]:
        yield

    def capture(self) -> None:
        return None

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


#: The shared disabled tracer returned whenever tracing is off.
NULL_TRACER = NullTracer()


class TraceContext:
    """A captured (tracer, span) pair for cross-thread span parenting.

    The service captures the submitting request's context onto the job
    and resumes it on the worker thread, so pipeline and solver spans
    parent correctly even though they run on a different thread.
    """

    __slots__ = ("tracer", "span_id")

    def __init__(self, tracer: "Tracer", span_id: Optional[int]) -> None:
        self.tracer = tracer
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"TraceContext(span={self.span_id}, file={self.tracer.path!r})"


class Tracer:
    """A thread-safe buffered JSONL trace writer with span bookkeeping.

    Parameters
    ----------
    path:
        Trace file; opened in append mode (created if missing), so
        several processes — e.g. sharded servers — can share one file.
    buffer_events:
        Events buffered before an automatic flush.  Each flush is a
        single ``os.write`` of complete lines to the ``O_APPEND``
        descriptor, which keeps concurrent writers line-atomic.
    meta:
        Extra fields recorded on the ``trace_start`` meta event.
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        buffer_events: int = 128,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._fd: Optional[int] = os.open(
            self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )
        self._lock = threading.Lock()
        self._buffer: list = []
        self._buffer_limit = max(1, int(buffer_events))
        self.events_emitted = 0
        header = {"python_pid": os.getpid()}
        if meta:
            header.update(meta)
        self._emit({
            "kind": "meta",
            "ts": time.perf_counter(),
            "wall": time.time(),
            "name": "trace_start",
            "layer": "trace",
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "span": None,
            "fields": header,
        })

    # -- low-level emission ----------------------------------------------
    def _emit(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            if self._fd is None:
                return
            self._buffer.append(line)
            self.events_emitted += 1
            if len(self._buffer) >= self._buffer_limit:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buffer or self._fd is None:
            return
        payload = "".join(self._buffer).encode("utf-8")
        self._buffer.clear()
        os.write(self._fd, payload)

    def flush(self) -> None:
        """Write every buffered event to the file."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        """Flush and close the trace file (idempotent)."""
        with self._lock:
            self._flush_locked()
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    @property
    def closed(self) -> bool:
        return self._fd is None

    # -- events and spans ------------------------------------------------
    def event(self, name: str, layer: str, **fields: object) -> None:
        """Emit a point event inside the current span (if any)."""
        scope = _SCOPE.get()
        self._emit({
            "kind": "point",
            "ts": time.perf_counter(),
            "name": name,
            "layer": layer,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "span": scope.span_id if scope is not None else None,
            "fields": fields,
        })

    def begin(self, name: str, layer: str, **fields: object):
        """Open a span; returns the token :meth:`end` needs.

        The low-level pair exists (beyond :meth:`span`) so callers can
        attach fields computed *during* the span to its ``end`` event —
        the pipeline records each pass's size counters that way.
        """
        span_id = next(_SPAN_IDS)
        parent_scope = _SCOPE.get()
        parent = parent_scope.span_id if parent_scope is not None else None
        started = time.perf_counter()
        self._emit({
            "kind": "begin",
            "ts": started,
            "name": name,
            "layer": layer,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "span": span_id,
            "parent": parent,
            "fields": fields,
        })
        reset = _SCOPE.set(_Scope(self, span_id))
        return (span_id, name, layer, started, reset)

    def end(self, token, **fields: object) -> None:
        """Close a span opened by :meth:`begin`."""
        if token is None:
            return
        span_id, name, layer, started, reset = token
        ended = time.perf_counter()
        _SCOPE.reset(reset)
        self._emit({
            "kind": "end",
            "ts": ended,
            "name": name,
            "layer": layer,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "span": span_id,
            "dur": ended - started,
            "fields": fields,
        })

    @contextmanager
    def span(self, name: str, layer: str, **fields: object) -> Iterator[int]:
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        token = self.begin(name, layer, **fields)
        try:
            yield token[0]
        finally:
            self.end(token)

    # -- cross-thread propagation ----------------------------------------
    def capture(self) -> TraceContext:
        """Capture the current span for resumption on another thread."""
        scope = _SCOPE.get()
        span_id = scope.span_id if scope is not None and scope.tracer is self else None
        return TraceContext(self, span_id)

    @contextmanager
    def activate(self, parent: Optional[int] = None) -> Iterator["Tracer"]:
        """Make this tracer current for the calling context.

        Used for per-call tracers (``compile(trace="file.jsonl")``) and,
        via :func:`resume_context`, for adopting a captured span as the
        parent on a worker thread.
        """
        _activate()
        reset = _SCOPE.set(_Scope(self, parent))
        try:
            yield self
        finally:
            _SCOPE.reset(reset)
            _deactivate()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.events_emitted} events"
        return f"Tracer({self.path!r}, {state})"


# ---------------------------------------------------------------------------
# Ambient tracer management
# ---------------------------------------------------------------------------
_GLOBAL: Optional[Tracer] = None
_GLOBAL_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False

#: Environment variable naming the trace file; when set, tracing starts
#: automatically on first import of :mod:`repro.trace` (including in
#: spawned worker processes, which inherit the environment).
TRACE_ENV_VAR = "REPRO_TRACE"

#: HTTP header carrying the caller's span identity (``"pid:span"``) so a
#: receiving process can record it as ``fields.remote_parent`` and the
#: trace reader can stitch client → gateway → shard into one tree.
TRACE_HEADER = "X-Repro-Trace"


def current_tracer() -> Union[Tracer, NullTracer]:
    """The tracer for the calling context, or the no-op tracer.

    Scoped activations (``compile(trace=...)``, resumed job contexts)
    take precedence over the globally installed tracer.
    """
    if not _ACTIVE:
        return NULL_TRACER
    scope = _SCOPE.get()
    if scope is not None and not scope.tracer.closed:
        return scope.tracer
    tracer = _GLOBAL
    if tracer is not None and not tracer.closed:
        return tracer
    return NULL_TRACER


def start_tracing(
    target: Union[str, "os.PathLike[str]", Tracer, None] = None,
    **tracer_options: object,
) -> Tracer:
    """Install a process-global tracer and return it.

    ``target`` is a file path, an existing :class:`Tracer`, or ``None``
    to read the path from ``REPRO_TRACE``.  Calling again with the same
    path returns the already-installed tracer; a different path replaces
    it (the old tracer is flushed and closed).
    """
    global _GLOBAL, _ATEXIT_REGISTERED
    if target is None:
        target = os.environ.get(TRACE_ENV_VAR)
        if not target:
            raise ValueError(
                "start_tracing() needs a path (or set the REPRO_TRACE "
                "environment variable)"
            )
    with _GLOBAL_LOCK:
        if isinstance(target, Tracer):
            tracer = target
        else:
            path = os.fspath(target)
            if _GLOBAL is not None and not _GLOBAL.closed and _GLOBAL.path == path:
                return _GLOBAL
            tracer = Tracer(path, **tracer_options)
        if _GLOBAL is not None and _GLOBAL is not tracer:
            _GLOBAL.close()
            _deactivate()
        elif _GLOBAL is tracer:
            return tracer
        _GLOBAL = tracer
        _activate()
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_global_at_exit)
            _ATEXIT_REGISTERED = True
    return tracer


def stop_tracing() -> None:
    """Flush, close and uninstall the global tracer (no-op when absent)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            return
        _GLOBAL.close()
        _GLOBAL = None
        _deactivate()


def global_tracer() -> Optional[Tracer]:
    """The installed global tracer, if any (scoped overrides not consulted)."""
    return _GLOBAL


def _close_global_at_exit() -> None:
    tracer = _GLOBAL
    if tracer is not None:
        tracer.close()


def capture_context() -> Optional[TraceContext]:
    """Capture the calling context's tracer + span, or ``None`` when off."""
    tracer = current_tracer()
    if not tracer.enabled:
        return None
    return tracer.capture()


@contextmanager
def resume_context(context: Optional[TraceContext]) -> Iterator[None]:
    """Re-enter a captured trace context (no-op for ``None``)."""
    if context is None or context.tracer.closed:
        yield
        return
    with context.tracer.activate(parent=context.span_id):
        yield


@contextmanager
def scoped_tracer(
    target: Union[None, bool, str, "os.PathLike[str]", Tracer]
) -> Iterator[Union[Tracer, NullTracer]]:
    """Resolve a ``trace=`` argument into an active tracer for one call.

    ============================  =========================================
    ``None``                      ambient tracing (global / resumed scope)
    ``False``                     force tracing off for the call
    ``True``                      the global tracer (auto-started from
                                  ``REPRO_TRACE`` when set; no-op
                                  otherwise)
    path (str / PathLike)         a per-call tracer appending to the path
    :class:`Tracer`               that tracer, activated for the call
    ============================  =========================================
    """
    if target is None:
        yield current_tracer()
        return
    if target is False:
        _activate()  # Keep _ACTIVE truthful while the null scope is live.
        reset = _SCOPE.set(_Scope(NULL_TRACER, None))  # type: ignore[arg-type]
        try:
            yield NULL_TRACER
        finally:
            _SCOPE.reset(reset)
            _deactivate()
        return
    if target is True:
        tracer = _GLOBAL
        if tracer is None and os.environ.get(TRACE_ENV_VAR):
            tracer = start_tracing()
        if tracer is None or tracer.closed:
            yield current_tracer()
            return
        with tracer.activate(parent=tracer.capture().span_id):
            yield tracer
        return
    if isinstance(target, Tracer):
        with target.activate(parent=target.capture().span_id):
            yield target
        return
    # A path: open, trace the call, flush and close.
    tracer = Tracer(os.fspath(target))
    try:
        with tracer.activate():
            yield tracer
    finally:
        tracer.close()


# ---------------------------------------------------------------------------
# Fork hygiene: a forked worker inherits the parent's buffers; the parent
# flushes its own copy, so the child must drop them or events duplicate.
# ---------------------------------------------------------------------------
def _reset_after_fork() -> None:
    tracer = _GLOBAL
    if tracer is not None:
        tracer._lock = threading.Lock()
        tracer._buffer = []


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX in CI
    os.register_at_fork(after_in_child=_reset_after_fork)
