"""``python -m repro.trace``: aggregate and compare JSONL trace files."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.trace.reader import (
    diff_summaries,
    load_events,
    render_diff,
    render_summary,
    summarize,
)
from repro.trace.schema import TraceValidationError, validate_trace


def _print(text: str) -> None:
    """Print, tolerating a closed pipe (``... | head`` is the normal use)."""
    try:
        print(text)
    except BrokenPipeError:
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Aggregate repro trace files: per-stage/per-technique "
                    "latency, solver event rollups, slowest spans.",
    )
    parser.add_argument("traces", nargs="*",
                        help="trace file(s) to aggregate (merged)")
    parser.add_argument("--top", type=int, default=10,
                        help="how many slowest spans to list (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    parser.add_argument("--validate", action="store_true",
                        help="validate every event against the schema first")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"),
                        help="compare two traces instead of summarizing")
    args = parser.parse_args(argv)

    if args.diff:
        if args.traces:
            parser.error("--diff takes exactly two files; drop the "
                         "positional trace arguments")
        summary_a = summarize(load_events(args.diff[0]), top=args.top)
        summary_b = summarize(load_events(args.diff[1]), top=args.top)
        diff = diff_summaries(summary_a, summary_b)
        _print(json.dumps(diff, indent=2) if args.json else render_diff(diff))
        return 0

    if not args.traces:
        parser.error("give at least one trace file (or --diff A B)")
    events = load_events(args.traces)
    if args.validate:
        try:
            validate_trace(events)
        except TraceValidationError as error:
            print(f"trace validation failed: {error}", file=sys.stderr)
            return 1
    summary = summarize(events, top=args.top)
    _print(json.dumps(summary, indent=2) if args.json else render_summary(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
