"""The checked-in trace event schema and structural validators.

Every line of a trace file is one JSON object.  The schema is small and
deliberately flat so traces stay greppable:

========  ==================================================================
``kind``  ``meta`` | ``begin`` | ``end`` | ``point``
``ts``    ``time.perf_counter()`` seconds — monotonic within one process
``name``  event name, e.g. ``http.request``, ``pass:solve``, ``sat.restart``
``layer`` ``server`` | ``service`` | ``api`` | ``pipeline`` | ``solver`` |
          ``golden`` (plus ``trace`` for the ``meta`` header)
``pid``   producing process id
``tid``   producing thread id
``span``  span id: the opened span (``begin``/``end``), the enclosing span
          or ``null`` (``point``), ``null`` (``meta``)
``fields`` free-form JSON object with event-specific payload
========  ==================================================================

``begin`` events additionally carry ``parent`` (enclosing span id or
``null``); ``end`` events carry ``dur`` (seconds).  ``meta`` events carry
``wall`` (``time.time()``) so perf-counter timestamps can be anchored to
wall-clock time.

Spans begun on behalf of a *remote* caller (another process that sent an
``X-Repro-Trace`` header) record the caller as ``fields.remote_parent``
(``"pid:span"``).  The structural ``parent`` stays process-local, so the
per-process invariants below are unaffected; the reader stitches
processes together through ``remote_parent``.

:func:`validate_trace` checks the *structural* invariants the tests rely
on: well-formed span nesting per thread, parents that exist within the
same process, and per-thread monotonic timestamps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

#: Event kinds.
KINDS = ("meta", "begin", "end", "point")

#: Layers instrumented by the subsystem (``meta`` headers use ``trace``).
LAYERS = ("trace", "client", "server", "service", "api", "pipeline", "solver",
          "golden")

#: Keys every event must carry, regardless of kind.
REQUIRED_KEYS = ("kind", "ts", "name", "layer", "pid", "tid", "span", "fields")

#: Additional per-kind required keys.
KIND_KEYS: Dict[str, Tuple[str, ...]] = {
    "meta": ("wall",),
    "begin": ("parent",),
    "end": ("dur",),
    "point": (),
}


class TraceValidationError(ValueError):
    """A trace event (or event stream) violates the schema."""


def validate_event(event: Mapping[str, object], index: int = -1) -> None:
    """Validate a single event against the schema; raise on violation."""
    where = f"event {index}" if index >= 0 else "event"
    for key in REQUIRED_KEYS:
        if key not in event:
            raise TraceValidationError(f"{where}: missing required key {key!r}")
    kind = event["kind"]
    if kind not in KINDS:
        raise TraceValidationError(f"{where}: unknown kind {kind!r}")
    for key in KIND_KEYS[kind]:  # type: ignore[index]
        if key not in event:
            raise TraceValidationError(f"{where}: {kind} event missing key {key!r}")
    if event["layer"] not in LAYERS:
        raise TraceValidationError(f"{where}: unknown layer {event['layer']!r}")
    if not isinstance(event["ts"], (int, float)):
        raise TraceValidationError(f"{where}: ts must be a number")
    if not isinstance(event["name"], str) or not event["name"]:
        raise TraceValidationError(f"{where}: name must be a non-empty string")
    for key in ("pid", "tid"):
        if not isinstance(event[key], int):
            raise TraceValidationError(f"{where}: {key} must be an integer")
    if not isinstance(event["fields"], dict):
        raise TraceValidationError(f"{where}: fields must be an object")
    if kind in ("begin", "end") and not isinstance(event["span"], int):
        raise TraceValidationError(f"{where}: {kind} event needs an integer span id")
    if kind == "end":
        dur = event["dur"]
        if not isinstance(dur, (int, float)) or dur < 0:
            raise TraceValidationError(f"{where}: dur must be a non-negative number")


def validate_trace(events: Iterable[Mapping[str, object]]) -> int:
    """Validate a full event stream; returns the number of events checked.

    Beyond per-event shape, enforces:

    - **nesting**: per (pid, tid), ``begin``/``end`` pair up LIFO;
    - **parenting**: a ``begin``'s ``parent`` names a span previously
      begun in the same process (ended or not — cross-thread job spans
      legitimately parent under a still-open submitter span);
    - **monotonic time**: per (pid, tid), timestamps never decrease.
    """
    open_stacks: Dict[Tuple[int, int], List[int]] = {}
    known_spans: Dict[int, set] = {}
    last_ts: Dict[Tuple[int, int], float] = {}
    count = 0
    for index, event in enumerate(events):
        validate_event(event, index)
        count += 1
        pid = event["pid"]  # type: ignore[assignment]
        key = (pid, event["tid"])  # type: ignore[arg-type]
        ts = float(event["ts"])  # type: ignore[arg-type]
        previous = last_ts.get(key)
        if previous is not None and ts < previous:
            raise TraceValidationError(
                f"event {index}: timestamp went backwards on thread {key} "
                f"({ts} < {previous})"
            )
        last_ts[key] = ts
        kind = event["kind"]
        if kind == "begin":
            parent = event["parent"]
            if parent is not None and parent not in known_spans.setdefault(pid, set()):
                raise TraceValidationError(
                    f"event {index}: parent span {parent} never begun in pid {pid}"
                )
            known_spans.setdefault(pid, set()).add(event["span"])
            open_stacks.setdefault(key, []).append(event["span"])  # type: ignore[arg-type]
        elif kind == "end":
            stack = open_stacks.get(key, [])
            if not stack or stack[-1] != event["span"]:
                raise TraceValidationError(
                    f"event {index}: end of span {event['span']} does not match "
                    f"innermost open span {stack[-1] if stack else None} on {key}"
                )
            stack.pop()
    return count
