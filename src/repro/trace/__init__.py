"""``repro.trace``: opt-in structured event tracing across the stack.

Enable globally with :func:`start_tracing` (or the ``REPRO_TRACE``
environment variable, honoured automatically on import — including in
spawned worker processes, which inherit the environment), per call with
``compile(..., trace="run.jsonl")``, or per component (service/server
constructors take ``trace=``).  When off, every instrumentation hook
costs one module-global flag read.

Analyze traces with :mod:`repro.trace.reader` or the
``python -m repro.trace`` CLI.
"""

from __future__ import annotations

import os

from repro.trace.metrics import (
    PASS_METRICS,
    PassMetricsRegistry,
    enable_pass_metrics,
    observe_pass,
)
from repro.trace.reader import (
    build_spans,
    diff_summaries,
    load_events,
    parse_remote_parent,
    pass_totals,
    resolve_parent,
    summarize,
    trace_forest,
)
from repro.trace.schema import TraceValidationError, validate_event, validate_trace
from repro.trace.tracer import (
    NULL_TRACER,
    TRACE_ENV_VAR,
    TRACE_HEADER,
    NullTracer,
    TraceContext,
    Tracer,
    capture_context,
    current_tracer,
    global_tracer,
    resume_context,
    scoped_tracer,
    start_tracing,
    stop_tracing,
    tracing_active,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PASS_METRICS",
    "PassMetricsRegistry",
    "TRACE_ENV_VAR",
    "TRACE_HEADER",
    "TraceContext",
    "TraceValidationError",
    "Tracer",
    "build_spans",
    "capture_context",
    "current_tracer",
    "diff_summaries",
    "enable_pass_metrics",
    "global_tracer",
    "load_events",
    "observe_pass",
    "parse_remote_parent",
    "pass_totals",
    "resolve_parent",
    "resume_context",
    "scoped_tracer",
    "start_tracing",
    "stop_tracing",
    "summarize",
    "trace_forest",
    "tracing_active",
    "validate_event",
    "validate_trace",
]

# REPRO_TRACE in the environment turns tracing on for this process the
# moment the package is imported — the mechanism by which spawned/forked
# service workers and sharded server processes join the parent's trace.
if os.environ.get(TRACE_ENV_VAR):
    try:
        start_tracing()
    except OSError:  # unwritable path: tracing silently stays off
        pass
