"""The async compilation service: bounded queue, worker pool, dedup, futures.

:class:`CompilationService` turns the synchronous :func:`repro.compile`
into a long-lived server-side component:

* ``submit()`` enqueues a compilation and returns a :class:`JobHandle`
  immediately; ``result()`` / ``status()`` / ``cancel()`` operate on it.
* The job queue is **bounded** (``max_pending``): when it is full,
  ``submit(block=False)`` raises :class:`ServiceSaturatedError` instead
  of buffering unboundedly — the backpressure signal a front end needs.
* Identical concurrent requests (same circuit/target/technique/options
  fingerprint) **coalesce** onto one in-flight job: N callers, one
  compile, N futures resolved from the same result.
* Workers are threads by default (the compile pipeline is pure Python
  but releases the GIL inside numpy kernels); ``mode="process"``
  dispatches the actual compilation to a process pool instead, for
  CPU-bound SMT-heavy workloads.
* ``shutdown()`` is graceful: queued jobs finish (or are cancelled with
  ``cancel_pending=True``) and workers exit cleanly.

When constructed with a ``store`` (a
:class:`repro.service.PersistentResultStore`, or a path), the service
installs it behind :func:`repro.compile`, so every compilation — from
this service or from plain ``repro.compile`` calls — reads and writes
the shared L1 → L2 cache stack.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.api.cache import (
    GLOBAL_CACHE,
    install_persistent_store,
    persistent_store,
    store_result,
    uninstall_persistent_store,
)
from repro.api.compile import compile as _facade_compile
from repro.api.compile import _effective_options
from repro.api.fingerprints import cache_key
from repro.api.registry import resolve_technique
from repro.circuits.circuit import QuantumCircuit
from repro.hardware.target import Target
from repro.resilience.budget import (
    Budget,
    CompileCancelled,
    CompileDeadlineExceeded,
    budget_scope,
)
from repro.resilience.faults import maybe_fault
from repro.service.store import PersistentResultStore
from repro.telemetry.instruments import (
    SCHEDULER_JOBS,
    STORE_BYTES,
    STORE_EVENTS,
    WORKER_UTILIZATION,
    record_job_event,
    record_scheduler_saturation,
)
from repro.telemetry.registry import REGISTRY, telemetry_enabled
from repro.trace.tracer import (
    TraceContext,
    Tracer,
    capture_context,
    current_tracer,
    resume_context,
    start_tracing,
    stop_tracing,
)


class ServiceSaturatedError(RuntimeError):
    """Raised by ``submit(block=False)`` when the job queue is full."""


class WorkerCrashedError(RuntimeError):
    """A process worker died repeatedly while compiling one job.

    Raised to the job's waiters only after the scheduler has respawned
    the pool and retried the job up to its bounded retry budget.
    """


def _json_safe(value):
    """Coerce a statistics value into plain JSON-serializable types.

    Counters can arrive as numpy integers/floats (cost math is
    numpy-backed) and future stats sources may hand back tuples, sets or
    custom objects; ``/metrics`` serializes the statistics verbatim, so
    everything is normalized here: mappings to ``dict`` (string keys),
    sequences/sets to ``list``, numpy scalars through ``item()``, bools/
    ints/floats/strings/None verbatim, anything else through ``str``.
    """
    if isinstance(value, dict):
        return {str(key): _json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(entry) for entry in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        # Covers numpy scalar subclasses of Python numbers too, but
        # float('inf')/nan are not JSON — degrade those to strings.
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            return str(value)
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            pass
    return str(value)


class JobStatus(str, Enum):
    """Lifecycle states of a submitted compilation job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class _Job:
    """One queued compilation with its execution future and dedup key."""

    job_id: int
    key: Optional[tuple]
    circuit: QuantumCircuit
    target: Target
    technique: str
    use_cache: bool
    options: Dict[str, object]
    #: The execution future the worker resolves; per-caller front futures
    #: (one per coalesced submit) are fed from it on completion.
    future: Future = field(default_factory=Future)
    fronts: List[Future] = field(default_factory=list)
    status: JobStatus = JobStatus.QUEUED
    #: Wall-clock + monotonic lifecycle stamps (monotonic pairs give the
    #: queue-wait and run durations; wall stamps go to status payloads).
    submitted_wall: float = field(default_factory=time.time)
    submitted_mono: float = field(default_factory=time.monotonic)
    started_wall: Optional[float] = None
    started_mono: Optional[float] = None
    finished_wall: Optional[float] = None
    finished_mono: Optional[float] = None
    #: Submitter's trace context, resumed on the worker thread so the
    #: job span parents under the submitting request's span.
    trace_context: Optional[TraceContext] = None
    #: Compile deadline parameters (carried on the budget below) and the
    #: cooperative budget itself.  The budget exists from submit time so
    #: `cancel()` can interrupt the job at any point of its lifecycle; its
    #: deadline clock is armed only when the job starts running, so queue
    #: wait never counts against the compile timeout.
    timeout: Optional[float] = None
    budget: Budget = field(default_factory=lambda: Budget(arm=False))
    #: Process-pool crash recovery: how many times this job was retried
    #: after a worker death.
    attempts: int = 0

    @property
    def waiters(self) -> int:
        """How many submit() calls share this job (1 = no dedup)."""
        return len(self.fronts)

    def timing(self) -> Dict[str, float]:
        """Lifecycle timestamps and derived waits (JSON-ready).

        ``queue_wait_seconds`` and ``run_seconds`` come from the
        monotonic clock, so they stay correct across wall-clock jumps.
        """
        timing: Dict[str, float] = {"submitted_at": self.submitted_wall}
        if self.started_mono is not None:
            timing["started_at"] = self.started_wall
            timing["queue_wait_seconds"] = self.started_mono - self.submitted_mono
        if self.finished_mono is not None:
            timing["finished_at"] = self.finished_wall
            timing["run_seconds"] = self.finished_mono - (
                self.started_mono if self.started_mono is not None
                else self.submitted_mono
            )
            timing["total_seconds"] = self.finished_mono - self.submitted_mono
        return timing


class JobHandle:
    """A caller-facing reference to one (possibly shared) compilation job.

    Each handle owns its *own* front future: cancelling one caller's
    handle never cancels the result out from under the other callers it
    was coalesced with — the shared compilation itself is only cancelled
    once every attached handle has been.
    """

    def __init__(self, service: "CompilationService", job: _Job,
                 front: Future) -> None:
        self._service = service
        self._job = job
        self._front = front

    @property
    def job_id(self) -> int:
        """Service-unique identifier of the underlying (shared) job."""
        return self._job.job_id

    @property
    def technique(self) -> str:
        """Canonical technique key the job compiles with."""
        return self._job.technique

    def status(self) -> JobStatus:
        """Current lifecycle state (of this handle, not its siblings)."""
        if self._front.cancelled():
            return JobStatus.CANCELLED
        return self._job.status

    def done(self) -> bool:
        """True once this handle finished (done, failed or cancelled)."""
        return self._front.done()

    def result(self, timeout: Optional[float] = None):
        """Block for the :class:`repro.core.AdaptationResult`."""
        return self._front.result(timeout=timeout)

    def timing(self) -> Dict[str, float]:
        """Lifecycle timestamps of the underlying job: ``submitted_at``,
        and once known ``started_at``/``queue_wait_seconds`` and
        ``finished_at``/``run_seconds``/``total_seconds``."""
        return self._job.timing()

    def cancel(self) -> bool:
        """Cancel this handle; the shared job is cancelled only when no
        other caller is still waiting on it.  A job that is already
        *running* is interrupted cooperatively: its budget's cancel flag
        is raised and the compile unwinds with
        :class:`repro.resilience.CompileCancelled` at the next solver or
        pipeline checkpoint."""
        return self._service._cancel_front(self._job, self._front)

    def add_done_callback(self, callback) -> None:
        """Attach a callback to this handle's future (standard
        :meth:`concurrent.futures.Future.add_done_callback` semantics)."""
        self._front.add_done_callback(callback)

    def __repr__(self) -> str:
        return (f"JobHandle(id={self.job_id}, technique={self.technique!r}, "
                f"status={self.status().value})")


def _compile_in_subprocess(payload):
    """Process-pool entry point: compile one job in a fresh interpreter.

    The deadline travels as payload data (a context-var budget cannot
    cross the process boundary): the child enforces it — including the
    degradation ladder — itself.  Cooperative *cancellation* cannot reach
    a subprocess; the parent abandons the wait instead (see
    ``CompilationService._await_pool_future``).
    """
    (circuit, target, technique, use_cache, options,
     timeout, on_deadline, fallback, poison) = payload
    if poison:
        # Fault injection: the parent counted a ``worker.compile``/``die``
        # fault at dispatch (parent-side counters survive worker death,
        # so ``nth`` means "the nth dispatch overall" — a child-side
        # counter would reset with every respawned worker and kill the
        # pool forever).
        os._exit(17)
    return _facade_compile(circuit, target, technique, use_cache=use_cache,
                           timeout=timeout, on_deadline=on_deadline,
                           fallback=fallback, **options)


class CompilationService:
    """An asynchronous, deduplicating front end over :func:`repro.compile`.

    Parameters
    ----------
    workers:
        Worker pool size.
    max_pending:
        Bound on the number of queued (not yet running) jobs.
    store:
        Optional persistent L2 store — a
        :class:`repro.service.PersistentResultStore` or a directory path.
        Installed behind :func:`repro.compile` for the service's lifetime
        (detached again on :meth:`shutdown` if this service installed it).
    mode:
        ``"thread"`` (default) runs compilations on the worker threads;
        ``"process"`` dispatches them to a process pool of the same size
        (results are merged back into this process's cache tiers).
    compile_fn:
        Injection point for tests: the callable that performs one
        compilation, signature-compatible with :func:`repro.compile`.
        It runs inside the job's budget scope, so an injected function
        that calls :func:`repro.resilience.check_budget` participates in
        deadlines and cancellation like the real pipeline does.
    worker_retries:
        Process mode only: how many times a job is re-dispatched after a
        pool-worker death before its waiters see
        :class:`WorkerCrashedError` (the pool itself is respawned either
        way).
    retry_backoff:
        Initial delay in seconds between crash retries (doubles per
        attempt).
    trace:
        Optional structured tracing for the service's lifetime: a JSONL
        path or a :class:`repro.trace.Tracer`, installed as the global
        tracer (see :mod:`repro.trace`).  A tracer this service started
        is stopped again on :meth:`shutdown`.
    """

    def __init__(
        self,
        workers: int = 4,
        max_pending: int = 256,
        store: Union[PersistentResultStore, str, None] = None,
        mode: str = "thread",
        compile_fn: Optional[Callable] = None,
        trace: Union[str, Tracer, None] = None,
        worker_retries: int = 2,
        retry_backoff: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError("the service needs at least one worker")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        self.workers = workers
        self.mode = mode
        self._compile_fn = compile_fn or _facade_compile
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue(maxsize=max_pending)
        self._lock = threading.Lock()
        self._inflight: Dict[tuple, _Job] = {}
        self._jobs: Dict[int, _Job] = {}
        self._next_id = 0
        self._shutdown = False
        self._started_at = time.monotonic()
        self._busy_workers = 0
        self._busy_seconds = 0.0
        self._worker_retries = max(0, worker_retries)
        self._retry_backoff = max(0.0, retry_backoff)
        self._counters = {
            "submitted": 0,
            "deduplicated": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "worker_crashes": 0,
            "degraded": 0,
        }
        self._portfolio_wins: Dict[str, int] = {}
        self._listeners: List[Callable[[str, Dict[str, object]], None]] = []

        self._owns_tracer = False
        if trace is not None:
            start_tracing(trace)
            self._owns_tracer = True

        if isinstance(store, str):
            # Lazy import: the cluster package sits above the service
            # layer; resolving here keeps spec strings ("dir:...",
            # "replicated:...?peers=...") usable everywhere a store
            # argument is, without a module-level upward import.
            from repro.cluster.backends import resolve_store_backend

            store = resolve_store_backend(store)
        self.store = store
        self._installed_store = False
        if store is not None and persistent_store() is not store:
            install_persistent_store(store)
            self._installed_store = True

        self._pool: Optional[ProcessPoolExecutor] = (
            ProcessPoolExecutor(max_workers=workers) if mode == "process" else None
        )
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-service-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

        # Scrape-time refresh of values the hot path does not push:
        # lifecycle counters, utilization, store bytes/evictions.  Keyed
        # "service" so a newer service instance replaces, never stacks.
        REGISTRY.register_collector("service", self._collect_telemetry)

    # -- lifecycle listeners ---------------------------------------------
    def add_listener(
        self, listener: Callable[[str, Dict[str, object]], None]
    ) -> None:
        """Subscribe to job lifecycle events.

        ``listener(event, info)`` fires at every transition — ``queued``,
        ``dedup``, ``running``, ``done``, ``failed``, ``cancelled``,
        ``interrupted`` — with ``info`` carrying at least ``job_id``,
        ``status``, ``technique`` and ``waiters``.  Listeners run on the
        transitioning thread, *outside* the service lock: they may call
        back into the service, but must return quickly (the event broker
        hands off to its own condition variable for exactly this reason).
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(
        self, listener: Callable[[str, Dict[str, object]], None]
    ) -> None:
        """Unsubscribe a listener; unknown listeners are ignored."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _notify(self, job: _Job, event: str, **extra: object) -> None:
        """Fan one lifecycle event out to listeners (never under the lock).

        A listener that raises is dropped from the fan-out for this event
        only; event delivery must never take down a worker thread.
        """
        with self._lock:
            listeners = list(self._listeners)
        if not listeners:
            return
        record_job_event(event)
        info: Dict[str, object] = {
            "job_id": job.job_id,
            "event": event,
            "status": job.status.value,
            "technique": job.technique,
            "waiters": job.waiters,
        }
        info.update(extra)
        for listener in listeners:
            try:
                listener(event, info)
            except Exception:  # noqa: BLE001 - listeners must not kill workers
                pass

    def saturation(self) -> float:
        """Admission pressure in ``[0, 1]``: pending work over capacity.

        Pending counts queued plus running jobs (the queue's own
        accounting); capacity is the queue bound plus the worker count.
        The load shedder reads this to decide which keys to admit.
        """
        capacity = self._queue.maxsize + self.workers
        if capacity <= 0:
            return 0.0
        return min(1.0, self._queue.unfinished_tasks / capacity)

    # -- submission ------------------------------------------------------
    def submit(
        self,
        circuit: QuantumCircuit,
        target: Target,
        technique: str = "sat_p",
        *,
        use_cache: bool = True,
        block: bool = True,
        timeout: Optional[float] = None,
        on_deadline: Optional[str] = None,
        fallback=None,
        queue_timeout: Optional[float] = None,
        **options: object,
    ) -> JobHandle:
        """Enqueue one compilation and return its :class:`JobHandle`.

        Identical concurrent requests (same cache key) coalesce onto one
        in-flight job.  With ``block=False`` a full queue raises
        :class:`ServiceSaturatedError` instead of waiting (and
        ``queue_timeout`` bounds how long a blocking submit waits for a
        queue slot).

        ``timeout`` is the *compile deadline* in seconds, armed when the
        job starts running (queue wait does not count); ``on_deadline``
        and ``fallback`` select the degradation policy, exactly as on
        :func:`repro.compile`.  Deadline parameters never enter the dedup
        key, so later identical submissions coalesce onto the first job
        and inherit its budget.
        """
        if self._shutdown:
            raise RuntimeError("cannot submit to a shut-down CompilationService")
        spec = resolve_technique(technique)
        spec.validate_options(dict(options))
        effective = _effective_options(spec, dict(options))
        # Validates timeout/on_deadline up front (before anything is
        # enqueued) and gives cancel() its interruption flag.
        budget = Budget(timeout=timeout, on_deadline=on_deadline or "raise",
                        fallback=fallback, arm=False)
        key = (
            cache_key(circuit, target, spec.key, effective) if use_cache else None
        )

        tracer = current_tracer()
        front = Future()
        dedup_of: Optional[_Job] = None
        with self._lock:
            self._counters["submitted"] += 1
            if key is not None:
                running = self._inflight.get(key)
                # The done() check and the append happen under the same
                # lock as the completion snapshot in _run_job, so a front
                # can never be attached to a job that already resolved.
                if running is not None and not running.future.done():
                    running.fronts.append(front)
                    self._counters["deduplicated"] += 1
                    dedup_of = running
            if dedup_of is None:
                self._next_id += 1
                job = _Job(
                    job_id=self._next_id,
                    key=key,
                    circuit=circuit,
                    target=target,
                    technique=spec.key,
                    use_cache=use_cache,
                    options=effective,
                    trace_context=capture_context(),
                    timeout=timeout,
                    budget=budget,
                )
                job.fronts.append(front)
                self._jobs[job.job_id] = job
                if key is not None:
                    self._inflight[key] = job
        if dedup_of is not None:
            tracer.event("job.dedup", "service", job_id=dedup_of.job_id,
                         technique=spec.key, waiters=dedup_of.waiters)
            self._notify(dedup_of, "dedup")
            return JobHandle(self, dedup_of, front)
        tracer.event("job.submit", "service", job_id=job.job_id,
                     technique=spec.key, circuit=circuit.name)
        try:
            self._queue.put(job, block=block, timeout=queue_timeout)
        except queue.Full:
            with self._lock:
                coalesced = job.waiters > 1
                if not coalesced:
                    job.status = JobStatus.CANCELLED
                    self._counters["cancelled"] += 1
                    self._counters["submitted"] -= 1
                    self._inflight.pop(key, None)
                    self._jobs.pop(job.job_id, None)
            if coalesced:
                # Rare race: another submit coalesced onto this job while
                # our put was failing.  It must not be stranded, so the
                # job is enqueued anyway (accepting one over-budget slot)
                # rather than cancelled out from under the other caller.
                self._queue.put(job)
                self._observe_saturation()
                self._notify(job, "queued")
                return JobHandle(self, job, front)
            job.future.cancel()
            front.cancel()
            self._notify(job, "cancelled", reason="queue_full")
            raise ServiceSaturatedError(
                f"job queue is full ({self._queue.maxsize} pending)"
            ) from None
        self._observe_saturation()
        self._notify(job, "queued")
        # Close the submit/shutdown race: if shutdown() ran while the put
        # was in flight, this job may sit behind the worker sentinels and
        # would never resolve.  If so (the cancel succeeds only when no
        # worker picked it up), reject the submission explicitly.
        if self._shutdown and job.future.cancel():
            with self._lock:
                job.status = JobStatus.CANCELLED
                self._counters["cancelled"] += 1
                self._counters["submitted"] -= 1
                self._inflight.pop(key, None)
                self._jobs.pop(job.job_id, None)
            front.cancel()
            self._notify(job, "cancelled", reason="shutdown")
            raise RuntimeError(
                "CompilationService was shut down while the job was being "
                "submitted"
            )
        return JobHandle(self, job, front)

    def compile(self, circuit: QuantumCircuit, target: Target,
                technique: str = "sat_p", *, timeout: Optional[float] = None,
                **options: object):
        """Synchronous convenience: ``submit(...).result(timeout)``."""
        return self.submit(circuit, target, technique, **options).result(timeout)

    # -- job introspection ----------------------------------------------
    def _resolve(self, handle_or_id: Union[JobHandle, int]) -> _Job:
        if isinstance(handle_or_id, JobHandle):
            return handle_or_id._job
        with self._lock:
            job = self._jobs.get(handle_or_id)
        if job is None:
            raise KeyError(f"unknown job id {handle_or_id!r}")
        return job

    def status(self, handle_or_id: Union[JobHandle, int]) -> JobStatus:
        """Current :class:`JobStatus` of a handle or job."""
        if isinstance(handle_or_id, JobHandle):
            return handle_or_id.status()
        return self._resolve(handle_or_id).status

    def result(self, handle_or_id: Union[JobHandle, int],
               timeout: Optional[float] = None):
        """Block for a job's :class:`repro.core.AdaptationResult`."""
        if isinstance(handle_or_id, JobHandle):
            return handle_or_id.result(timeout=timeout)
        return self._resolve(handle_or_id).future.result(timeout=timeout)

    def cancel(self, handle_or_id: Union[JobHandle, int]) -> bool:
        """Cancel a handle — or, by job id, every waiter of a job.

        A coalesced job is only cancelled once all of its waiters are.
        Queued jobs are reaped immediately; a *running* job is
        interrupted cooperatively through its budget — the compile
        unwinds with :class:`repro.resilience.CompileCancelled` at its
        next solver/pipeline checkpoint and the job books as cancelled.
        (Process-mode jobs are abandoned rather than interrupted: the
        child finishes its bounded compile, but no waiter blocks on it.)
        """
        if isinstance(handle_or_id, JobHandle):
            return handle_or_id.cancel()
        job = self._resolve(handle_or_id)
        with self._lock:
            fronts = list(job.fronts)
        cancelled = False
        for front in fronts:
            cancelled = self._cancel_front(job, front) or cancelled
        return cancelled

    def _cancel_front(self, job: _Job, front: Future) -> bool:
        """Cancel one waiter's front; reap the job when nobody is left."""
        if not front.cancel():
            return False
        with self._lock:
            abandoned = all(f.cancelled() for f in job.fronts)
        if abandoned:
            if job.future.cancel():
                with self._lock:
                    job.status = JobStatus.CANCELLED
                    self._counters["cancelled"] += 1
                    job.finished_wall = time.time()
                    job.finished_mono = time.monotonic()
                    if job.key is not None and self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                current_tracer().event("job.cancel", "service",
                                       job_id=job.job_id,
                                       technique=job.technique)
                self._notify(job, "cancelled")
            elif not job.future.done():
                # Already running: raise the budget's cancel flag; the
                # worker observes it at the next checkpoint, unwinds with
                # CompileCancelled and books the job as cancelled.
                job.budget.cancel("all waiters cancelled")
                current_tracer().event("job.interrupt", "service",
                                       job_id=job.job_id,
                                       technique=job.technique)
                self._notify(job, "interrupted")
        return True

    # -- worker loop -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # Shutdown sentinel.
                self._queue.task_done()
                return
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: _Job) -> None:
        if not job.future.set_running_or_notify_cancel():
            return  # Cancelled while queued; counters already updated.
        with self._lock:
            job.status = JobStatus.RUNNING
            self._busy_workers += 1
            self._observe_saturation()
        self._notify(job, "running")
        started = time.monotonic()
        job.started_wall = time.time()
        job.started_mono = started
        # The deadline clock starts when the job starts running; queue
        # wait never counts against the compile timeout.
        job.budget.arm()
        try:
            # Resuming the submitter's captured context parents the job
            # span under the submitting request's span even though this
            # runs on a worker thread (no-op when tracing is off).
            with resume_context(job.trace_context):
                tracer = current_tracer()
                with tracer.span("job", "service", job_id=job.job_id,
                                 technique=job.technique,
                                 circuit=job.circuit.name,
                                 waiters=job.waiters,
                                 queue_wait_seconds=started - job.submitted_mono,
                                 mode=self.mode):
                    if self._pool is not None:
                        result = self._run_in_pool(job, tracer)
                        if job.use_cache:
                            # The subprocess populated its own caches; merge
                            # the result into this process's L1/L2 tiers.
                            store_result(job.key, result)
                    else:
                        # The budget scope makes the facade's solver/pass
                        # checkpoints honor this job's deadline and its
                        # cancel flag; the facade also reads the budget's
                        # on_deadline/fallback policy from the scope.
                        with budget_scope(job.budget):
                            result = self._compile_fn(
                                job.circuit, job.target, job.technique,
                                use_cache=job.use_cache, **job.options,
                            )
        except BaseException as error:  # noqa: BLE001 - forwarded to the futures
            cancelled = isinstance(error, CompileCancelled)
            with self._lock:
                if cancelled:
                    job.status = JobStatus.CANCELLED
                    self._counters["cancelled"] += 1
                else:
                    job.status = JobStatus.FAILED
                    self._counters["failed"] += 1
                self._finish(job, started)
                # Resolving the execution future under the lock makes the
                # dedup done() check atomic with this completion: no front
                # can be attached after the snapshot below.
                job.future.set_exception(error)
                fronts = list(job.fronts)
            for front in fronts:
                if front.set_running_or_notify_cancel():
                    front.set_exception(error)
            self._notify(job, "cancelled" if cancelled else "failed",
                         error=type(error).__name__)
        else:
            report = getattr(result, "report", None)
            with self._lock:
                job.status = JobStatus.DONE
                self._counters["completed"] += 1
                if report is not None and report.degraded_from:
                    self._counters["degraded"] += 1
                self._finish(job, started)
                job.future.set_result(result)
                fronts = list(job.fronts)
            for front in fronts:
                if front.set_running_or_notify_cancel():
                    front.set_result(result)
            self._notify(job, "done")

    def _run_in_pool(self, job: _Job, tracer) -> object:
        """Dispatch one job to the process pool, surviving worker death.

        A crashed worker breaks the whole :class:`ProcessPoolExecutor`;
        the pool is respawned and the job re-dispatched under a bounded
        retry-with-backoff budget before its waiters see
        :class:`WorkerCrashedError`.
        """
        budget = job.budget
        attempts = self._worker_retries + 1
        delay = self._retry_backoff
        for attempt in range(1, attempts + 1):
            pool = self._pool
            if pool is None:
                raise RuntimeError("CompilationService was shut down")
            # Fault counting happens here, parent-side, so a killed
            # worker's fault is consumed: the retry dispatch is clean.
            poison = any(spec.action == "die"
                         for spec in maybe_fault("worker.compile"))
            payload = (job.circuit, job.target, job.technique, job.use_cache,
                       job.options, budget.remaining(), budget.on_deadline,
                       budget.fallback, poison)
            try:
                future = pool.submit(_compile_in_subprocess, payload)
                return self._await_pool_future(job, future)
            except BrokenProcessPool:
                job.attempts = attempt
                self._respawn_pool(pool)
                tracer.event("resilience.worker_crash", "service",
                             job_id=job.job_id, technique=job.technique,
                             attempt=attempt)
                if attempt >= attempts:
                    raise WorkerCrashedError(
                        f"process worker died {attempts} time(s) while "
                        f"compiling job {job.job_id}"
                    ) from None
                if delay:
                    time.sleep(delay)
                    delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def _await_pool_future(self, job: _Job, future: Future) -> object:
        """Wait for a pool result in slices, observing cancellation.

        Cooperative cancellation cannot reach the subprocess, so an
        interrupted wait abandons the child (its own deadline still
        bounds it) instead of blocking the worker thread forever.  A
        generous parent-side bound guards against a hung child that
        stopped honoring its deadline.
        """
        bound = None
        if job.timeout is not None:
            # Deadline + every grace rung + subprocess startup slack.
            bound = time.monotonic() + 2.0 * job.timeout + 30.0
        while True:
            try:
                return future.result(timeout=0.25)
            except FutureTimeoutError:
                if job.budget.cancelled:
                    future.cancel()
                    raise CompileCancelled(
                        job.budget.cancel_reason() or "cancelled",
                        checkpoint="service.pool_wait", budget=job.budget,
                    ) from None
                if bound is not None and time.monotonic() >= bound:
                    future.cancel()
                    raise CompileDeadlineExceeded(
                        f"process worker for job {job.job_id} exceeded the "
                        f"parent-side deadline bound",
                        checkpoint="service.pool_wait", budget=job.budget,
                    ) from None

    def _respawn_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace a broken process pool (once, whichever thread wins)."""
        with self._lock:
            if self._shutdown:
                return
            if self._pool is broken:
                self._counters["worker_crashes"] += 1
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            broken.shutdown(wait=False)
        except Exception:  # pragma: no cover - best-effort cleanup
            pass

    def _finish(self, job: _Job, started: float) -> None:
        """Book-keeping common to success and failure (lock held)."""
        job.finished_wall = time.time()
        job.finished_mono = time.monotonic()
        self._busy_workers -= 1
        self._busy_seconds += job.finished_mono - started
        if job.key is not None and self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self._observe_saturation()

    # -- telemetry -------------------------------------------------------
    def _observe_saturation(self) -> None:
        """Push live saturation gauges at submit/start/finish transitions.

        ``jobs_pending`` counts admitted-but-unfinished work (queued plus
        running) via the queue's own accounting, so ``drain()``-style
        consumers and the dashboard see the same number.
        """
        if not telemetry_enabled():
            return
        record_scheduler_saturation(
            queue_depth=self._queue.qsize(),
            workers_busy=self._busy_workers,
            jobs_pending=self._queue.unfinished_tasks,
        )

    def _collect_telemetry(self) -> None:
        """Scrape-time collector: mirror pull-only values into the registry."""
        if self._shutdown:
            return
        with self._lock:
            counters = dict(self._counters)
            busy_seconds = self._busy_seconds
        for state, count in counters.items():
            SCHEDULER_JOBS.labels(state).set_total(count)
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        WORKER_UTILIZATION.set(busy_seconds / (self.workers * uptime))
        self._observe_saturation()
        store = self.store if self.store is not None else persistent_store()
        if store is not None:
            info = store.info()
            backend = getattr(store, "backend", "local_dir")
            STORE_BYTES.labels(backend).set(info.total_bytes)
            STORE_EVENTS.labels(backend, "puts").set_total(info.puts)
            STORE_EVENTS.labels(backend, "evictions").set_total(info.evictions)
            STORE_EVENTS.labels(backend, "corruptions").set_total(info.corrupted)

    # -- portfolio -------------------------------------------------------
    def compile_portfolio(
        self,
        circuit: QuantumCircuit,
        target: Target,
        techniques: Optional[Sequence[str]] = None,
        *,
        policy: str = "combined",
        use_cache: bool = True,
        timeout: Optional[float] = None,
        **options: object,
    ):
        """Race several techniques and return the best result under ``policy``.

        See :func:`repro.service.portfolio.run_portfolio` for the cost
        policies and the contender records attached to the winner's
        report.  Per-technique win counts feed :meth:`statistics`.
        """
        from repro.service.portfolio import run_portfolio

        winner = run_portfolio(
            self, circuit, target, techniques,
            policy=policy, use_cache=use_cache, timeout=timeout, **options,
        )
        with self._lock:
            wins = self._portfolio_wins
            wins[winner.technique] = wins.get(winner.technique, 0) + 1
        return winner

    # -- statistics and lifecycle ---------------------------------------
    def statistics(self) -> Dict[str, object]:
        """Aggregate queue, worker, cache-tier and portfolio statistics.

        The returned mapping is guaranteed ``json.dumps``-able: every
        value is coerced to a plain ``dict``/``list``/``str``/``int``/
        ``float``/``bool``/``None`` (the HTTP gateway's ``/metrics``
        endpoint serializes it verbatim).
        """
        l1 = GLOBAL_CACHE.info()
        store = self.store if self.store is not None else persistent_store()
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        with self._lock:
            counters = dict(self._counters)
            busy = self._busy_workers
            busy_seconds = self._busy_seconds
            wins = dict(self._portfolio_wins)
        l1_lookups = l1.hits + l1.misses
        stats: Dict[str, object] = {
            "queue_depth": self._queue.qsize(),
            "max_pending": self._queue.maxsize,
            "workers": self.workers,
            "busy_workers": busy,
            "worker_utilization": busy_seconds / (self.workers * uptime),
            "uptime_seconds": uptime,
            "mode": self.mode,
            **counters,
            "l1": {"hits": l1.hits, "misses": l1.misses, "size": l1.size},
            "l1_hit_rate": l1.hits / l1_lookups if l1_lookups else 0.0,
            "portfolio_wins": wins,
        }
        if store is not None:
            info = store.info()
            lookups = info.hits + info.misses
            # Backends report richer statistics() (backend label, peer
            # counters); fall back to bare StoreInfo for minimal stores.
            if hasattr(store, "statistics"):
                stats["l2"] = store.statistics()
            else:
                stats["l2"] = info.as_dict()
            stats["l2_hit_rate"] = info.hits / lookups if lookups else 0.0
        stats["saturation"] = self.saturation()
        return _json_safe(stats)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued and running job has finished.

        Unlike :meth:`shutdown` the service keeps accepting new work
        afterwards — this is the quiesce hook the HTTP gateway's
        graceful shutdown uses (stop accepting requests, ``drain()``,
        then ``shutdown()``).  Returns ``True`` when the service went
        idle, ``False`` on timeout.

        A job is "finished" once its worker called ``task_done`` — i.e.
        this is ``Queue.join()`` with a timeout, so the window between a
        job leaving the queue and its worker booking it as busy cannot
        produce a false idle.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._queue.all_tasks_done.wait(remaining)
            return True

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting jobs and wind the worker pool down.

        With ``cancel_pending=True`` still-queued jobs are cancelled;
        otherwise they drain normally before the workers exit.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        if cancel_pending:
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not None and job.future.cancel():
                    with self._lock:
                        job.status = JobStatus.CANCELLED
                        self._counters["cancelled"] += 1
                        if job.key is not None and self._inflight.get(job.key) is job:
                            del self._inflight[job.key]
                        fronts = list(job.fronts)
                    for front in fronts:  # Unblock every waiter.
                        front.cancel()
                self._queue.task_done()
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        if REGISTRY.get_collector("service") == self._collect_telemetry:
            REGISTRY.unregister_collector("service")
        if self._installed_store:
            uninstall_persistent_store()
            self._installed_store = False
        if self._owns_tracer:
            stop_tracing()
            self._owns_tracer = False

    def __enter__(self) -> "CompilationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:
        return (f"CompilationService(workers={self.workers}, mode={self.mode!r}, "
                f"queue={self._queue.qsize()}/{self._queue.maxsize})")
