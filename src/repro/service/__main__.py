"""Batch front end: ``python -m repro.service MANIFEST [options]``.

Compiles every workload of a JSON manifest (see
:mod:`repro.workloads.manifest`) against the spin-qubit target through a
:class:`repro.service.CompilationService`, prints a per-workload summary
table plus the aggregated service statistics, and optionally persists
results across runs::

    python -m repro.service manifest.json --store .repro-store
    python -m repro.service manifest.json --store .repro-store   # warm: L2 hits

With ``--portfolio`` every workload races several techniques and the
table shows the per-workload winner::

    python -m repro.service manifest.json --portfolio direct,kak_cz,sat_p

``--stats-json`` writes the final ``service.statistics()`` (including
L1/L2 hit counters and per-technique portfolio wins) to a file — that is
what CI's warm-start check asserts on.  ``--clear-store`` empties the
persistent store before compiling.

``--export-qasm DIR`` dumps every adapted circuit as an OpenQASM 2.0
file (``DIR/<workload>.qasm``) through :mod:`repro.interop`, so adapted
results feed straight into external toolchains — and back into this CLI,
since manifests accept ``{"kind": "qasm", "path": ...}`` entries.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from typing import List, Optional

from repro.hardware import spin_qubit_target
from repro.service.scheduler import CompilationService
from repro.service.store import PersistentResultStore
from repro.workloads.manifest import load_manifest


def _format_table(rows: List[List[str]], headers: List[str]) -> str:
    """Plain monospace table with per-column alignment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Compile a workload manifest through the compilation service.",
    )
    parser.add_argument("manifest", help="path of the JSON workload manifest")
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent result store directory (created if missing); "
             "omit for a purely in-memory run",
    )
    parser.add_argument("--clear-store", action="store_true",
                        help="empty the persistent store before compiling")
    parser.add_argument("--max-store-mb", type=int, default=256,
                        help="persistent store size budget in MiB (default 256)")
    parser.add_argument("--technique", default=None,
                        help="technique key for every workload (default sat_p, "
                             "or the manifest's 'technique' entry)")
    parser.add_argument("--portfolio", default=None, metavar="KEYS",
                        help="comma-separated techniques to race per workload "
                             "(overrides --technique)")
    parser.add_argument("--policy", default=None,
                        choices=["combined", "duration", "fidelity", "gates"],
                        help="portfolio cost policy (default combined)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker pool size (default 4)")
    parser.add_argument("--durations", default="D0", choices=["D0", "D1"],
                        help="spin-qubit duration calibration (default D0)")
    parser.add_argument("--stats-json", default=None, metavar="PATH",
                        help="write service.statistics() to this file")
    parser.add_argument("--export-qasm", default=None, metavar="DIR",
                        help="write every adapted circuit as OpenQASM 2.0 "
                             "to DIR/<workload>.qasm (created if missing)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write structured JSONL trace events to PATH "
                             "(inspect with python -m repro.trace)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-workload table")
    args = parser.parse_args(argv)

    try:
        workloads, defaults = load_manifest(args.manifest)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: cannot load manifest {args.manifest!r}: {error}",
              file=sys.stderr)
        return 2
    if not workloads:
        print("error: the manifest contains no workloads", file=sys.stderr)
        return 2

    technique = args.technique or defaults.get("technique", "sat_p")
    policy = args.policy or defaults.get("policy", "combined")
    portfolio = args.portfolio or defaults.get("portfolio")
    techniques = (
        [key.strip() for key in portfolio.split(",") if key.strip()]
        if isinstance(portfolio, str) else portfolio
    )

    store = None
    if args.store:
        store = PersistentResultStore(
            args.store, max_bytes=args.max_store_mb * 1024 * 1024
        )
        if args.clear_store:
            removed = store.clear()
            print(f"cleared {removed} entries from {store.root}")

    started = time.perf_counter()
    rows: List[List[str]] = []
    failures: List[tuple] = []
    with CompilationService(workers=args.workers, store=store,
                            trace=args.trace) as service:
        handles = []
        for name, circuit in workloads:
            target = spin_qubit_target(max(2, circuit.num_qubits), args.durations)
            try:
                if techniques:
                    # Portfolio racing is synchronous per workload (it
                    # already fans out one job per technique underneath).
                    result = service.compile_portfolio(
                        circuit, target, techniques, policy=policy
                    )
                    handles.append((name, circuit, None, result, None))
                else:
                    handles.append(
                        (name, circuit,
                         service.submit(circuit, target, technique), None, None)
                    )
            except Exception as error:  # noqa: BLE001 - reported per workload
                handles.append((name, circuit, None, None,
                                f"{type(error).__name__}: {error}"))
        completed: List[tuple] = []
        for name, circuit, handle, result, error in handles:
            if error is None and result is None:
                try:
                    result = handle.result()
                except Exception as exc:  # noqa: BLE001 - reported per workload
                    error = f"{type(exc).__name__}: {exc}"
            if error is not None:
                # A failed workload must fail the run (non-zero exit), not
                # just flow by as a table row — but the remaining
                # workloads still compile and report normally.
                failures.append((name, error))
                rows.append([name, "-", "-", "-", "-", "-", "-", "FAILED"])
                continue
            completed.append((name, result))
            report = result.report
            rows.append([
                name,
                result.technique,
                str(result.cost.gate_count),
                str(result.cost.two_qubit_gate_count),
                f"{result.cost.duration:.0f}",
                f"{result.cost.gate_fidelity_product:.4f}",
                f"{1e3 * (report.total_seconds if report else 0.0):.1f}",
                ("hit" if report and report.cache_hit else "fresh"),
            ])
        elapsed = time.perf_counter() - started
        stats = service.statistics()

    if not args.quiet:
        print(_format_table(rows, [
            "workload", "technique", "gates", "2q", "duration[ns]",
            "fidelity", "pipeline[ms]", "cache",
        ]))
    throughput = len(completed) / elapsed if elapsed > 0 else float("inf")
    print(f"\ncompiled {len(completed)} of {len(workloads)} workloads in "
          f"{elapsed:.2f}s ({throughput:.2f} circuits/s) "
          f"with {args.workers} workers")
    l1 = stats["l1"]
    print(f"L1 cache: {l1['hits']} hits / {l1['misses']} misses "
          f"({100 * stats['l1_hit_rate']:.0f}%)")
    if "l2" in stats:
        l2 = stats["l2"]
        print(f"L2 store: {l2['hits']} hits / {l2['misses']} misses "
              f"({100 * stats['l2_hit_rate']:.0f}%), {l2['entries']} entries, "
              f"{l2['total_bytes'] / 1024:.0f} KiB at {store.root}")
    if stats["portfolio_wins"]:
        wins = ", ".join(f"{key}={count}" for key, count
                         in sorted(stats["portfolio_wins"].items()))
        print(f"portfolio wins: {wins}")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(inspect with: python -m repro.trace {args.trace})")

    if args.export_qasm:
        from repro.interop import write_qasm_file

        os.makedirs(args.export_qasm, exist_ok=True)
        used: set = set()
        for name, result in completed:
            # Distinct workload names can sanitize identically; suffix
            # until unused instead of silently overwriting an export.
            stem = candidate = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
            suffix = 0
            while candidate in used:
                suffix += 1
                candidate = f"{stem}_{suffix}"
            used.add(candidate)
            write_qasm_file(
                result.adapted_circuit,
                os.path.join(args.export_qasm, candidate + ".qasm"),
            )
        print(f"exported {len(completed)} adapted circuits to {args.export_qasm}")

    if args.stats_json:
        payload = dict(stats)
        payload["elapsed_seconds"] = elapsed
        payload["circuits_per_second"] = throughput
        payload["workloads"] = len(workloads)
        payload["failed_workloads"] = len(failures)
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.stats_json}")

    if failures:
        for name, message in failures:
            print(f"FAILED {name}: {message}", file=sys.stderr)
        print(f"error: {len(failures)} of {len(workloads)} workloads failed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
