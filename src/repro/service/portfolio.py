"""Portfolio compilation: race techniques, keep the best result.

``compile_portfolio`` submits one job per technique to a
:class:`repro.service.CompilationService`, waits for all of them, scores
every successful result under a **cost policy** and returns the argmin.
All contenders — including failed ones — are recorded in the winner's
``report.contenders``, so batch drivers can audit why a technique won.

Cost policies (all argmin, lower is better):

============ ==========================================================
``duration``  circuit makespan (``cost.duration``)
``fidelity``  negated gate-fidelity product (maximizes fidelity)
``gates``     total gate count, two-qubit count as tie-break
``combined``  negated fidelity x idle-survival score (paper's Eq. 10
              evaluation metric; the default)
============ ==========================================================
"""

from __future__ import annotations

import copy
import time
from typing import Callable, Dict, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.hardware.target import Target

#: The default portfolio: one representative per technique family, cheap
#: enough to race on every request.
DEFAULT_PORTFOLIO = ("direct", "kak_cz", "sat_p")

#: Cost policies mapping a result to a scalar score (argmin wins).
COST_POLICIES: Dict[str, Callable] = {
    "duration": lambda result: result.cost.duration,
    "fidelity": lambda result: -result.cost.gate_fidelity_product,
    "gates": lambda result: (
        result.cost.gate_count + 1e-6 * result.cost.two_qubit_gate_count
    ),
    "combined": lambda result: -result.cost.combined_score,
}


def portfolio_score(result, policy: str = "combined") -> float:
    """Score one result under a named cost policy (lower is better)."""
    try:
        scorer = COST_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown cost policy {policy!r}; available: {sorted(COST_POLICIES)}"
        ) from None
    return float(scorer(result))


def run_portfolio(
    service,
    circuit: QuantumCircuit,
    target: Target,
    techniques: Optional[Sequence[str]] = None,
    *,
    policy: str = "combined",
    use_cache: bool = True,
    timeout: Optional[float] = None,
    **options: object,
):
    """Race ``techniques`` through ``service`` and return the policy argmin.

    The returned :class:`repro.core.AdaptationResult` is a detached copy
    of the winner whose ``report.contenders`` lists every raced technique
    with its score, wall time and headline costs (or its error message).
    Raises ``RuntimeError`` when every technique fails.
    """
    if techniques is None:
        techniques = DEFAULT_PORTFOLIO
    techniques = list(techniques)
    if not techniques:
        raise ValueError("portfolio compilation needs at least one technique")
    if policy not in COST_POLICIES:
        raise ValueError(
            f"unknown cost policy {policy!r}; available: {sorted(COST_POLICIES)}"
        )

    handles = []
    completions: Dict[int, float] = {}
    started = time.perf_counter()
    for index, technique in enumerate(techniques):
        handle = service.submit(circuit, target, technique,
                                use_cache=use_cache, **options)
        # Stamp each contender's own completion, so a fast technique is
        # not billed for the slower ones awaited before it.
        handle.add_done_callback(
            lambda _future, i=index: completions.setdefault(
                i, time.perf_counter() - started
            )
        )
        handles.append((technique, handle))

    contenders = []
    outcomes = []
    for index, (technique, handle) in enumerate(handles):
        try:
            result = handle.result(timeout=timeout)
        except Exception as error:  # noqa: BLE001 - recorded per contender
            contenders.append({
                "technique": technique,
                "error": f"{type(error).__name__}: {error}",
            })
            continue
        seconds = completions.get(index, time.perf_counter() - started)
        score = portfolio_score(result, policy)
        contenders.append({
            "technique": result.technique,
            "score": score,
            "seconds": seconds,
            "duration": result.cost.duration,
            "gate_fidelity_product": result.cost.gate_fidelity_product,
            "gate_count": result.cost.gate_count,
            "two_qubit_gate_count": result.cost.two_qubit_gate_count,
            "cache_hit": bool(result.report.cache_hit) if result.report else False,
        })
        outcomes.append((score, len(outcomes), result, contenders[-1]))

    if not outcomes:
        errors = "; ".join(str(c.get("error")) for c in contenders)
        raise RuntimeError(f"every portfolio technique failed: {errors}")

    outcomes.sort(key=lambda entry: (entry[0], entry[1]))
    _, _, best, best_record = outcomes[0]
    best_record["winner"] = True

    winner = copy.deepcopy(best)
    if winner.report is not None:
        winner.report.contenders = [dict(c) for c in contenders]
    return winner
