"""Disk-backed, content-addressed store of compilation results (the L2 tier).

Every entry is one JSON file holding a serialized
:class:`repro.core.AdaptationResult` (see ``AdaptationResult.to_dict``),
addressed by the same ``(circuit hash, target fingerprint, technique,
options fingerprint)`` key as the in-process cache and sharded over 256
two-hex-digit directories so no single directory grows unboundedly.

Guarantees:

* **Atomic writes** — entries are written to a temporary file in the
  shard directory and ``os.replace``-d into place, so a reader never
  observes a half-written entry (and a crashed writer leaves at most a
  ``*.tmp`` file that is swept on the next eviction pass).
* **Per-shard locking** — writers serialize per shard, not globally, so
  concurrent workers on different shards never contend.
* **LRU / size-budget eviction** — each hit refreshes the entry's mtime;
  when the store exceeds ``max_bytes``, the least recently used entries
  are evicted until it fits again.
* **Corruption quarantine** — an unreadable or truncated entry counts
  as a miss and is moved into a ``.corrupt/`` sidecar directory (never
  poisoning later reads, but preserved for post-mortem inspection); the
  ``corrupted`` counter in :meth:`PersistentResultStore.statistics`
  tracks how many were caught.

Install a store behind :func:`repro.compile` with
:func:`use_persistent_store` (or pass it to a
:class:`repro.service.CompilationService`, which installs it for you).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.cache import (
    CacheKey,
    install_persistent_store,
    uninstall_persistent_store,
)
from repro.core.adapter import AdaptationResult
from repro.resilience.faults import maybe_fault
from repro.trace.tracer import current_tracer

#: On-disk payload schema version; bump when the layout changes.
STORE_FORMAT = 1

#: Default size budget: plenty for tens of thousands of small-circuit
#: results while staying laptop- and CI-friendly.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: A ``*.tmp`` file younger than this is assumed to belong to a live
#: writer and is left alone by the stale-file sweep.
_TMP_GRACE_SECONDS = 60.0

#: Sidecar directory (under the store root) corrupt entries are moved to.
QUARANTINE_DIR = ".corrupt"

#: Shape of a valid entry digest (sha256 hex); raw-entry access validates
#: it so a peer request can never escape the store root.
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


@dataclass
class StoreInfo:
    """Counters and current footprint of a persistent result store."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupted: int = 0
    entries: int = 0
    total_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON stats dumps."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupted": self.corrupted,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
        }


def _entry_digest(key: CacheKey) -> str:
    """Stable content address of a cache key (sha256 over its parts)."""
    return hashlib.sha256("\x1f".join(key).encode()).hexdigest()


class PersistentResultStore:
    """Sharded on-disk result store keyed by compilation fingerprints.

    This is the **local-dir backend** of the pluggable store-backend
    interface (see :mod:`repro.cluster.backends`): any object with the
    same ``get``/``put``/``read_raw``/``write_raw``/``info``/
    ``statistics`` surface can be installed behind :func:`repro.compile`
    or a :class:`repro.service.CompilationService`.
    """

    #: Backend label carried on statistics and telemetry samples.
    backend = "local_dir"

    def __init__(self, root: str, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.root = os.path.abspath(root)
        self.max_bytes = max_bytes
        os.makedirs(self.root, exist_ok=True)
        self._shard_locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._eviction_lock = threading.Lock()
        self._counters_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        self._corrupted = 0
        # Running footprint tally so the hot write path never rescans the
        # store; corrected against a real scan whenever eviction runs.
        self._total_bytes = sum(size for _, size, _ in self._scan())

    # -- paths and locks -------------------------------------------------
    def _shard_of(self, digest: str) -> str:
        return digest[:2]

    def _path_of(self, digest: str) -> str:
        return os.path.join(self.root, self._shard_of(digest), digest + ".json")

    def _shard_lock(self, shard: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._shard_locks.get(shard)
            if lock is None:
                lock = self._shard_locks[shard] = threading.Lock()
            return lock

    # -- the cache protocol (duck-typed L2 behind repro.compile) ---------
    def get(self, key: Optional[CacheKey]) -> Optional[AdaptationResult]:
        """Load and deserialize the entry for ``key``, or ``None``.

        A hit refreshes the file mtime (the LRU clock).  A corrupt entry
        is quarantined to ``.corrupt/`` and reported as a miss.
        """
        if key is None:
            return None
        digest = _entry_digest(key)
        path = self._path_of(digest)
        for spec in maybe_fault("store.read"):
            if spec.action == "corrupt":
                # Fault injection: garble the entry before reading it, so
                # the quarantine path below runs against a real bad file.
                try:
                    with open(path, "r+", encoding="utf-8") as handle:
                        handle.seek(0)
                        handle.write("{corrupt")
                        handle.truncate()
                except OSError:
                    pass
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = AdaptationResult.from_dict(payload["result"])
        except FileNotFoundError:
            self._count(misses=1)
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated/corrupt entry: quarantine it so it cannot poison
            # reads while staying available for post-mortem inspection.
            size = self._quarantine(digest, path)
            with self._counters_lock:
                self._misses += 1
                self._corrupted += 1
                self._total_bytes -= size
            current_tracer().event("store.corrupt", "service",
                                   digest=digest, bytes=size)
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # Entry may have been evicted concurrently; the result stands.
        self._count(hits=1)
        return result

    def put(self, key: Optional[CacheKey], result: AdaptationResult) -> None:
        """Serialize and atomically persist ``result`` under ``key``."""
        if key is None:
            return
        digest = _entry_digest(key)
        shard = self._shard_of(digest)
        shard_dir = os.path.join(self.root, shard)
        payload = {
            "format": STORE_FORMAT,
            "key": list(key),
            "result": result.to_dict(),
        }
        encoded = json.dumps(payload, sort_keys=True)
        path = self._path_of(digest)
        with self._shard_lock(shard):
            os.makedirs(shard_dir, exist_ok=True)
            try:
                replaced = os.stat(path).st_size
            except OSError:
                replaced = 0
            descriptor, tmp_path = tempfile.mkstemp(
                prefix=digest + ".", suffix=".tmp", dir=shard_dir
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    handle.write(encoded)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        with self._counters_lock:
            self._puts += 1
            # JSON with ensure_ascii (the default) is pure ASCII: one
            # byte per character.
            self._total_bytes += len(encoded) - replaced
            over_budget = (
                self.max_bytes is not None
                and 0 <= self.max_bytes < self._total_bytes
            )
        if over_budget:
            self._evict_to_budget()

    # -- raw entry access (the peer-replication wire format) -------------
    def read_raw(self, digest: str) -> Optional[str]:
        """The stored entry document for ``digest``, verbatim, or ``None``.

        This is the peer-fetch serving path (``GET /internal/store/...``):
        the exact on-disk JSON text travels to the requesting node, which
        validates it before adopting it.  Reads do not touch the hit/miss
        counters — serving a peer is not a local cache lookup.
        """
        if not _DIGEST_RE.match(digest):
            return None
        try:
            with open(self._path_of(digest), "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            return None

    def write_raw(self, digest: str, document: str) -> bool:
        """Adopt a peer-fetched entry document; ``True`` when stored.

        The document must parse as a store entry (``format``/``result``
        keys) — a corrupt or truncated peer response is rejected here
        rather than quarantined later.  Writes are atomic exactly like
        :meth:`put` and count toward the size budget.
        """
        if not _DIGEST_RE.match(digest):
            return False
        try:
            payload = json.loads(document)
        except ValueError:
            return False
        if not isinstance(payload, dict) or "result" not in payload:
            return False
        if payload.get("format") != STORE_FORMAT:
            return False
        shard = self._shard_of(digest)
        shard_dir = os.path.join(self.root, shard)
        path = self._path_of(digest)
        with self._shard_lock(shard):
            os.makedirs(shard_dir, exist_ok=True)
            try:
                replaced = os.stat(path).st_size
            except OSError:
                replaced = 0
            descriptor, tmp_path = tempfile.mkstemp(
                prefix=digest + ".", suffix=".tmp", dir=shard_dir
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    handle.write(document)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        with self._counters_lock:
            self._puts += 1
            self._total_bytes += len(document.encode("utf-8")) - replaced
            over_budget = (
                self.max_bytes is not None
                and 0 <= self.max_bytes < self._total_bytes
            )
        if over_budget:
            self._evict_to_budget()
        return True

    # -- maintenance -----------------------------------------------------
    def _quarantine(self, digest: str, path: str) -> int:
        """Move a corrupt entry into ``.corrupt/``; returns its byte size."""
        sidecar = os.path.join(self.root, QUARANTINE_DIR)
        with self._shard_lock(self._shard_of(digest)):
            try:
                size = os.stat(path).st_size
            except OSError:
                return 0
            try:
                os.makedirs(sidecar, exist_ok=True)
                os.replace(path, os.path.join(sidecar, digest + ".json"))
            except OSError:
                # Fall back to deletion: never leave a poisoned entry live.
                try:
                    os.unlink(path)
                except OSError:
                    return 0
        return size

    def _scan(self) -> List[Tuple[float, int, str]]:
        """All entries as ``(mtime, size, path)``; sweeps stale tmp files.

        Dot-directories (the ``.corrupt/`` quarantine) are not entries:
        they are neither counted nor evicted.
        """
        entries: List[Tuple[float, int, str]] = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return entries
        for shard in shards:
            if shard.startswith("."):
                continue
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                path = os.path.join(shard_dir, name)
                if name.endswith(".tmp"):
                    # Leftover from a crashed writer — but only when old
                    # enough that no live writer can still be about to
                    # ``os.replace`` it into place.
                    try:
                        if time.time() - os.stat(path).st_mtime > _TMP_GRACE_SECONDS:
                            os.unlink(path)
                    except OSError:
                        pass
                    continue
                if not name.endswith(".json"):
                    continue
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def _evict_to_budget(self) -> None:
        """Drop least-recently-used entries until the store fits the budget."""
        if not self._eviction_lock.acquire(blocking=False):
            return  # Another thread is already evicting.
        try:
            entries = self._scan()
            total = sum(size for _, size, _ in entries)
            if total > self.max_bytes:
                entries.sort()  # Oldest mtime first.
                for _, size, path in entries:
                    if total <= self.max_bytes:
                        break
                    try:
                        os.unlink(path)
                    except OSError:
                        continue
                    total -= size
                    self._count(evictions=1)
            with self._counters_lock:
                self._total_bytes = total  # Re-anchor the running tally.
        finally:
            self._eviction_lock.release()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        remaining = 0
        for _, size, path in self._scan():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                remaining += size
        with self._counters_lock:
            self._total_bytes = remaining
        return removed

    def info(self) -> StoreInfo:
        """Counters plus the current on-disk entry count and byte size."""
        entries = self._scan()
        with self._counters_lock:
            return StoreInfo(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
                corrupted=self._corrupted,
                entries=len(entries),
                total_bytes=sum(size for _, size, _ in entries),
            )

    def statistics(self) -> Dict[str, object]:
        """The :meth:`info` counters as a plain dict (for stats dumps)."""
        stats: Dict[str, object] = dict(self.info().as_dict())
        stats["backend"] = self.backend
        return stats

    def _count(self, hits: int = 0, misses: int = 0, puts: int = 0,
               evictions: int = 0) -> None:
        with self._counters_lock:
            self._hits += hits
            self._misses += misses
            self._puts += puts
            self._evictions += evictions

    def __repr__(self) -> str:
        return f"PersistentResultStore(root={self.root!r}, max_bytes={self.max_bytes})"


def use_persistent_store(
    root: str, max_bytes: int = DEFAULT_MAX_BYTES
) -> PersistentResultStore:
    """Create a store at ``root`` and install it behind :func:`repro.compile`."""
    return install_persistent_store(PersistentResultStore(root, max_bytes=max_bytes))


def disable_persistent_store() -> None:
    """Detach whatever store is installed behind :func:`repro.compile`."""
    uninstall_persistent_store()
