"""The service layer: persistence, async scheduling, portfolio compilation.

This package turns the single-process :func:`repro.compile` facade into a
long-running, shareable compilation service::

    from repro.service import CompilationService

    with CompilationService(workers=4, store=".repro-store") as service:
        handle = service.submit(circuit, target, "sat_p")   # async
        result = handle.result()
        best = service.compile_portfolio(circuit, target,
                                         ["direct", "kak_cz", "sat_p"])
        print(service.statistics())

Pieces (each usable on its own):

* :class:`PersistentResultStore` — the disk-backed, sharded, LRU-evicted
  L2 cache behind the in-process L1 (:func:`use_persistent_store`
  installs one under plain ``repro.compile`` without a service);
* :class:`CompilationService` — bounded job queue, worker pool,
  futures-based ``submit``/``result``/``status``, request coalescing and
  graceful shutdown;
* :func:`compile_portfolio <repro.service.portfolio.run_portfolio>` —
  race techniques, return the argmin under a cost policy;
* ``python -m repro.service`` — batch CLI over workload manifests.
"""

from repro.service.portfolio import (
    COST_POLICIES,
    DEFAULT_PORTFOLIO,
    portfolio_score,
    run_portfolio,
)
from repro.service.scheduler import (
    CompilationService,
    JobHandle,
    JobStatus,
    ServiceSaturatedError,
    WorkerCrashedError,
)
from repro.service.store import (
    DEFAULT_MAX_BYTES,
    PersistentResultStore,
    StoreInfo,
    disable_persistent_store,
    use_persistent_store,
)

__all__ = [
    "CompilationService",
    "JobHandle",
    "JobStatus",
    "ServiceSaturatedError",
    "WorkerCrashedError",
    "PersistentResultStore",
    "StoreInfo",
    "DEFAULT_MAX_BYTES",
    "use_persistent_store",
    "disable_persistent_store",
    "COST_POLICIES",
    "DEFAULT_PORTFOLIO",
    "portfolio_score",
    "run_portfolio",
]
