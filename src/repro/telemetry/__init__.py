"""``repro.telemetry``: unified metrics for the whole serving stack.

One process-wide :class:`MetricRegistry` (:data:`REGISTRY`) is the sink
every surface feeds — gateway request latency, pipeline pass timing,
scheduler saturation, L1/L2 cache traffic, store bytes, live SAT/SMT/OMT
solver rates, and process resources.  Like ``repro.trace`` and
``repro.resilience``, the registry is *off* until something enables it
(the HTTP gateway does on construction); a disabled hook costs one
module-global flag read (~40 ns).

Counters and histograms additionally aggregate into a sliding window
(ring of 15 s time buckets spanning 15 minutes), so rates and
p50/p95/p99 are available over the last 1/5/15 minutes rather than the
process lifetime.

Rendering: :func:`render_prometheus` emits the Prometheus text format
(served by the gateway at ``GET /metrics?format=prometheus``), and
:func:`parse_prometheus` / :func:`validate_prometheus` are the minimal
in-repo scraper used by tests, CI, and the shard router's merge.

``python -m repro.telemetry`` is a top-style console dashboard polling
a live server's ``/metrics``.
"""

from __future__ import annotations

from repro.telemetry.prometheus import (
    merge_prometheus,
    parse_prometheus,
    render_prometheus,
    validate_prometheus,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    WINDOWS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    REGISTRY,
    disable_telemetry,
    enable_telemetry,
    telemetry_enabled,
)
from repro.telemetry.resources import (
    ResourceSampler,
    resource_usage,
    start_resource_sampler,
    stop_resource_sampler,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "REGISTRY",
    "ResourceSampler",
    "WINDOWS",
    "disable_telemetry",
    "enable_telemetry",
    "merge_prometheus",
    "parse_prometheus",
    "render_prometheus",
    "resource_usage",
    "start_resource_sampler",
    "stop_resource_sampler",
    "telemetry_enabled",
    "validate_prometheus",
]
