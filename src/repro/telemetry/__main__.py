"""Dashboard CLI: ``python -m repro.telemetry --url http://host:port``.

Polls the server's ``/metrics`` JSON and redraws a top-style frame
every ``--interval`` seconds.  ``--once`` prints a single frame (no
clearing) and exits — handy in scripts and smoke tests.
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
from typing import List, Optional

from repro.telemetry.dashboard import fetch_metrics, render_dashboard

_CLEAR = "\x1b[2J\x1b[H"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Console dashboard over a repro server's /metrics.",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8000",
                        help="server base URL (default http://127.0.0.1:8000)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds (default 2)")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N frames; 0 runs until Ctrl-C")
    parser.add_argument("--once", action="store_true",
                        help="print one frame and exit (implies --no-clear)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing in place")
    args = parser.parse_args(argv)

    iterations = 1 if args.once else args.iterations
    clear = not (args.once or args.no_clear)
    frame = 0
    try:
        while True:
            try:
                doc = fetch_metrics(args.url)
            except (urllib.error.URLError, OSError, ValueError) as exc:
                print(f"error: cannot scrape {args.url}/metrics: {exc}",
                      file=sys.stderr)
                return 1
            text = render_dashboard(doc, title=f"repro telemetry — {args.url}")
            if clear:
                sys.stdout.write(_CLEAR)
            sys.stdout.write(text)
            sys.stdout.flush()
            frame += 1
            if iterations and frame >= iterations:
                return 0
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
