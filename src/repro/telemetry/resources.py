"""Process resource telemetry: sampler thread and per-compile probes.

Stdlib only — ``resource`` for CPU seconds and peak RSS, ``gc`` for
collection counts, ``/proc/self`` (when present) for current RSS and
open file descriptors.  The sampler is a daemon thread the gateway
starts once per process; each tick refreshes the ``repro_process_*``
gauges/counters in the registry.

:func:`resource_usage` is the cheap probe the pipeline wraps around a
compile to attribute CPU seconds and peak RSS to its
``CompilationReport``.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
from typing import Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

from repro.telemetry.instruments import (
    PROCESS_CPU,
    PROCESS_FDS,
    PROCESS_GC,
    PROCESS_RSS,
)
from repro.telemetry.registry import telemetry_enabled

__all__ = [
    "ResourceSampler",
    "resource_usage",
    "sample_resources",
    "start_resource_sampler",
    "stop_resource_sampler",
]

# ru_maxrss is kilobytes on Linux, bytes on macOS.
_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def resource_usage() -> Tuple[float, int]:
    """``(cpu_seconds, peak_rss_bytes)`` for this process so far."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0.0, 0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    cpu = usage.ru_utime + usage.ru_stime
    return cpu, int(usage.ru_maxrss) * _MAXRSS_SCALE


def _current_rss_bytes() -> int:
    """Current resident set (``/proc`` where available, else peak)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, IndexError, ValueError):
        return resource_usage()[1]


def _open_fds() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def sample_resources() -> None:
    """Refresh the ``repro_process_*`` families once."""
    if not telemetry_enabled():
        return
    cpu, _peak = resource_usage()
    PROCESS_CPU.set_total(cpu)
    PROCESS_RSS.set(_current_rss_bytes())
    for generation, stats in enumerate(gc.get_stats()):
        PROCESS_GC.labels(str(generation)).set_total(stats.get("collections", 0))
    fds = _open_fds()
    if fds is not None:
        PROCESS_FDS.set(fds)


class ResourceSampler:
    """Daemon thread refreshing process gauges every ``interval`` seconds."""

    def __init__(self, interval: float = 5.0) -> None:
        self.interval = max(0.1, float(interval))
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        sample_resources()  # gauges are live from the first scrape
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-resources", daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                sample_resources()
            except Exception:  # noqa: BLE001 - sampling must never kill the thread
                pass

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._thread = None


_SAMPLER: Optional[ResourceSampler] = None
_SAMPLER_LOCK = threading.Lock()


def start_resource_sampler(interval: float = 5.0) -> ResourceSampler:
    """Start (or return) the process-wide sampler singleton."""
    global _SAMPLER
    with _SAMPLER_LOCK:
        if _SAMPLER is None:
            _SAMPLER = ResourceSampler(interval)
        _SAMPLER.start()
        return _SAMPLER


def stop_resource_sampler() -> None:
    """Stop the singleton (tests, clean shutdown)."""
    global _SAMPLER
    with _SAMPLER_LOCK:
        if _SAMPLER is not None:
            _SAMPLER.stop()
            _SAMPLER = None


# Fresh resource numbers on every scrape, even between sampler ticks.
from repro.telemetry.registry import REGISTRY  # noqa: E402

REGISTRY.register_collector("process_resources", sample_resources)


def _after_fork() -> None:
    # The sampler thread does not survive fork; forget it so a child
    # that becomes a server can start its own.
    global _SAMPLER
    _SAMPLER = None


os.register_at_fork(after_in_child=_after_fork)
