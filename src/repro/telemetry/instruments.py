"""The stack's named metric families and their hot-path hook helpers.

Everything the serving stack measures registers here, once, at import —
call sites use the ``record_*`` helpers, each of which opens with the
``telemetry_enabled()`` fast path so a disabled hook costs one global
read regardless of how many families it would touch.

Family naming follows Prometheus conventions: ``repro_`` prefix, base
units (seconds, bytes), ``_total`` suffix on counters.
"""

from __future__ import annotations

from repro.telemetry.registry import REGISTRY, telemetry_enabled

__all__ = [
    "record_auth",
    "record_cache",
    "record_compile",
    "record_http_request",
    "record_job_event",
    "record_omt_rounds",
    "record_pass",
    "record_peer_fetch",
    "record_sat_progress",
    "record_scheduler_saturation",
    "record_shed",
    "record_theory",
]

# -- HTTP gateway ----------------------------------------------------------

HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by route.",
    ("route",),
)
HTTP_ERRORS = REGISTRY.counter(
    "repro_http_request_errors_total",
    "HTTP error responses, by route and kind (client 4xx / server 5xx).",
    ("route", "kind"),
)
HTTP_LATENCY = REGISTRY.histogram(
    "repro_http_request_duration_seconds",
    "Wall-clock request latency, by route.",
    ("route",),
)

# -- pipeline --------------------------------------------------------------

PASS_LATENCY = REGISTRY.histogram(
    "repro_pass_duration_seconds",
    "Compilation pass latency, by pass name.",
    ("pass",),
)

COMPILE_LATENCY = REGISTRY.histogram(
    "repro_compile_duration_seconds",
    "End-to-end compile latency, by technique.",
    ("technique",),
    buckets=(0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
             15.0, 60.0),
)

# -- scheduler / service ---------------------------------------------------

QUEUE_DEPTH = REGISTRY.gauge(
    "repro_scheduler_queue_depth",
    "Jobs waiting in the scheduler queue (live, updated on transitions).",
)
WORKERS_BUSY = REGISTRY.gauge(
    "repro_scheduler_workers_busy",
    "Worker threads currently running a job (live, updated on transitions).",
)
JOBS_PENDING = REGISTRY.gauge(
    "repro_scheduler_jobs_pending",
    "Jobs admitted but not finished: queued plus running.",
)
SCHEDULER_JOBS = REGISTRY.counter(
    "repro_scheduler_jobs_total",
    "Job lifecycle outcomes, by state.",
    ("state",),
)
WORKER_UTILIZATION = REGISTRY.gauge(
    "repro_scheduler_worker_utilization",
    "Fraction of worker-seconds spent running jobs since service start.",
)

# -- caches / store --------------------------------------------------------

CACHE_REQUESTS = REGISTRY.counter(
    "repro_cache_requests_total",
    "Result-cache lookups, by tier (l1 memory / l2 store) and outcome.",
    ("tier", "outcome"),
)
STORE_BYTES = REGISTRY.gauge(
    "repro_store_bytes",
    "Bytes currently held by the persistent result store, by backend.",
    ("backend",),
)
STORE_EVENTS = REGISTRY.counter(
    "repro_store_events_total",
    "Persistent-store lifecycle events, by backend (puts, evictions, "
    "corruptions).",
    ("backend", "event"),
)
STORE_PEER_FETCHES = REGISTRY.counter(
    "repro_store_peer_fetches_total",
    "Replicated-backend peer fetch attempts, by backend and outcome.",
    ("backend", "outcome"),
)

# -- cluster: auth / admission ---------------------------------------------

AUTH_REQUESTS = REGISTRY.counter(
    "repro_auth_requests_total",
    "Authentication decisions, by key name and outcome "
    "(ok, missing, invalid, expired, throttled, quota).",
    ("key", "outcome"),
)
SHED_REQUESTS = REGISTRY.counter(
    "repro_shed_requests_total",
    "Submissions refused by the load shedder, by key name.",
    ("key",),
)
JOB_EVENTS_PUBLISHED = REGISTRY.counter(
    "repro_job_events_total",
    "Job lifecycle events published to streaming subscribers, by event.",
    ("event",),
)
EVENT_STREAMS_ACTIVE = REGISTRY.gauge(
    "repro_event_streams_active",
    "Server-sent event streams currently open.",
)
LONGPOLL_ACTIVE = REGISTRY.gauge(
    "repro_longpoll_active",
    "Long-poll result waits currently holding a handler thread.",
)

# -- solvers ---------------------------------------------------------------

SOLVER_EVENTS = REGISTRY.counter(
    "repro_solver_events_total",
    "SAT/SMT/OMT solver progress events flushed at checkpoint milestones.",
    ("event",),
)
SOLVER_LEARNED_CLAUSES = REGISTRY.gauge(
    "repro_solver_learned_clauses",
    "Learned-clause database size after the most recent SAT solve.",
)

# -- process resources -----------------------------------------------------

PROCESS_RSS = REGISTRY.gauge(
    "repro_process_resident_memory_bytes",
    "Resident set size of this process.",
)
PROCESS_CPU = REGISTRY.counter(
    "repro_process_cpu_seconds_total",
    "User plus system CPU time consumed by this process.",
)
PROCESS_GC = REGISTRY.counter(
    "repro_process_gc_collections_total",
    "Python garbage collections, by generation.",
    ("generation",),
)
PROCESS_FDS = REGISTRY.gauge(
    "repro_process_open_fds",
    "Open file descriptors held by this process.",
)

# -- server ----------------------------------------------------------------

SERVER_UPTIME = REGISTRY.gauge(
    "repro_server_uptime_seconds",
    "Seconds since the gateway started.",
)
SERVER_JOBS_TRACKED = REGISTRY.gauge(
    "repro_server_jobs_tracked",
    "Job handles the gateway currently retains.",
)


# -- hot-path helpers ------------------------------------------------------

def record_http_request(route: str, status: int, seconds: float) -> None:
    """One served request: count, error class, latency."""
    if not telemetry_enabled():
        return
    HTTP_REQUESTS.labels(route).inc()
    if status >= 500:
        HTTP_ERRORS.labels(route, "server").inc()
    elif status >= 400:
        HTTP_ERRORS.labels(route, "client").inc()
    HTTP_LATENCY.labels(route).observe(seconds)


def record_pass(name: str, seconds: float) -> None:
    """One completed pipeline pass."""
    if not telemetry_enabled():
        return
    PASS_LATENCY.labels(name).observe(seconds)


def record_compile(technique: str, seconds: float) -> None:
    """One end-to-end compile (cache misses that ran the pipeline)."""
    if not telemetry_enabled():
        return
    COMPILE_LATENCY.labels(technique).observe(seconds)


def record_cache(tier: str, outcome: str) -> None:
    """One cache lookup: ``tier`` in {l1, l2}, ``outcome`` in {hit, miss}."""
    if not telemetry_enabled():
        return
    CACHE_REQUESTS.labels(tier, outcome).inc()


def record_scheduler_saturation(queue_depth: int, workers_busy: int,
                                jobs_pending: int) -> None:
    """Live saturation gauges, pushed at submit/start/finish."""
    if not telemetry_enabled():
        return
    QUEUE_DEPTH.set(queue_depth)
    WORKERS_BUSY.set(workers_busy)
    JOBS_PENDING.set(jobs_pending)


def record_sat_progress(conflicts: int, propagations: int, decisions: int,
                        restarts: int, learned: int) -> None:
    """Flush SAT search deltas (milestone checkpoints and solve exit)."""
    if not telemetry_enabled():
        return
    if conflicts:
        SOLVER_EVENTS.labels("conflicts").inc(conflicts)
    if propagations:
        SOLVER_EVENTS.labels("propagations").inc(propagations)
    if decisions:
        SOLVER_EVENTS.labels("decisions").inc(decisions)
    if restarts:
        SOLVER_EVENTS.labels("restarts").inc(restarts)
    SOLVER_LEARNED_CLAUSES.set(learned)


def record_theory(checks: int, pivots: int, conflicts: int) -> None:
    """Flush DPLL(T) theory-engine deltas at the end of a check."""
    if not telemetry_enabled():
        return
    if checks:
        SOLVER_EVENTS.labels("theory_checks").inc(checks)
    if pivots:
        SOLVER_EVENTS.labels("theory_pivots").inc(pivots)
    if conflicts:
        SOLVER_EVENTS.labels("theory_conflicts").inc(conflicts)


def record_omt_rounds(rounds: int) -> None:
    """Flush OMT improvement rounds at the end of an optimize call."""
    if not telemetry_enabled():
        return
    if rounds:
        SOLVER_EVENTS.labels("omt_rounds").inc(rounds)


def record_auth(key: str, outcome: str) -> None:
    """One authentication decision for a (possibly anonymous) key."""
    if not telemetry_enabled():
        return
    AUTH_REQUESTS.labels(key, outcome).inc()


def record_shed(key: str) -> None:
    """One submission refused by the load shedder."""
    if not telemetry_enabled():
        return
    SHED_REQUESTS.labels(key).inc()


def record_peer_fetch(backend: str, outcome: str) -> None:
    """One peer fetch attempt: ``outcome`` in {hit, miss, error}."""
    if not telemetry_enabled():
        return
    STORE_PEER_FETCHES.labels(backend, outcome).inc()


def record_job_event(event: str) -> None:
    """One job lifecycle event published to the streaming broker."""
    if not telemetry_enabled():
        return
    JOB_EVENTS_PUBLISHED.labels(event).inc()
