"""Prometheus text exposition (version 0.0.4) and a minimal scraper.

:func:`render_prometheus` turns :meth:`MetricRegistry.collect`
snapshots into a conformant text document — sanitized names, escaped
label values, one ``# HELP``/``# TYPE`` pair per family, cumulative
``le`` histogram buckets ending in ``+Inf`` plus ``_sum``/``_count``.

:func:`parse_prometheus` / :func:`validate_prometheus` are the in-repo
scraper: enough of the format to round-trip our own documents, assert
conformance in tests and CI, and let :class:`ShardRouter` merge
per-shard documents (:func:`merge_prometheus`) without duplicating
``HELP``/``TYPE`` lines.  No third-party client library involved.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CONTENT_TYPE",
    "merge_prometheus",
    "parse_prometheus",
    "render_prometheus",
    "sanitize_label_name",
    "sanitize_metric_name",
    "validate_prometheus",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_METRIC_CHAR = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHAR = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """Coerce to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (invalid chars -> ``_``)."""
    cleaned = _INVALID_METRIC_CHAR.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def sanitize_label_name(name: str) -> str:
    """Coerce to ``[a-zA-Z_][a-zA-Z0-9_]*``; reserved ``__`` prefix bent."""
    cleaned = _INVALID_LABEL_CHAR.sub("_", name) or "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    if cleaned.startswith("__"):  # reserved for Prometheus internals
        cleaned = "label" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _label_pairs(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_label_name(name)}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def render_prometheus(
    snapshots: Iterable[Mapping[str, object]],
    extra_labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render registry snapshots as one exposition document.

    ``extra_labels`` (e.g. ``{"shard": "s0"}``) are appended to every
    sample — how a sharded gateway self-identifies before the router
    merges documents.
    """
    const = dict(extra_labels or {})
    lines: List[str] = []
    for family in snapshots:
        name = sanitize_metric_name(str(family["name"]))
        kind = str(family["kind"])
        help_text = str(family.get("help") or "")
        samples = family.get("samples") or []
        if not samples:
            continue
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in samples:
            labels = dict(sample.get("labels") or {})
            labels.update(const)
            if kind == "histogram":
                cumulative = 0
                bucket_labels = dict(labels)
                for bound, running in sample["buckets"]:
                    cumulative = running
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_label_pairs(bucket_labels)} {running}"
                    )
                bucket_labels["le"] = "+Inf"
                lines.append(
                    f"{name}_bucket{_label_pairs(bucket_labels)} {sample['count']}"
                )
                lines.append(
                    f"{name}_sum{_label_pairs(labels)} {_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_pairs(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_pairs(labels)} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# The scraper: parse / validate / merge.

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PART_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


class PrometheusParseError(ValueError):
    """The document violates the exposition format."""


def _unescape_label_value(raw: str) -> str:
    out = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char == "\\" and index + 1 < len(raw):
            nxt = raw[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(char)
                out.append(nxt)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_labels(raw: Optional[str], line_no: int) -> Dict[str, str]:
    if not raw:
        return {}
    labels: Dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL_PART_RE.match(raw, position)
        if match is None:
            raise PrometheusParseError(
                f"line {line_no}: malformed label block {raw!r}"
            )
        labels[match.group("name")] = _unescape_label_value(match.group("value"))
        position = match.end()
    return labels


def _parse_value(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError as exc:
        raise PrometheusParseError(f"line {line_no}: bad value {raw!r}") from exc


class ParsedFamily:
    """One family from a scraped document."""

    __slots__ = ("name", "kind", "help", "samples", "lines")

    def __init__(self, name: str, kind: str = "untyped", help_text: str = "") -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        #: ``(sample_name, labels, value)`` triples, document order.
        self.samples: List[Tuple[str, Dict[str, str], float]] = []
        #: Raw sample lines, for lossless re-emission by the merger.
        self.lines: List[str] = []


def _family_of(sample_name: str, known: Mapping[str, ParsedFamily]) -> str:
    # histogram series ride under their parent family name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in known and known[base].kind == "histogram":
                return base
    return sample_name


def parse_prometheus(text: str) -> Dict[str, ParsedFamily]:
    """Parse an exposition document into families (document order kept)."""
    families: Dict[str, ParsedFamily] = {}

    def family(name: str) -> ParsedFamily:
        if name not in families:
            families[name] = ParsedFamily(name)
        return families[name]

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                # "# TYPE name kind" -> parts = ["#","TYPE",name,kind]
                name = parts[2]
                kind = parts[3] if len(parts) > 3 else "untyped"
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise PrometheusParseError(
                        f"line {line_no}: unknown TYPE {kind!r}"
                    )
                entry = family(name)
                if entry.samples:
                    raise PrometheusParseError(
                        f"line {line_no}: TYPE for {name!r} after its samples"
                    )
                entry.kind = kind
            elif len(parts) >= 3 and parts[1] == "HELP":
                name = parts[2]
                family(name).help = parts[3] if len(parts) > 3 else ""
            continue  # other comments ignored
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusParseError(f"line {line_no}: malformed sample {line!r}")
        sample_name = match.group("name")
        if not _METRIC_NAME_RE.match(sample_name):
            raise PrometheusParseError(
                f"line {line_no}: invalid metric name {sample_name!r}"
            )
        labels = _parse_labels(match.group("labels"), line_no)
        for label_name in labels:
            if not _LABEL_NAME_RE.match(label_name):
                raise PrometheusParseError(
                    f"line {line_no}: invalid label name {label_name!r}"
                )
        value = _parse_value(match.group("value"), line_no)
        entry = family(_family_of(sample_name, families))
        entry.samples.append((sample_name, labels, value))
        entry.lines.append(raw_line)
    return families


def validate_prometheus(text: str) -> Dict[str, ParsedFamily]:
    """Parse *and* enforce the invariants our exposition guarantees.

    Beyond well-formedness: every histogram's ``le`` buckets are
    cumulative per label set, the ``+Inf`` bucket equals ``_count``, and
    ``_sum``/``_count`` series exist.  Raises
    :class:`PrometheusParseError` with the first violation.
    """
    families = parse_prometheus(text)
    for name, entry in families.items():
        if entry.kind == "histogram":
            _validate_histogram(name, entry)
        elif entry.kind == "counter":
            for sample_name, _labels, value in entry.samples:
                if value < 0:
                    raise PrometheusParseError(
                        f"counter {sample_name} has negative value {value}"
                    )
    return families


def _histogram_series_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def _validate_histogram(name: str, entry: ParsedFamily) -> None:
    buckets: Dict[Tuple, List[Tuple[float, float]]] = {}
    sums: Dict[Tuple, float] = {}
    counts: Dict[Tuple, float] = {}
    for sample_name, labels, value in entry.samples:
        key = _histogram_series_key(labels)
        if sample_name == f"{name}_bucket":
            if "le" not in labels:
                raise PrometheusParseError(f"{sample_name} missing 'le' label")
            buckets.setdefault(key, []).append(
                (_parse_value(labels["le"], 0), value)
            )
        elif sample_name == f"{name}_sum":
            sums[key] = value
        elif sample_name == f"{name}_count":
            counts[key] = value
        else:
            raise PrometheusParseError(
                f"unexpected series {sample_name!r} under histogram {name!r}"
            )
    if not buckets:
        raise PrometheusParseError(f"histogram {name!r} has no buckets")
    for key, series in buckets.items():
        if key not in sums:
            raise PrometheusParseError(f"histogram {name!r} series missing _sum")
        if key not in counts:
            raise PrometheusParseError(f"histogram {name!r} series missing _count")
        previous = None
        for bound, value in series:  # document order == ascending bounds
            if previous is not None:
                if bound <= previous[0]:
                    raise PrometheusParseError(
                        f"histogram {name!r} buckets out of order "
                        f"({bound} after {previous[0]})"
                    )
                if value < previous[1]:
                    raise PrometheusParseError(
                        f"histogram {name!r} buckets not cumulative "
                        f"(le={bound} count {value} < {previous[1]})"
                    )
            previous = (bound, value)
        if series[-1][0] != float("inf"):
            raise PrometheusParseError(f"histogram {name!r} missing +Inf bucket")
        if series[-1][1] != counts[key]:
            raise PrometheusParseError(
                f"histogram {name!r} +Inf bucket {series[-1][1]} != _count {counts[key]}"
            )


def merge_prometheus(documents: Sequence[str]) -> str:
    """Merge per-shard documents into one conformant document.

    Families keep one ``HELP``/``TYPE`` pair; sample lines concatenate
    in shard order (shards disambiguate by their own ``shard`` label).
    Documents that fail to parse are skipped — a dying shard must not
    take the fleet's scrape down with it.
    """
    merged: Dict[str, ParsedFamily] = {}
    order: List[str] = []
    for document in documents:
        try:
            families = parse_prometheus(document)
        except PrometheusParseError:
            continue
        for name, entry in families.items():
            existing = merged.get(name)
            if existing is None:
                clone = ParsedFamily(name, entry.kind, entry.help)
                clone.samples.extend(entry.samples)
                clone.lines.extend(entry.lines)
                merged[name] = clone
                order.append(name)
            else:
                if existing.kind != entry.kind:
                    continue  # type clash: keep the first shard's series
                existing.samples.extend(entry.samples)
                existing.lines.extend(entry.lines)
    lines: List[str] = []
    for name in order:
        entry = merged[name]
        if entry.help:
            lines.append(f"# HELP {name} {_escape_help(entry.help)}")
        if entry.kind != "untyped":
            lines.append(f"# TYPE {name} {entry.kind}")
        lines.extend(entry.lines)
    return "\n".join(lines) + "\n"
