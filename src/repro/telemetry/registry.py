"""Thread-safe process-wide metric registry with sliding-window stats.

Three instrument kinds, all label-aware:

``Counter``
    Monotone float; ``inc(amount)`` on the hot path, or
    ``set_total(value)`` when mirroring an external monotone source at
    scrape time (a collector).  Windowed per-second rates over the last
    1/5/15 minutes.

``Gauge``
    Last-value float; ``set`` / ``inc`` / ``dec``.

``Histogram``
    Fixed upper-bound buckets (seconds by default, matching the
    gateway's latency buckets) plus ``sum``/``count``, and a windowed
    ring from which p50/p95/p99 over the last 1/5/15 minutes are
    interpolated — no raw samples are retained.

Hot-path discipline matches ``repro.trace``/``repro.resilience``: every
mutating method begins ``if not _ENABLED: return`` where ``_ENABLED``
is a module global, so a disabled hook costs one global read (~40 ns,
tracked in BENCH_perf.json's ``telemetry`` key).  ``os.register_at_fork``
resets child copies — fresh locks, zeroed values — so a forked pool
worker never re-reports its parent's counts.

The sliding window is a ring of 60 slots x 15 s = 15 minutes.  Each
slot is tagged with its epoch (``now // 15``); writes lazily reset
slots left over from a previous lap, reads sum only slots whose epoch
falls inside the requested window.  The current partial slot is
included, so a "1 minute" window covers between 45 and 60 seconds of
wall clock — cheap, lock-free-read-friendly, and plenty for dashboards.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "REGISTRY",
    "WINDOWS",
    "disable_telemetry",
    "enable_telemetry",
    "telemetry_enabled",
]

#: Window name -> span in seconds.  Ordered shortest-first everywhere.
WINDOWS: Dict[str, float] = {"1m": 60.0, "5m": 300.0, "15m": 900.0}

_SLOT_SECONDS = 15.0
_SLOT_COUNT = 60  # 60 x 15 s rings cover the longest window (15 m).

#: Histogram upper bounds in *seconds*; the same grid as the gateway's
#: ``LATENCY_BUCKETS_MS`` so JSON and Prometheus views agree.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_ENABLED = False

# Patchable in tests to drive the window ring with a fake clock.
_now = time.monotonic


def telemetry_enabled() -> bool:
    """True when metric hooks record (the disabled path is ~40 ns)."""
    return _ENABLED


def enable_telemetry() -> None:
    """Turn recording on process-wide (idempotent)."""
    global _ENABLED
    _ENABLED = True


def disable_telemetry() -> None:
    """Turn recording off process-wide (tests, benchmarks)."""
    global _ENABLED
    _ENABLED = False


def _quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[float],
    total: float,
    quantile: float,
) -> float:
    """Interpolate a quantile from non-cumulative bucket counts.

    Linear within the bucket (Prometheus ``histogram_quantile``
    semantics); observations beyond the last finite bound clamp to it.
    """
    if total <= 0:
        return 0.0
    rank = quantile * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count <= 0:
            continue
        previous = cumulative
        cumulative += count
        if cumulative >= rank:
            if index >= len(bounds):  # +Inf bucket: clamp.
                return float(bounds[-1])
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            return lower + (upper - lower) * ((rank - previous) / count)
    return float(bounds[-1])


class _ScalarRing:
    """Per-slot float accumulator for counter increments."""

    __slots__ = ("epochs", "values")

    def __init__(self) -> None:
        self.epochs = [-1] * _SLOT_COUNT
        self.values = [0.0] * _SLOT_COUNT

    def add(self, amount: float, now: float) -> None:
        epoch = int(now // _SLOT_SECONDS)
        slot = epoch % _SLOT_COUNT
        if self.epochs[slot] != epoch:
            self.epochs[slot] = epoch
            self.values[slot] = 0.0
        self.values[slot] += amount

    def total(self, window_seconds: float, now: float) -> float:
        epoch = int(now // _SLOT_SECONDS)
        span = min(_SLOT_COUNT, max(1, int(window_seconds // _SLOT_SECONDS)))
        total = 0.0
        for wanted in range(epoch - span + 1, epoch + 1):
            slot = wanted % _SLOT_COUNT
            if self.epochs[slot] == wanted:
                total += self.values[slot]
        return total


class _HistogramRing:
    """Per-slot (bucket counts, sum, count) for windowed percentiles."""

    __slots__ = ("epochs", "buckets", "sums", "counts", "_width")

    def __init__(self, num_buckets: int) -> None:
        self._width = num_buckets
        self.epochs = [-1] * _SLOT_COUNT
        self.buckets = [[0] * num_buckets for _ in range(_SLOT_COUNT)]
        self.sums = [0.0] * _SLOT_COUNT
        self.counts = [0] * _SLOT_COUNT

    def add(self, bucket_index: int, value: float, now: float) -> None:
        epoch = int(now // _SLOT_SECONDS)
        slot = epoch % _SLOT_COUNT
        if self.epochs[slot] != epoch:
            self.epochs[slot] = epoch
            self.buckets[slot] = [0] * self._width
            self.sums[slot] = 0.0
            self.counts[slot] = 0
        self.buckets[slot][bucket_index] += 1
        self.sums[slot] += value
        self.counts[slot] += 1

    def merged(
        self, window_seconds: float, now: float,
    ) -> Tuple[List[int], float, int]:
        epoch = int(now // _SLOT_SECONDS)
        span = min(_SLOT_COUNT, max(1, int(window_seconds // _SLOT_SECONDS)))
        counts = [0] * self._width
        total_sum = 0.0
        total_count = 0
        for wanted in range(epoch - span + 1, epoch + 1):
            slot = wanted % _SLOT_COUNT
            if self.epochs[slot] != wanted:
                continue
            slot_buckets = self.buckets[slot]
            for index in range(self._width):
                counts[index] += slot_buckets[index]
            total_sum += self.sums[slot]
            total_count += self.counts[slot]
        return counts, total_sum, total_count


class Counter:
    """A monotone counter child (one label combination)."""

    __slots__ = ("_lock", "value", "_ring")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0
        self._ring = _ScalarRing()

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount
            self._ring.add(amount, _now())

    def set_total(self, total: float) -> None:
        """Mirror an external monotone source (collector use).

        The delta since the last mirror lands in the window ring; a
        backwards step (source restarted) resets without going negative.
        """
        if not _ENABLED:
            return
        with self._lock:
            delta = total - self.value
            self.value = float(total)
            if delta > 0:
                self._ring.add(delta, _now())

    def rates(self) -> Dict[str, float]:
        """Per-second rate over each window."""
        now = _now()
        with self._lock:
            return {
                name: self._ring.total(seconds, now) / seconds
                for name, seconds in WINDOWS.items()
            }

    def _reset(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0
        self._ring = _ScalarRing()

    def _snapshot(self) -> Dict[str, object]:
        now = _now()
        with self._lock:
            return {
                "value": self.value,
                "rates": {
                    name: self._ring.total(seconds, now) / seconds
                    for name, seconds in WINDOWS.items()
                },
            }


class Gauge:
    """A last-value gauge child."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self.value -= amount

    def _reset(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def _snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"value": self.value}


class Histogram:
    """A fixed-bucket histogram child with windowed percentiles."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count", "_ring")

    def __init__(self, bounds: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self.bounds = tuple(float(b) for b in bounds)
        # counts[i] observations in (bounds[i-1], bounds[i]];
        # counts[-1] is the +Inf overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._ring = _HistogramRing(len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            self._ring.add(index, value, _now())

    def window_stats(self, window: str = "5m") -> Dict[str, float]:
        """``{count, sum, p50, p95, p99}`` over one named window."""
        seconds = WINDOWS[window]
        now = _now()
        with self._lock:
            counts, total_sum, total_count = self._ring.merged(seconds, now)
        return {
            "count": float(total_count),
            "sum": total_sum,
            "p50": _quantile_from_buckets(self.bounds, counts, total_count, 0.50),
            "p95": _quantile_from_buckets(self.bounds, counts, total_count, 0.95),
            "p99": _quantile_from_buckets(self.bounds, counts, total_count, 0.99),
        }

    def _reset(self) -> None:
        self._lock = threading.Lock()
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._ring = _HistogramRing(len(self.bounds) + 1)

    def _snapshot(self) -> Dict[str, object]:
        now = _now()
        with self._lock:
            lifetime = list(self.counts)
            total_sum = self.sum
            total_count = self.count
            windows = {}
            for name, seconds in WINDOWS.items():
                counts, w_sum, w_count = self._ring.merged(seconds, now)
                windows[name] = {
                    "count": w_count,
                    "sum": w_sum,
                    "p50": _quantile_from_buckets(self.bounds, counts, w_count, 0.50),
                    "p95": _quantile_from_buckets(self.bounds, counts, w_count, 0.95),
                    "p99": _quantile_from_buckets(self.bounds, counts, w_count, 0.99),
                }
        cumulative = []
        running = 0
        for bound, bucket_count in zip(self.bounds, lifetime):
            running += bucket_count
            cumulative.append([bound, running])
        return {
            "buckets": cumulative,  # cumulative counts up to each bound
            "sum": total_sum,
            "count": total_count,
            "windows": windows,
        }


_CHILD_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricFamily:
    """A named metric with a fixed label schema and per-label children."""

    __slots__ = ("name", "help", "kind", "labelnames", "_buckets",
                 "_lock", "_children", "_default")

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if kind not in _CHILD_FACTORIES:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if kind == "histogram" else ()
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        self._default = None if self.labelnames else self._make_child()
        if self._default is not None:
            self._children[()] = self._default

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _CHILD_FACTORIES[self.kind]()

    def labels(self, *values: object, **by_name: object):
        """The child for one label combination (created on first use)."""
        if by_name:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(by_name[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc.args[0]!r} for {self.name}") from exc
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {len(values)} values"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    # Label-less families proxy the child API so call sites read naturally.
    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def set_total(self, total: float) -> None:
        self._require_default().set_total(total)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    def rates(self) -> Dict[str, float]:
        return self._require_default().rates()

    def window_stats(self, window: str = "5m") -> Dict[str, float]:
        return self._require_default().window_stats(window)

    @property
    def value(self) -> float:
        return self._require_default().value

    def _require_default(self):
        if self._default is None:
            raise ValueError(f"{self.name} is labelled; call .labels(...) first")
        return self._default

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def _reset(self) -> None:
        self._lock = threading.Lock()
        with self._lock:
            for child in self._children.values():
                child._reset()

    def snapshot(self) -> Dict[str, object]:
        out = {
            "name": self.name,
            "help": self.help,
            "kind": self.kind,
            "labelnames": list(self.labelnames),
            "samples": [],
        }
        for key, child in self.samples():
            sample = child._snapshot()
            sample["labels"] = dict(zip(self.labelnames, key))
            out["samples"].append(sample)
        return out


class MetricRegistry:
    """Process-wide family registry plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: Dict[str, Callable[[], None]] = {}

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                        f"{existing.labelnames}, cannot re-register as {kind}"
                        f"{tuple(labelnames)}"
                    )
                return existing
            family = MetricFamily(name, help_text, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        return self._register(name, help_text, "histogram", labelnames, buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def register_collector(self, key: str, fn: Callable[[], None]) -> None:
        """Install (or replace) a scrape-time refresh callback.

        Collectors run at the top of :meth:`collect` to pull values the
        hot path does not push — store bytes, worker utilization, cache
        totals.  Keyed so a re-built component replaces, not stacks.
        """
        with self._lock:
            self._collectors[key] = fn

    def unregister_collector(self, key: str) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    def get_collector(self, key: str) -> Optional[Callable[[], None]]:
        with self._lock:
            return self._collectors.get(key)

    def run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors.values())
        for fn in collectors:
            try:
                fn()
            except Exception:  # noqa: BLE001 - scrape must survive a bad collector
                pass

    def collect(self) -> List[Dict[str, object]]:
        """Run collectors, then snapshot every family (JSON-safe)."""
        self.run_collectors()
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        return [family.snapshot() for family in families]

    def reset_values(self) -> None:
        """Zero every child (fork hygiene, tests); families survive."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family._reset()

    def _reset_after_fork(self) -> None:
        # Fresh locks (a lock held across fork would deadlock the child)
        # and zeroed values (the child must not re-report parent counts).
        self._lock = threading.Lock()
        for family in self._families.values():
            family._reset()
        self._collectors = dict(self._collectors)


#: The process-wide registry every repro surface feeds.
REGISTRY = MetricRegistry()

os.register_at_fork(after_in_child=REGISTRY._reset_after_fork)
