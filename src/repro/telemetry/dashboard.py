"""Top-style console dashboard over a live server's ``/metrics`` JSON.

Curses-free: each frame is a plain-text block; the CLI redraws it with
an ANSI home+clear unless ``--no-clear``.  :func:`render_dashboard` is
pure (document in, text out) so tests and the bundled example can
render frames without a terminal or even a socket.

Handles both document shapes: a single gateway's ``/metrics`` and the
shard router's ``{shards, aggregate, per_shard}`` envelope.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Mapping, Optional

__all__ = ["fetch_metrics", "render_dashboard"]


def fetch_metrics(url: str, timeout: float = 5.0) -> Dict:
    """GET ``{url}/metrics`` and return the parsed JSON document."""
    target = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _family(telemetry: Optional[List[Mapping]], name: str) -> Optional[Mapping]:
    for entry in telemetry or ():
        if entry.get("name") == name:
            return entry
    return None


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GiB"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _render_gateway(doc: Mapping, lines: List[str], heading: str = "") -> None:
    server = doc.get("server") or {}
    service = doc.get("service") or {}
    telemetry = doc.get("telemetry") or []
    requests = doc.get("requests") or {}

    if heading:
        lines.append(heading)

    uptime = float(server.get("uptime_seconds") or 0.0)
    lines.append(
        f"  server v{server.get('version', '?')}"
        f"  up {uptime:8.1f}s"
        f"  jobs tracked {server.get('jobs_tracked', 0)}"
    )

    # -- scheduler saturation
    workers = int(service.get("workers") or 0)
    busy = int(service.get("busy_workers") or 0)
    depth = int(service.get("queue_depth") or 0)
    util = float(service.get("worker_utilization") or 0.0)
    lines.append(
        f"  workers {busy}/{workers} busy {_bar(busy / workers if workers else 0.0)}"
        f"  queue {depth:4d}  utilization {100.0 * util:5.1f}%"
    )
    lines.append(
        "  jobs: "
        + "  ".join(
            f"{key} {int(service.get(key, 0))}"
            for key in ("submitted", "deduplicated", "completed", "failed",
                        "cancelled", "worker_crashes")
        )
    )

    # -- caches
    l2 = service.get("l2") or {}
    l1_rate = service.get("l1_hit_rate")
    l2_rate = service.get("l2_hit_rate") if "l2" in service else None

    def _pct(rate) -> str:
        return f"{100.0 * float(rate):5.1f}%" if rate is not None else "    --"

    store_bytes = l2.get("total_bytes")
    lines.append(
        f"  cache: L1 hit {_pct(l1_rate)}  L2 hit {_pct(l2_rate)}"
        + (f"  store {_fmt_bytes(float(store_bytes))}" if store_bytes is not None else "")
    )

    # -- requests: totals plus 1-minute rate and 5-minute p95 per route
    total_reqs = sum(int(stats.get("count", 0)) for stats in requests.values())
    req_rate = 0.0
    http_family = _family(telemetry, "repro_http_requests_total")
    if http_family:
        req_rate = sum(
            float((sample.get("rates") or {}).get("1m", 0.0))
            for sample in http_family.get("samples", ())
        )
    lines.append(f"  requests: {total_reqs} total, {req_rate:6.2f} req/s (1m)")
    busiest = sorted(
        requests.items(), key=lambda item: -int(item[1].get("count", 0))
    )[:6]
    for route, stats in busiest:
        windows = stats.get("windows") or {}
        five = windows.get("5m") or {}
        lines.append(
            f"    {route:<22} n={int(stats.get('count', 0)):<6}"
            f" p95(5m) {float(five.get('p95_ms', 0.0)):8.2f} ms"
            f"  err {int(stats.get('server_errors', 0))}"
        )

    # -- solver rates (1-minute window)
    solver = _family(telemetry, "repro_solver_events_total")
    if solver and solver.get("samples"):
        parts = []
        for sample in solver["samples"]:
            event = (sample.get("labels") or {}).get("event", "?")
            rate = float((sample.get("rates") or {}).get("1m", 0.0))
            parts.append(f"{event} {rate:8.1f}/s")
        lines.append("  solver (1m): " + "  ".join(parts[:4]))
        if len(parts) > 4:
            lines.append("               " + "  ".join(parts[4:]))

    # -- per-technique compile p95
    compiles = _family(telemetry, "repro_compile_duration_seconds")
    if compiles and compiles.get("samples"):
        lines.append("  compile p95 (5m):")
        for sample in compiles["samples"]:
            technique = (sample.get("labels") or {}).get("technique", "?")
            five = (sample.get("windows") or {}).get("5m") or {}
            lines.append(
                f"    {technique:<14} n={int(five.get('count', 0)):<5}"
                f" p95 {1e3 * float(five.get('p95', 0.0)):8.2f} ms"
                f"  lifetime n={int(sample.get('count', 0))}"
            )

    # -- process resources
    rss = _family(telemetry, "repro_process_resident_memory_bytes")
    cpu = _family(telemetry, "repro_process_cpu_seconds_total")
    fds = _family(telemetry, "repro_process_open_fds")

    def _single_value(entry: Optional[Mapping]) -> Optional[float]:
        samples = (entry or {}).get("samples") or []
        return float(samples[0]["value"]) if samples else None

    rss_value = _single_value(rss)
    cpu_value = _single_value(cpu)
    fds_value = _single_value(fds)
    if rss_value is not None or cpu_value is not None:
        resource_bits = []
        if rss_value is not None:
            resource_bits.append(f"rss {_fmt_bytes(rss_value)}")
        if cpu_value is not None:
            resource_bits.append(f"cpu {cpu_value:.1f}s")
        if fds_value is not None:
            resource_bits.append(f"fds {int(fds_value)}")
        lines.append("  process: " + "  ".join(resource_bits))


def render_dashboard(doc: Mapping, title: str = "repro telemetry") -> str:
    """One dashboard frame for a ``/metrics`` JSON document."""
    lines: List[str] = [title, "=" * max(len(title), 40)]
    per_shard = doc.get("per_shard")
    if isinstance(per_shard, Mapping):  # shard-router envelope
        aggregate = doc.get("aggregate") or {}
        lines.append(
            f"  {doc.get('shards', len(per_shard))} shards"
            f"  queue {int(aggregate.get('queue_depth', 0))}"
            f"  busy {int(aggregate.get('busy_workers', 0))}"
            f"/{int(aggregate.get('workers', 0))}"
            f"  completed {int(aggregate.get('completed', 0))}"
        )
        for shard_id in sorted(per_shard):
            lines.append("")
            _render_gateway(per_shard[shard_id], lines, heading=f"shard {shard_id}")
    else:
        _render_gateway(doc, lines)
    return "\n".join(lines) + "\n"
