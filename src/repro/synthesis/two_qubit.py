"""Resynthesis of two-qubit unitaries into the CZ + SU(2) basis.

The paper's KAK substitution rule (Fig. 3e) replaces a two-qubit block with
"a KAK decomposition using CZ and single-qubit gates".  This module builds
that replacement circuit:

1. :func:`kak_decompose` factors the block unitary into local gates around
   the canonical interaction ``N(a, b, c)``;
2. the canonical interaction is emitted as a short CZ circuit by
   :func:`synthesize_canonical`, using exact algebraic identities:

   * ``exp(i theta ZZ)`` costs one CZ when ``theta = +-pi/4`` and two CZ
     otherwise (``CX (I x Rz(-2 theta)) CX`` with ``CX = (I x H) CZ (I x H)``);
   * ``exp(i(a XX + b YY))`` costs two CZ via the conjugation identity
     ``CZ (Rx (x) Rx) CZ = exp(-1/2 i (t1 XZ + t2 ZX))`` aligned back to
     XX/YY by fixed local Cliffords;
   * the XX/YY/ZZ factors commute, so the general case is their
     concatenation.

The resulting CZ counts are 0 (local), 1 (CNOT/CZ class), 2 (any class with
c = 0, e.g. iSWAP), 3 (classes with |c| = pi/4, e.g. SWAP) and 4 for fully
generic interactions.  The theoretical optimum for the generic case is 3;
the conservative construction keeps every identity exactly verifiable (see
DESIGN.md).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.circuits import gates as glib
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.synthesis.kak import kak_decompose
from repro.synthesis.single_qubit import gate_from_matrix


_DEFAULT_ATOL = 1e-9


def _reduce_angle(angle: float) -> Tuple[float, int]:
    """Reduce an interaction angle into (-pi/4, pi/4] modulo pi/2.

    Returns ``(reduced_angle, k)`` with ``angle = reduced + k * pi/2``; the
    removed multiples of pi/2 correspond to local Pauli factors (absorbed by
    the caller into the surrounding single-qubit gates).
    """
    k = round(angle / (math.pi / 2))
    reduced = angle - k * math.pi / 2
    if reduced <= -math.pi / 4 + 1e-15:
        reduced += math.pi / 2
        k -= 1
    return reduced, k


def _append_zz_factor(circuit: QuantumCircuit, theta: float, atol: float) -> None:
    """Append a circuit for ``exp(i theta ZZ)`` on qubits (0, 1)."""
    if abs(theta) < atol:
        return
    if abs(abs(theta) - math.pi / 4) < atol:
        # exp(+-i pi/4 ZZ) = e^{+-i pi/4} (P(-+pi/2) x P(-+pi/2)) CZ with P = diag(1, e^{i phi}).
        sign = 1.0 if theta > 0 else -1.0
        circuit.rz(-sign * math.pi / 2, 0)
        circuit.rz(-sign * math.pi / 2, 1)
        circuit.cz(0, 1)
        return
    # exp(i theta ZZ) = CX . (I x Rz(-2 theta)) . CX,  CX = (I x H) CZ (I x H).
    circuit.h(1)
    circuit.cz(0, 1)
    circuit.h(1)
    circuit.rz(-2 * theta, 1)
    circuit.h(1)
    circuit.cz(0, 1)
    circuit.h(1)


def _basis_change_xx(circuit: QuantumCircuit, adjoint: bool) -> None:
    """Apply H on both qubits (self-adjoint basis change Z <-> X)."""
    circuit.h(0)
    circuit.h(1)


def _append_xx_factor(circuit: QuantumCircuit, theta: float, atol: float) -> None:
    """Append a circuit for ``exp(i theta XX)`` (H-conjugated ZZ factor)."""
    if abs(theta) < atol:
        return
    _basis_change_xx(circuit, False)
    _append_zz_factor(circuit, theta, atol)
    _basis_change_xx(circuit, True)


def _append_yy_factor(circuit: QuantumCircuit, theta: float, atol: float) -> None:
    """Append a circuit for ``exp(i theta YY)`` (SH-conjugated ZZ factor)."""
    if abs(theta) < atol:
        return
    # Y = (S H) Z (S H)^dag, so exp(i theta YY) = (SH x SH) exp(i theta ZZ) (SH x SH)^dag.
    # The adjoint W^dag = H S^dag is applied first, W = S H last.
    for qubit in (0, 1):
        circuit.sdg(qubit)
        circuit.h(qubit)
    _append_zz_factor(circuit, theta, atol)
    for qubit in (0, 1):
        circuit.h(qubit)
        circuit.s(qubit)


def _append_xxyy_kernel(circuit: QuantumCircuit, a: float, b: float, atol: float) -> None:
    """Append ``exp(i (a XX + b YY))`` using two CZ gates.

    Uses the exact identity ``(V0 x V1) CZ (Rx(-2a) x Rx(-2b)) CZ (V0 x V1)^dag``
    with the alignment Cliffords ``V0 = Rx(-pi/2)`` (X -> X, Z -> Y) and
    ``V1 = H S^dag`` (Z -> X, X -> Y).
    """
    if abs(a) < atol and abs(b) < atol:
        return
    # (V0 x V1)^dag applied first (rightmost in matrix order).
    circuit.rx(math.pi / 2, 0)           # V0^dag = Rx(pi/2)
    circuit.h(1)                         # V1^dag = S H  (apply H, then S)
    circuit.s(1)
    circuit.cz(0, 1)
    circuit.rx(-2 * a, 0)
    circuit.rx(-2 * b, 1)
    circuit.cz(0, 1)
    circuit.rx(-math.pi / 2, 0)          # V0
    circuit.sdg(1)                       # V1 = H S^dag  (apply S^dag, then H)
    circuit.h(1)


def synthesize_canonical(a: float, b: float, c: float, atol: float = _DEFAULT_ATOL) -> QuantumCircuit:
    """Return a CZ-basis circuit equal (up to global phase) to ``N(a, b, c)``.

    The coordinates may be arbitrary reals; multiples of pi/2 are removed
    first (they only contribute local Paulis and a global phase).
    """
    circuit = QuantumCircuit(2, name="canonical")
    reduced = []
    paulis = {"x": glib.x(), "y": glib.y(), "z": glib.z()}
    pauli_axes = ("x", "y", "z")
    for axis, angle in zip(pauli_axes, (a, b, c)):
        reduced_angle, k = _reduce_angle(angle)
        reduced.append(reduced_angle)
        if k % 2 != 0:
            # exp(i pi/2 P P) = i (P x P): absorb the Pauli on both qubits.
            circuit.append(paulis[axis], [0])
            circuit.append(paulis[axis], [1])
    a_r, b_r, c_r = reduced

    significant = [abs(angle) > atol for angle in (a_r, b_r, c_r)]
    if significant[0] and significant[1]:
        _append_xxyy_kernel(circuit, a_r, b_r, atol)
        _append_zz_factor(circuit, c_r, atol)
    elif significant[0] and significant[2]:
        # exp(i(a XX + c ZZ)) = (R x R)^dag exp(i(a XX + c YY)) (R x R)
        # with R = Rx(-pi/2) mapping Z -> Y while fixing X.
        circuit.rx(-math.pi / 2, 0)
        circuit.rx(-math.pi / 2, 1)
        _append_xxyy_kernel(circuit, a_r, c_r, atol)
        circuit.rx(math.pi / 2, 0)
        circuit.rx(math.pi / 2, 1)
    elif significant[1] and significant[2]:
        # exp(i(b YY + c ZZ)) = (T x T)^dag exp(i(b XX + c YY)) (T x T)
        # with T = S H mapping Y -> X and Z -> Y.
        for qubit in (0, 1):
            circuit.h(qubit)
            circuit.s(qubit)
        _append_xxyy_kernel(circuit, b_r, c_r, atol)
        for qubit in (0, 1):
            circuit.sdg(qubit)
            circuit.h(qubit)
    else:
        _append_xx_factor(circuit, a_r, atol)
        _append_yy_factor(circuit, b_r, atol)
        _append_zz_factor(circuit, c_r, atol)
    return circuit


def decompose_two_qubit(
    unitary: np.ndarray,
    atol: float = _DEFAULT_ATOL,
    merge_single_qubit_gates: bool = True,
) -> QuantumCircuit:
    """Decompose an arbitrary two-qubit unitary into CZ and single-qubit gates.

    The output circuit acts on qubits (0, 1) and reproduces ``unitary`` up to
    a global phase; the reconstruction is verified internally and a
    ``RuntimeError`` is raised if verification fails.
    """
    unitary = np.asarray(unitary, dtype=complex)
    decomposition = kak_decompose(unitary)
    circuit = QuantumCircuit(2, name="kak")

    circuit.append(gate_from_matrix(decomposition.k2_q0, atol=1e-8), [0])
    circuit.append(gate_from_matrix(decomposition.k2_q1, atol=1e-8), [1])
    canonical = synthesize_canonical(decomposition.a, decomposition.b, decomposition.c, atol)
    circuit.extend(canonical.instructions)
    circuit.append(gate_from_matrix(decomposition.k1_q0, atol=1e-8), [0])
    circuit.append(gate_from_matrix(decomposition.k1_q1, atol=1e-8), [1])

    if merge_single_qubit_gates:
        from repro.synthesis.single_qubit import merge_single_qubit_runs

        circuit = merge_single_qubit_runs(circuit)

    if not allclose_up_to_global_phase(circuit_unitary(circuit), unitary, atol=1e-6):
        raise RuntimeError("two-qubit resynthesis failed verification")
    return circuit


def cz_count(circuit: QuantumCircuit) -> int:
    """Return the number of CZ-family gates in a circuit."""
    return sum(1 for inst in circuit.instructions if inst.name in ("cz", "cz_d"))
