"""Two-qubit KAK (Cartan) decomposition via the magic basis.

Every two-qubit unitary U factors as::

    U = e^{i phase} (K1_q1 (x) K1_q0) . N(a, b, c) . (K2_q1 (x) K2_q0)

with single-qubit unitaries K1/K2 and the canonical interaction
``N(a, b, c) = exp(i (a XX + b YY + c ZZ))``.  The decomposition follows the
standard magic-basis procedure: conjugating by the magic basis turns local
unitaries into real orthogonal matrices and the canonical gate into a
diagonal phase matrix, so the problem reduces to the simultaneous
diagonalization of the real and imaginary parts of ``U_m^T U_m``.

The module also provides the Makhlin local invariants and Weyl coordinates
used to classify two-qubit interactions.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

# Pauli matrices and two-qubit interaction generators (little-endian kron order:
# the SECOND tensor factor of np.kron is qubit 0).
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.diag([1.0, -1.0]).astype(complex)
_XX = np.kron(_X, _X)
_YY = np.kron(_Y, _Y)
_ZZ = np.kron(_Z, _Z)

#: The magic (Bell-like) basis transformation.
MAGIC = np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
) / math.sqrt(2)


def canonical_gate_matrix(a: float, b: float, c: float) -> np.ndarray:
    """Return ``N(a, b, c) = exp(i (a XX + b YY + c ZZ))`` as a 4x4 matrix."""
    generator = a * _XX + b * _YY + c * _ZZ
    eigenvalues, eigenvectors = np.linalg.eigh(generator)
    return (eigenvectors * np.exp(1j * eigenvalues)) @ eigenvectors.conj().T


def makhlin_invariants(unitary: np.ndarray) -> Tuple[float, float, float]:
    """Return the Makhlin local invariants ``(Re g1, Im g1, g2)`` of a 2q gate."""
    unitary = np.asarray(unitary, dtype=complex)
    su4 = unitary / np.linalg.det(unitary) ** 0.25
    magic_frame = MAGIC.conj().T @ su4 @ MAGIC
    m = magic_frame.T @ magic_frame
    g1 = np.trace(m) ** 2 / 16
    g2 = (np.trace(m) ** 2 - np.trace(m @ m)) / 4
    return float(g1.real), float(g1.imag), float(g2.real)


def kron_factor(unitary: np.ndarray, atol: float = 1e-9) -> Tuple[np.ndarray, np.ndarray, complex]:
    """Factor a product unitary into single-qubit parts.

    Given a 4x4 matrix equal (up to a phase) to ``kron(B, A)`` -- i.e. ``A``
    acting on qubit 0 and ``B`` on qubit 1 in little-endian convention --
    return ``(A, B, phase)`` with ``unitary = phase * kron(B, A)`` and both
    factors special-unitary.

    Raises
    ------
    ValueError
        If the matrix is not a tensor product of single-qubit operations.
    """
    unitary = np.asarray(unitary, dtype=complex)
    # Reshape into blocks: unitary[2*i + k, 2*j + l] = B[i, j] * A[k, l].
    blocks = unitary.reshape(2, 2, 2, 2)
    # Find the block with the largest norm to anchor the factorization.
    norms = np.array([[np.abs(blocks[i, :, j, :]).max() for j in range(2)] for i in range(2)])
    anchor = np.unravel_index(np.argmax(norms), norms.shape)
    a_matrix = blocks[anchor[0], :, anchor[1], :].copy()
    a_norm = np.sqrt(np.abs(np.linalg.det(a_matrix)))
    if a_norm < atol:
        raise ValueError("matrix is not a tensor product of single-qubit gates")
    a_matrix = a_matrix / np.sqrt(np.linalg.det(a_matrix) + 0j)
    b_matrix = np.zeros((2, 2), dtype=complex)
    for i in range(2):
        for j in range(2):
            block = blocks[i, :, j, :]
            # b_ij is the coefficient of A in this block.
            b_matrix[i, j] = np.trace(block @ np.linalg.inv(a_matrix)) / 2
    phase = 1.0 + 0j
    det_b = np.linalg.det(b_matrix)
    if abs(det_b) < atol:
        raise ValueError("matrix is not a tensor product of single-qubit gates")
    scale = cmath.sqrt(det_b)
    b_matrix = b_matrix / scale
    phase = scale
    reconstructed = phase * np.kron(b_matrix, a_matrix)
    if not np.allclose(reconstructed, unitary, atol=max(atol, 1e-7)):
        raise ValueError("matrix is not a tensor product of single-qubit gates")
    return a_matrix, b_matrix, phase


@dataclass
class KakDecomposition:
    """Result of :func:`kak_decompose`.

    The decomposition reads (in matrix form, little-endian kron order)::

        U = e^{i phase} . kron(k1_q1, k1_q0) . N(a, b, c) . kron(k2_q1, k2_q0)
    """

    a: float
    b: float
    c: float
    k1_q0: np.ndarray
    k1_q1: np.ndarray
    k2_q0: np.ndarray
    k2_q1: np.ndarray
    phase: complex

    def canonical_matrix(self) -> np.ndarray:
        """The canonical interaction part ``N(a, b, c)``."""
        return canonical_gate_matrix(self.a, self.b, self.c)

    def reconstruct(self) -> np.ndarray:
        """Rebuild the original unitary from the factors."""
        left = np.kron(self.k1_q1, self.k1_q0)
        right = np.kron(self.k2_q1, self.k2_q0)
        return self.phase * (left @ self.canonical_matrix() @ right)

    def interaction_strength(self) -> float:
        """Total interaction content |a| + |b| + |c| (0 for local gates)."""
        return abs(self.a) + abs(self.b) + abs(self.c)


def _simultaneous_diagonalize(m2: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Find a real orthogonal P with P^T m2 P diagonal (m2 unitary symmetric)."""
    real_part = m2.real
    imag_part = m2.imag
    for _ in range(40):
        weight = rng.uniform(0.1, 2.0)
        _, candidate = np.linalg.eigh(real_part + weight * imag_part)
        check = candidate.T @ m2 @ candidate
        if np.abs(check - np.diag(np.diag(check))).max() < 1e-9:
            return candidate
    raise RuntimeError("failed to simultaneously diagonalize the magic-frame Gram matrix")


def kak_decompose(unitary: np.ndarray, atol: float = 1e-9) -> KakDecomposition:
    """Compute the KAK decomposition of a two-qubit unitary."""
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise ValueError("kak_decompose expects a 4x4 unitary")
    if not np.allclose(unitary @ unitary.conj().T, np.eye(4), atol=1e-7):
        raise ValueError("input matrix is not unitary")

    determinant = np.linalg.det(unitary)
    su4 = unitary * determinant ** (-0.25)
    global_phase = determinant ** 0.25

    magic_frame = MAGIC.conj().T @ su4 @ MAGIC
    m2 = magic_frame.T @ magic_frame

    rng = np.random.default_rng(2023)
    p_matrix = _simultaneous_diagonalize(m2, rng)
    if np.linalg.det(p_matrix) < 0:
        p_matrix = p_matrix.copy()
        p_matrix[:, 0] = -p_matrix[:, 0]

    diagonal = np.diag(p_matrix.T @ m2 @ p_matrix)
    angles = np.angle(diagonal) / 2.0

    # Choose the branch of each angle (theta vs theta + pi) so that the left
    # factor in the magic frame is a real matrix, column by column.
    left_columns = magic_frame @ p_matrix
    for j in range(4):
        column = left_columns[:, j] * np.exp(-1j * angles[j])
        if np.abs(column.imag).max() > 1e-7:
            angles[j] += math.pi
            column = left_columns[:, j] * np.exp(-1j * angles[j])
        if np.abs(column.imag).max() > 1e-6:
            raise RuntimeError("magic-frame factor is not real; KAK decomposition failed")
    k1_magic = (left_columns * np.exp(-1j * angles)[np.newaxis, :]).real
    # Ensure the left factor is special orthogonal by absorbing a sign into
    # the canonical part (shift one angle by pi).
    if np.linalg.det(k1_magic) < 0:
        angles[0] += math.pi
        k1_magic = k1_magic.copy()
        k1_magic[:, 0] = -k1_magic[:, 0]
    k2_magic = p_matrix.T
    # Normalize the angle sum to zero (a 2*pi shift leaves the phases unchanged).
    shift = round(float(np.sum(angles)) / (2 * math.pi))
    angles[0] -= shift * 2 * math.pi

    # Map the diagonal phases back to canonical coordinates:
    #   d0 = a - b + c, d1 = a + b - c, d2 = -a - b - c, d3 = -a + b + c
    a = float((angles[0] + angles[1]) / 2)
    b = float((angles[1] + angles[3]) / 2)
    c = float((angles[0] + angles[3]) / 2)

    k1 = MAGIC @ k1_magic @ MAGIC.conj().T
    k2 = MAGIC @ k2_magic @ MAGIC.conj().T

    k1_q0, k1_q1, phase1 = kron_factor(k1, atol)
    k2_q0, k2_q1, phase2 = kron_factor(k2, atol)

    decomposition = KakDecomposition(
        a=a,
        b=b,
        c=c,
        k1_q0=k1_q0,
        k1_q1=k1_q1,
        k2_q0=k2_q0,
        k2_q1=k2_q1,
        phase=global_phase * phase1 * phase2,
    )
    # Safety net: verify the reconstruction and fail loudly rather than return
    # a silently wrong decomposition.
    if not np.allclose(decomposition.reconstruct(), unitary, atol=1e-6):
        raise RuntimeError("KAK reconstruction failed verification")
    return decomposition


def weyl_coordinates(unitary: np.ndarray) -> Tuple[float, float, float]:
    """Return interaction coordinates (a, b, c) folded into [0, pi/4] per axis.

    The coordinates identify the local-equivalence class of the gate up to
    the usual Weyl-chamber symmetries; they are primarily used by tests and
    by the rule engine to recognize CNOT-, iSWAP- and SWAP-like blocks.
    """
    decomposition = kak_decompose(np.asarray(unitary, dtype=complex))
    folded = []
    for angle in (decomposition.a, decomposition.b, decomposition.c):
        reduced = math.fmod(angle, math.pi / 2)
        if reduced < 0:
            reduced += math.pi / 2
        # Fold into [0, pi/4].
        if reduced > math.pi / 4:
            reduced = math.pi / 2 - reduced
        folded.append(abs(reduced))
    return tuple(sorted(folded, reverse=True))  # type: ignore[return-value]
