"""Single-qubit synthesis: ZYZ Euler decomposition and 1q-run merging."""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

from repro.circuits import gates as glib
from repro.circuits.circuit import Instruction, QuantumCircuit


def zyz_decompose(matrix: np.ndarray, atol: float = 1e-12) -> Tuple[float, float, float, float]:
    """Decompose a 2x2 unitary as ``e^{i gamma} Rz(phi) Ry(theta) Rz(lam)``.

    Returns ``(theta, phi, lam, gamma)``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("zyz_decompose expects a 2x2 matrix")
    determinant = np.linalg.det(matrix)
    if abs(abs(determinant) - 1.0) > 1e-8:
        raise ValueError("matrix is not unitary (|det| != 1)")
    # Normalize to SU(2).
    su2 = matrix / cmath.sqrt(determinant)
    gamma = cmath.phase(cmath.sqrt(determinant))

    # su2 = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    cos_half = abs(su2[0, 0])
    sin_half = abs(su2[1, 0])
    theta = 2 * math.atan2(sin_half, cos_half)
    if abs(su2[0, 0]) > atol and abs(su2[1, 0]) > atol:
        plus = 2 * cmath.phase(su2[1, 1])
        minus = 2 * cmath.phase(su2[1, 0])
        phi = (plus + minus) / 2
        lam = (plus - minus) / 2
    elif abs(su2[0, 0]) > atol:
        # theta ~ 0: only phi + lam matters.
        phi = 2 * cmath.phase(su2[1, 1])
        lam = 0.0
    else:
        # theta ~ pi: only phi - lam matters.
        phi = 2 * cmath.phase(su2[1, 0])
        lam = 0.0
    return theta, phi, lam, gamma


def u3_params(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Return ``(theta, phi, lam, gamma)`` so that ``matrix = e^{i gamma} u3(theta, phi, lam)``."""
    theta, phi, lam, gamma = zyz_decompose(matrix)
    # u3(theta, phi, lam) = e^{i (phi + lam)/2} Rz(phi) Ry(theta) Rz(lam)
    return theta, phi, lam, gamma - (phi + lam) / 2


def gate_from_matrix(matrix: np.ndarray, atol: float = 1e-9):
    """Return a named gate reproducing a 2x2 unitary up to global phase.

    Simple gates (identity, Pauli, Hadamard, S, T and their adjoints, plain
    rotations) are recognized; anything else becomes a ``u3`` gate.
    """
    from repro.circuits.unitary import allclose_up_to_global_phase

    candidates = [
        glib.identity(),
        glib.x(),
        glib.y(),
        glib.z(),
        glib.h(),
        glib.s(),
        glib.sdg(),
        glib.t(),
        glib.tdg(),
    ]
    for candidate in candidates:
        if allclose_up_to_global_phase(candidate.to_matrix(), matrix, atol=atol):
            return candidate
    theta, phi, lam, _ = u3_params(matrix)
    return glib.u3(theta, phi, lam)


def merge_single_qubit_runs(circuit: QuantumCircuit, atol: float = 1e-9) -> QuantumCircuit:
    """Merge consecutive single-qubit gates on the same qubit into one gate.

    Runs that multiply to the identity are dropped entirely.  Multi-qubit
    gates are left untouched and act as barriers.
    """
    merged = QuantumCircuit(circuit.num_qubits, circuit.name)
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if np.allclose(matrix, np.eye(2), atol=atol) or _is_global_phase(matrix, atol):
            return
        merged.append(gate_from_matrix(matrix, atol), [qubit])

    for instruction in circuit.instructions:
        if len(instruction.qubits) == 1:
            qubit = instruction.qubits[0]
            current = pending.get(qubit, np.eye(2, dtype=complex))
            pending[qubit] = instruction.gate.to_matrix() @ current
        else:
            for qubit in instruction.qubits:
                flush(qubit)
            merged.append(instruction.gate, instruction.qubits)
    for qubit in list(pending):
        flush(qubit)
    return merged


def _is_global_phase(matrix: np.ndarray, atol: float) -> bool:
    phase = matrix[0, 0]
    if abs(abs(phase) - 1.0) > atol:
        return False
    return bool(np.allclose(matrix, phase * np.eye(2), atol=atol))
