"""Unitary synthesis: single-qubit ZYZ and two-qubit KAK decompositions.

This subpackage implements the decomposition machinery that the paper's KAK
substitution rule (Fig. 3e) and the direct-basis-translation equivalence
library rely on:

* :func:`zyz_decompose` -- Euler-angle decomposition of any 2x2 unitary,
* :func:`kak_decompose` -- Cartan (KAK) decomposition of any 4x4 unitary
  into local gates around the canonical interaction
  ``N(a, b, c) = exp(i(a XX + b YY + c ZZ))``,
* :func:`decompose_two_qubit` -- resynthesis of an arbitrary two-qubit
  unitary into the spin-qubit CZ + SU(2) basis,
* :func:`makhlin_invariants` / :func:`weyl_coordinates` -- local-equivalence
  invariants used by tests and by the rule engine.

The CZ-count of the resynthesis is exact for the common local-equivalence
classes (identity 0, CNOT/CZ 1, classes with c = 0 including iSWAP 2,
classes with |c| = pi/4 including SWAP 3) and uses a conservative 4-CZ
construction for fully generic interactions (the theoretical optimum is 3;
see DESIGN.md for the impact of this substitution).
"""

from repro.synthesis.single_qubit import zyz_decompose, u3_params, merge_single_qubit_runs
from repro.synthesis.kak import (
    KakDecomposition,
    canonical_gate_matrix,
    kak_decompose,
    kron_factor,
    makhlin_invariants,
    weyl_coordinates,
)
from repro.synthesis.two_qubit import decompose_two_qubit, synthesize_canonical

__all__ = [
    "zyz_decompose",
    "u3_params",
    "merge_single_qubit_runs",
    "KakDecomposition",
    "canonical_gate_matrix",
    "kak_decompose",
    "kron_factor",
    "makhlin_invariants",
    "weyl_coordinates",
    "decompose_two_qubit",
    "synthesize_canonical",
]
