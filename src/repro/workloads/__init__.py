"""Workload generators used by the evaluation (Section V).

The paper evaluates the adaptation techniques on quantum-volume circuits
and on random circuits built from the gates appearing in the Fig. 3
templates (CNOT, CZ, SWAP and single-qubit rotations), with up to 4 qubits
and depth up to 160.  Both generators are deterministic given a seed.
"""

from repro.workloads.quantum_volume import quantum_volume_circuit
from repro.workloads.random_circuits import (
    random_template_circuit,
    evaluation_suite,
    WorkloadSpec,
)
from repro.workloads.named import ghz_circuit, qft_circuit, bernstein_vazirani_circuit

__all__ = [
    "quantum_volume_circuit",
    "random_template_circuit",
    "evaluation_suite",
    "WorkloadSpec",
    "ghz_circuit",
    "qft_circuit",
    "bernstein_vazirani_circuit",
]
