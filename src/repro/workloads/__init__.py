"""Workload generators used by the evaluation (Section V) and the service.

The paper evaluates the adaptation techniques on quantum-volume circuits
and on random circuits built from the gates appearing in the Fig. 3
templates (CNOT, CZ, SWAP and single-qubit rotations), with up to 4 qubits
and depth up to 160.  Named circuits (GHZ, QFT, Bernstein-Vazirani, the
QAOA ring and hardware-efficient VQE ansatz families) add structured
scenarios, and :mod:`repro.workloads.manifest` turns declarative JSON
manifests into batches for ``python -m repro.service``.  All generators
are deterministic given a seed.
"""

from repro.workloads.quantum_volume import quantum_volume_circuit
from repro.workloads.random_circuits import (
    random_template_circuit,
    evaluation_suite,
    WorkloadSpec,
)
from repro.workloads.named import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    hardware_efficient_ansatz,
    qaoa_ring_circuit,
    qft_circuit,
)
from repro.workloads.manifest import (
    WORKLOAD_BUILDERS,
    WORKLOAD_ENTRY_KEYS,
    build_workload_entry,
    load_manifest,
    parse_manifest,
)

__all__ = [
    "quantum_volume_circuit",
    "random_template_circuit",
    "evaluation_suite",
    "WorkloadSpec",
    "ghz_circuit",
    "qft_circuit",
    "bernstein_vazirani_circuit",
    "qaoa_ring_circuit",
    "hardware_efficient_ansatz",
    "WORKLOAD_BUILDERS",
    "WORKLOAD_ENTRY_KEYS",
    "build_workload_entry",
    "load_manifest",
    "parse_manifest",
]
