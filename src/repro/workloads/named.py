"""Named benchmark circuits (GHZ, QFT, Bernstein-Vazirani, ansatz families).

These small structured circuits complement the random workloads in the
examples and tests; they exercise characteristic patterns (entanglement
chains, controlled-phase ladders, CNOT fans, variational ansatz layers).
"""

from __future__ import annotations

import math
import random

from repro.circuits.circuit import QuantumCircuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """Prepare an n-qubit GHZ state with a Hadamard and a CNOT chain."""
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def qft_circuit(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """Quantum Fourier transform with controlled-phase ladder."""
    if num_qubits < 1:
        raise ValueError("the QFT needs at least 1 qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cphase(angle, control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def bernstein_vazirani_circuit(secret: str) -> QuantumCircuit:
    """Bernstein-Vazirani circuit for a binary secret string.

    The last qubit is the oracle ancilla; the secret has one qubit per bit.
    """
    if not secret or any(bit not in "01" for bit in secret):
        raise ValueError("the secret must be a non-empty binary string")
    num_qubits = len(secret) + 1
    circuit = QuantumCircuit(num_qubits, name=f"bv_{secret}")
    ancilla = num_qubits - 1
    circuit.x(ancilla)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for index, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(index, ancilla)
    for qubit in range(num_qubits - 1):
        circuit.h(qubit)
    return circuit


def qaoa_ring_circuit(num_qubits: int, layers: int = 1, seed: int = 0) -> QuantumCircuit:
    """QAOA ansatz for MaxCut on a ring of ``num_qubits`` vertices.

    Each layer applies the ring's cost unitary — one ``ZZ(gamma)``
    interaction per ring edge, realized as ``CX - RZ(2 gamma) - CX`` —
    followed by the transverse-field mixer ``RX(2 beta)`` on every qubit.
    The (gamma, beta) angles are drawn deterministically from ``seed``,
    mimicking a mid-optimization parameter vector.

    This is a swap-free but entanglement-heavy scenario: the wrap-around
    ring edge is non-adjacent on the chain topology, so routing kicks in
    for 3+ qubits — a characteristically different stress than the QV and
    random-template workloads.
    """
    if num_qubits < 2:
        raise ValueError("the QAOA ring needs at least 2 qubits")
    if layers < 1:
        raise ValueError("the QAOA ansatz needs at least 1 layer")
    rng = random.Random(seed)
    circuit = QuantumCircuit(
        num_qubits, name=f"qaoa_ring_{num_qubits}q_p{layers}_s{seed}"
    )
    for qubit in range(num_qubits):
        circuit.h(qubit)
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    if num_qubits == 2:
        edges = edges[:1]  # A 2-ring has one edge, not a doubled pair.
    for _ in range(layers):
        gamma = math.pi * rng.random()
        beta = math.pi * rng.random()
        for qubit_a, qubit_b in edges:
            circuit.cx(qubit_a, qubit_b)
            circuit.rz(2.0 * gamma, qubit_b)
            circuit.cx(qubit_a, qubit_b)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * beta, qubit)
    return circuit


def hardware_efficient_ansatz(
    num_qubits: int, layers: int = 1, seed: int = 0
) -> QuantumCircuit:
    """A hardware-efficient VQE ansatz: RY/RZ rotation layers + CZ ladders.

    Each layer applies independent ``RY``/``RZ`` rotations on every qubit
    (angles drawn deterministically from ``seed``) and entangles along a
    linear CZ ladder, which matches the spin-qubit chain connectivity —
    the scenario where substitution-rule adaptation has to compete purely
    on gate realizations, with no routing overhead in the way.
    """
    if num_qubits < 2:
        raise ValueError("the hardware-efficient ansatz needs at least 2 qubits")
    if layers < 1:
        raise ValueError("the hardware-efficient ansatz needs at least 1 layer")
    rng = random.Random(seed)
    circuit = QuantumCircuit(
        num_qubits, name=f"vqe_hwe_{num_qubits}q_l{layers}_s{seed}"
    )
    for _ in range(layers):
        for qubit in range(num_qubits):
            circuit.ry(2 * math.pi * rng.random(), qubit)
            circuit.rz(2 * math.pi * rng.random(), qubit)
        for qubit in range(num_qubits - 1):
            circuit.cz(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.ry(2 * math.pi * rng.random(), qubit)
    return circuit
