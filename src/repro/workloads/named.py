"""Named benchmark circuits (GHZ, QFT, Bernstein-Vazirani).

These small structured circuits complement the random workloads in the
examples and tests; they exercise characteristic patterns (entanglement
chains, controlled-phase ladders, CNOT fans).
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """Prepare an n-qubit GHZ state with a Hadamard and a CNOT chain."""
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def qft_circuit(num_qubits: int, include_swaps: bool = True) -> QuantumCircuit:
    """Quantum Fourier transform with controlled-phase ladder."""
    if num_qubits < 1:
        raise ValueError("the QFT needs at least 1 qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cphase(angle, control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def bernstein_vazirani_circuit(secret: str) -> QuantumCircuit:
    """Bernstein-Vazirani circuit for a binary secret string.

    The last qubit is the oracle ancilla; the secret has one qubit per bit.
    """
    if not secret or any(bit not in "01" for bit in secret):
        raise ValueError("the secret must be a non-empty binary string")
    num_qubits = len(secret) + 1
    circuit = QuantumCircuit(num_qubits, name=f"bv_{secret}")
    ancilla = num_qubits - 1
    circuit.x(ancilla)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for index, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(index, ancilla)
    for qubit in range(num_qubits - 1):
        circuit.h(qubit)
    return circuit
