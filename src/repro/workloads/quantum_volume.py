"""Quantum-volume model circuits (Cross et al. 2019).

A quantum-volume circuit on ``n`` qubits consists of ``depth`` layers; each
layer applies a random SU(4) to each pair of a random qubit permutation.
Because this reproduction expresses circuits over a discrete gate set, each
random SU(4) is emitted as its standard 3-CNOT + single-qubit-rotation form
(three alternating layers of Haar-like ``u3`` rotations interleaved with
CNOTs), which spans the generic two-qubit classes the benchmark needs.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.circuits.circuit import QuantumCircuit


def _random_u3(circuit: QuantumCircuit, qubit: int, rng: random.Random) -> None:
    theta = math.acos(1 - 2 * rng.random())
    phi = 2 * math.pi * rng.random()
    lam = 2 * math.pi * rng.random()
    circuit.u3(theta, phi, lam, qubit)


def _random_su4(circuit: QuantumCircuit, qubit_a: int, qubit_b: int, rng: random.Random) -> None:
    """Append a generic two-qubit interaction on the pair (3 CNOTs, 8 u3 gates)."""
    for qubit in (qubit_a, qubit_b):
        _random_u3(circuit, qubit, rng)
    circuit.cx(qubit_a, qubit_b)
    for qubit in (qubit_a, qubit_b):
        _random_u3(circuit, qubit, rng)
    circuit.cx(qubit_b, qubit_a)
    _random_u3(circuit, qubit_a, rng)
    circuit.cx(qubit_a, qubit_b)
    for qubit in (qubit_a, qubit_b):
        _random_u3(circuit, qubit, rng)


def quantum_volume_circuit(
    num_qubits: int, depth: Optional[int] = None, seed: int = 0
) -> QuantumCircuit:
    """Generate a quantum-volume model circuit.

    Parameters
    ----------
    num_qubits:
        Width of the circuit (the paper uses up to 4).
    depth:
        Number of layers; defaults to ``num_qubits`` (square circuits).
    seed:
        Seed of the pseudo-random generator (deterministic output).
    """
    if num_qubits < 2:
        raise ValueError("quantum volume circuits need at least 2 qubits")
    depth = num_qubits if depth is None else depth
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"qv_{num_qubits}x{depth}_s{seed}")
    for _ in range(depth):
        permutation = list(range(num_qubits))
        rng.shuffle(permutation)
        for index in range(0, num_qubits - 1, 2):
            _random_su4(circuit, permutation[index], permutation[index + 1], rng)
    return circuit
