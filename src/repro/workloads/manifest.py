"""Workload manifests: declarative JSON batches for the service CLI.

A manifest names a list of workload entries, each resolved to a concrete
circuit by :data:`WORKLOAD_BUILDERS`.  Example::

    {
      "technique": "sat_p",
      "workloads": [
        {"kind": "ghz", "num_qubits": 3},
        {"kind": "qv", "num_qubits": 3, "depth": 3, "seed": 0},
        {"kind": "random", "num_qubits": 3, "depth": 20, "seed": 1},
        {"kind": "qaoa_ring", "num_qubits": 4, "layers": 2, "seed": 0},
        {"kind": "vqe_hwe", "num_qubits": 4, "layers": 2, "seed": 0},
        {"kind": "qft", "num_qubits": 3},
        {"kind": "bv", "secret": "101"},
        {"kind": "suite", "name": "grover_n3"},
        {"kind": "qasm", "path": "circuits/benchmark.qasm"}
      ]
    }

A top-level plain list is also accepted (no defaults block).  Every
builder is deterministic given its parameters, so two runs over the same
manifest produce identical circuits — which is what makes warm persistent
-store runs byte-for-byte reproducible.  (``qasm`` entries are as
deterministic as the file they point at; inline ``source`` entries are
fully self-contained.)

Entries are validated strictly: a key no builder reads (say the typo
``num_qubit``) is rejected instead of being silently ignored.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.workloads.named import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    hardware_efficient_ansatz,
    qaoa_ring_circuit,
    qft_circuit,
)
from repro.workloads.quantum_volume import quantum_volume_circuit
from repro.workloads.random_circuits import random_template_circuit


def _build_qv(entry: Mapping) -> QuantumCircuit:
    num_qubits = int(entry["num_qubits"])
    return quantum_volume_circuit(
        num_qubits,
        int(entry.get("depth", num_qubits)),
        seed=int(entry.get("seed", 0)),
    )


def _build_random(entry: Mapping) -> QuantumCircuit:
    return random_template_circuit(
        int(entry["num_qubits"]),
        int(entry.get("depth", 20)),
        seed=int(entry.get("seed", 0)),
    )


def _build_ghz(entry: Mapping) -> QuantumCircuit:
    return ghz_circuit(int(entry["num_qubits"]))


def _build_qft(entry: Mapping) -> QuantumCircuit:
    return qft_circuit(
        int(entry["num_qubits"]), include_swaps=bool(entry.get("include_swaps", True))
    )


def _build_bv(entry: Mapping) -> QuantumCircuit:
    return bernstein_vazirani_circuit(str(entry["secret"]))


def _build_qaoa(entry: Mapping) -> QuantumCircuit:
    return qaoa_ring_circuit(
        int(entry["num_qubits"]),
        layers=int(entry.get("layers", 1)),
        seed=int(entry.get("seed", 0)),
    )


def _build_vqe(entry: Mapping) -> QuantumCircuit:
    return hardware_efficient_ansatz(
        int(entry["num_qubits"]),
        layers=int(entry.get("layers", 1)),
        seed=int(entry.get("seed", 0)),
    )


def _build_qasm(entry: Mapping) -> QuantumCircuit:
    from repro.interop import load_qasm_file, qasm_to_circuit

    has_path, has_source = "path" in entry, "source" in entry
    if has_path == has_source:
        raise ValueError(
            "a 'qasm' manifest entry needs exactly one of 'path' or 'source'"
        )
    if has_path:
        return load_qasm_file(str(entry["path"]))
    return qasm_to_circuit(str(entry["source"]))


def _build_suite(entry: Mapping) -> QuantumCircuit:
    from repro.interop import suite_circuit

    return suite_circuit(str(entry["name"]))


#: Manifest ``kind`` -> circuit builder.  New workload families register
#: here and in :data:`WORKLOAD_ENTRY_KEYS` (and, when they are seedable
#: spec workloads, in ``repro.api.compile._circuit_from_spec``).
WORKLOAD_BUILDERS: Dict[str, Callable[[Mapping], QuantumCircuit]] = {
    "qv": _build_qv,
    "random": _build_random,
    "ghz": _build_ghz,
    "qft": _build_qft,
    "bv": _build_bv,
    "qaoa_ring": _build_qaoa,
    "qaoa": _build_qaoa,
    "vqe_hwe": _build_vqe,
    "vqe": _build_vqe,
    "qasm": _build_qasm,
    "suite": _build_suite,
}

#: Manifest ``kind`` -> (required keys, optional keys).  ``kind`` and
#: ``name`` are always accepted; anything else must appear here — typos
#: like ``num_qubit`` fail loudly instead of passing as ignored kwargs.
WORKLOAD_ENTRY_KEYS: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {
    "qv": (frozenset({"num_qubits"}), frozenset({"depth", "seed"})),
    "random": (frozenset({"num_qubits"}), frozenset({"depth", "seed"})),
    "ghz": (frozenset({"num_qubits"}), frozenset()),
    "qft": (frozenset({"num_qubits"}), frozenset({"include_swaps"})),
    "bv": (frozenset({"secret"}), frozenset()),
    "qaoa_ring": (frozenset({"num_qubits"}), frozenset({"layers", "seed"})),
    "qaoa": (frozenset({"num_qubits"}), frozenset({"layers", "seed"})),
    "vqe_hwe": (frozenset({"num_qubits"}), frozenset({"layers", "seed"})),
    "vqe": (frozenset({"num_qubits"}), frozenset({"layers", "seed"})),
    # 'qasm' needs exactly one of path/source; the builder enforces that.
    "qasm": (frozenset(), frozenset({"path", "source"})),
    # For 'suite', 'name' doubles as the benchmark selector.
    "suite": (frozenset({"name"}), frozenset()),
}

#: Keys every entry may carry regardless of kind.
_UNIVERSAL_KEYS = frozenset({"kind", "name"})


def _validate_entry_keys(kind: str, entry: Mapping) -> None:
    """Reject keys the builder for ``kind`` does not read.

    Kinds registered at runtime straight into :data:`WORKLOAD_BUILDERS`
    without a key spec stay permissive (no validation), preserving the
    plain builder-dict extension point.
    """
    spec = WORKLOAD_ENTRY_KEYS.get(kind)
    if spec is None:
        return
    required, optional = spec
    allowed = required | optional | _UNIVERSAL_KEYS
    unknown = set(entry) - allowed
    if unknown:
        raise ValueError(
            f"manifest entry of kind {kind!r} has unknown key(s) "
            f"{sorted(unknown)}; allowed keys: {sorted(allowed)}"
        )
    missing = required - set(entry)
    if missing:
        raise ValueError(
            f"manifest entry of kind {kind!r} is missing required key(s) "
            f"{sorted(missing)}"
        )


def build_workload_entry(entry: Mapping) -> Tuple[str, QuantumCircuit]:
    """Resolve one manifest entry to a ``(name, circuit)`` pair."""
    try:
        kind = entry["kind"]
    except (KeyError, TypeError):
        raise ValueError(f"manifest entry {entry!r} has no 'kind'") from None
    try:
        builder = WORKLOAD_BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {kind!r}; available: {sorted(set(WORKLOAD_BUILDERS))}"
        ) from None
    _validate_entry_keys(kind, entry)
    circuit = builder(entry)
    return str(entry.get("name", circuit.name)), circuit


def parse_manifest(
    payload,
    base_dir: Optional[str] = None,
    allow_qasm_paths: bool = True,
) -> Tuple[List[Tuple[str, QuantumCircuit]], Dict]:
    """Parse a decoded manifest into ``(name, circuit)`` pairs + defaults.

    ``payload`` is either a list of entries or a mapping with a
    ``workloads`` list; any other top-level keys (``technique``,
    ``policy``, ...) come back verbatim in the defaults dict so the CLI
    can honour per-manifest settings.  When ``base_dir`` is given,
    relative ``qasm`` paths resolve against it (:func:`load_manifest`
    passes the manifest file's directory, so sibling ``.qasm`` files
    work regardless of the process working directory).

    With ``allow_qasm_paths=False``, ``qasm`` entries referencing a
    ``path`` are rejected.  The HTTP gateway passes manifests received
    over the wire through this mode: a remote client must not be able to
    make the server read arbitrary server-side files — inline ``source``
    entries carry the same circuits self-contained.
    """
    if isinstance(payload, Mapping):
        entries = payload.get("workloads")
        if entries is None:
            raise ValueError("manifest object needs a 'workloads' list")
        defaults = {k: v for k, v in payload.items() if k != "workloads"}
    else:
        entries, defaults = payload, {}
    named: List[Tuple[str, QuantumCircuit]] = []
    seen: Dict[str, int] = {}
    for entry in entries:
        if (
            not allow_qasm_paths
            and isinstance(entry, Mapping)
            and entry.get("kind") == "qasm"
            and "path" in entry
        ):
            raise ValueError(
                "'qasm' manifest entries with a 'path' are not allowed "
                "here (manifest received over the wire); inline the "
                "circuit with 'source' instead"
            )
        if (
            base_dir is not None
            and isinstance(entry, Mapping)
            and entry.get("kind") == "qasm"
            and isinstance(entry.get("path"), str)
            and not os.path.isabs(entry["path"])
        ):
            entry = {**entry, "path": os.path.join(base_dir, entry["path"])}
        name, circuit = build_workload_entry(entry)
        if name in seen:  # Disambiguate like compile_many: nothing is dropped.
            seen[name] += 1
            name = f"{name}#{seen[name]}"
        else:
            seen[name] = 0
        named.append((name, circuit))
    return named, defaults


def load_manifest(path: str) -> Tuple[List[Tuple[str, QuantumCircuit]], Dict]:
    """Load a JSON manifest file; see :func:`parse_manifest`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return parse_manifest(payload, base_dir=os.path.dirname(os.path.abspath(path)))
