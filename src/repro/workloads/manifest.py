"""Workload manifests: declarative JSON batches for the service CLI.

A manifest names a list of workload entries, each resolved to a concrete
circuit by :data:`WORKLOAD_BUILDERS`.  Example::

    {
      "technique": "sat_p",
      "workloads": [
        {"kind": "ghz", "num_qubits": 3},
        {"kind": "qv", "num_qubits": 3, "depth": 3, "seed": 0},
        {"kind": "random", "num_qubits": 3, "depth": 20, "seed": 1},
        {"kind": "qaoa_ring", "num_qubits": 4, "layers": 2, "seed": 0},
        {"kind": "vqe_hwe", "num_qubits": 4, "layers": 2, "seed": 0},
        {"kind": "qft", "num_qubits": 3},
        {"kind": "bv", "secret": "101"}
      ]
    }

A top-level plain list is also accepted (no defaults block).  Every
builder is deterministic given its parameters, so two runs over the same
manifest produce identical circuits — which is what makes warm persistent
-store runs byte-for-byte reproducible.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Mapping, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.workloads.named import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    hardware_efficient_ansatz,
    qaoa_ring_circuit,
    qft_circuit,
)
from repro.workloads.quantum_volume import quantum_volume_circuit
from repro.workloads.random_circuits import random_template_circuit


def _build_qv(entry: Mapping) -> QuantumCircuit:
    num_qubits = int(entry["num_qubits"])
    return quantum_volume_circuit(
        num_qubits,
        int(entry.get("depth", num_qubits)),
        seed=int(entry.get("seed", 0)),
    )


def _build_random(entry: Mapping) -> QuantumCircuit:
    return random_template_circuit(
        int(entry["num_qubits"]),
        int(entry.get("depth", 20)),
        seed=int(entry.get("seed", 0)),
    )


def _build_ghz(entry: Mapping) -> QuantumCircuit:
    return ghz_circuit(int(entry["num_qubits"]))


def _build_qft(entry: Mapping) -> QuantumCircuit:
    return qft_circuit(
        int(entry["num_qubits"]), include_swaps=bool(entry.get("include_swaps", True))
    )


def _build_bv(entry: Mapping) -> QuantumCircuit:
    return bernstein_vazirani_circuit(str(entry["secret"]))


def _build_qaoa(entry: Mapping) -> QuantumCircuit:
    return qaoa_ring_circuit(
        int(entry["num_qubits"]),
        layers=int(entry.get("layers", 1)),
        seed=int(entry.get("seed", 0)),
    )


def _build_vqe(entry: Mapping) -> QuantumCircuit:
    return hardware_efficient_ansatz(
        int(entry["num_qubits"]),
        layers=int(entry.get("layers", 1)),
        seed=int(entry.get("seed", 0)),
    )


#: Manifest ``kind`` -> circuit builder.  New workload families register
#: here (and, when they are seedable spec workloads, in
#: ``repro.api.compile._circuit_from_spec``).
WORKLOAD_BUILDERS: Dict[str, Callable[[Mapping], QuantumCircuit]] = {
    "qv": _build_qv,
    "random": _build_random,
    "ghz": _build_ghz,
    "qft": _build_qft,
    "bv": _build_bv,
    "qaoa_ring": _build_qaoa,
    "qaoa": _build_qaoa,
    "vqe_hwe": _build_vqe,
    "vqe": _build_vqe,
}


def build_workload_entry(entry: Mapping) -> Tuple[str, QuantumCircuit]:
    """Resolve one manifest entry to a ``(name, circuit)`` pair."""
    try:
        kind = entry["kind"]
    except (KeyError, TypeError):
        raise ValueError(f"manifest entry {entry!r} has no 'kind'") from None
    try:
        builder = WORKLOAD_BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {kind!r}; available: {sorted(set(WORKLOAD_BUILDERS))}"
        ) from None
    circuit = builder(entry)
    return str(entry.get("name", circuit.name)), circuit


def parse_manifest(payload) -> Tuple[List[Tuple[str, QuantumCircuit]], Dict]:
    """Parse a decoded manifest into ``(name, circuit)`` pairs + defaults.

    ``payload`` is either a list of entries or a mapping with a
    ``workloads`` list; any other top-level keys (``technique``,
    ``policy``, ...) come back verbatim in the defaults dict so the CLI
    can honour per-manifest settings.
    """
    if isinstance(payload, Mapping):
        entries = payload.get("workloads")
        if entries is None:
            raise ValueError("manifest object needs a 'workloads' list")
        defaults = {k: v for k, v in payload.items() if k != "workloads"}
    else:
        entries, defaults = payload, {}
    named: List[Tuple[str, QuantumCircuit]] = []
    seen: Dict[str, int] = {}
    for entry in entries:
        name, circuit = build_workload_entry(entry)
        if name in seen:  # Disambiguate like compile_many: nothing is dropped.
            seen[name] += 1
            name = f"{name}#{seen[name]}"
        else:
            seen[name] = 0
        named.append((name, circuit))
    return named, defaults


def load_manifest(path: str) -> Tuple[List[Tuple[str, QuantumCircuit]], Dict]:
    """Load a JSON manifest file; see :func:`parse_manifest`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_manifest(json.load(handle))
