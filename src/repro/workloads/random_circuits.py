"""Random circuits built from the template gate set of Fig. 3.

These circuits mix CNOT, CZ, SWAP and single-qubit rotations on randomly
chosen (connected) qubit pairs, mirroring the "random circuits containing
gates from the templates" workload of the evaluation section.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one evaluation workload instance."""

    kind: str
    num_qubits: int
    depth: int
    seed: int

    @property
    def name(self) -> str:
        """A short identifier used in result tables."""
        return f"{self.kind}-q{self.num_qubits}-d{self.depth}-s{self.seed}"


def random_template_circuit(
    num_qubits: int,
    depth: int,
    seed: int = 0,
    two_qubit_probability: float = 0.45,
    coupling_map: Optional[Sequence[Tuple[int, int]]] = None,
) -> QuantumCircuit:
    """Generate a random circuit from the Fig. 3 template gate set.

    Parameters
    ----------
    num_qubits:
        Circuit width.
    depth:
        Number of gate layers to emit (approximately; single-qubit layers
        count as one).
    seed:
        Pseudo-random seed.
    two_qubit_probability:
        Probability of emitting a two-qubit gate per slot.
    coupling_map:
        Restrict two-qubit gates to these pairs (defaults to a chain, which
        matches the spin-qubit topology so no routing is necessary).
    """
    if num_qubits < 2:
        raise ValueError("random template circuits need at least 2 qubits")
    rng = random.Random(seed)
    pairs = (
        [(i, i + 1) for i in range(num_qubits - 1)]
        if coupling_map is None
        else list(coupling_map)
    )
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}_s{seed}")
    for _ in range(depth):
        if rng.random() < two_qubit_probability:
            qubit_a, qubit_b = rng.choice(pairs)
            if rng.random() < 0.5:
                qubit_a, qubit_b = qubit_b, qubit_a
            kind = rng.choice(["cx", "cx", "cz", "swap"])
            getattr(circuit, kind)(qubit_a, qubit_b)
        else:
            qubit = rng.randrange(num_qubits)
            kind = rng.choice(["h", "rx", "ry", "rz", "t", "x"])
            if kind in ("rx", "ry", "rz"):
                getattr(circuit, kind)(2 * math.pi * rng.random(), qubit)
            else:
                getattr(circuit, kind)(qubit)
    return circuit


def evaluation_suite(max_qubits: int = 4, seeds: Sequence[int] = (0, 1)) -> List[WorkloadSpec]:
    """The workload grid used to regenerate Figures 5-7.

    Quantum-volume circuits of width 2..max_qubits and random template
    circuits with depths up to 160 (scaled down for the smallest sizes so
    the suite stays laptop-runnable), mirroring "up to 4 qubits and a depth
    of up to 160".
    """
    specs: List[WorkloadSpec] = []
    for seed in seeds:
        for num_qubits in range(2, max_qubits + 1):
            specs.append(WorkloadSpec("qv", num_qubits, num_qubits, seed))
        for num_qubits, depth in ((2, 20), (3, 40), (4, 80), (4, 160)):
            if num_qubits <= max_qubits:
                specs.append(WorkloadSpec("random", num_qubits, depth, seed))
    return specs
