"""Multi-process sharding: N gateway workers behind a hash router.

:class:`ShardRouter` spawns ``shards`` worker *processes*, each running a
full :class:`repro.server.ReproServer` (its own ``CompilationService``,
worker threads and in-process L1 cache) on a loopback port, and fronts
them with one routing HTTP server:

* **Submissions** (``POST /v1/jobs``, ``/v1/batch``, suite compiles,
  validation) are routed by the :func:`repro.api.payload_fingerprint`
  of the request body — byte-identical submissions always land on the
  same worker, so repeats hit that worker's L1 cache and concurrent
  duplicates coalesce onto one in-flight compilation.
* **Job lookups** route by the job id itself: every shard mints ids
  under its own prefix (``s0-j1``, ``s1-j1``, ...), so ``GET
  /v1/jobs/s1-j7`` needs no routing table.
* **``/healthz`` and ``/metrics``** fan out to every shard and come back
  aggregated (per-shard documents plus summed counters).

All shards share one :class:`repro.service.PersistentResultStore`
directory as their L2 tier.  The store's writes are atomic
(``os.replace``) and its entries content-addressed, so cross-process
sharing needs no extra coordination: the per-shard locks serialize
writers within a process and concurrent processes at worst redundantly
write the same bytes.

The router also **supervises** its shards: a health-monitor thread
detects a dead worker process, respawns it under a fresh job-id
generation (``s1g1-``, ``s1g2-``, ...), and in the meantime fails
submissions over to the surviving shards.  Lookups of a dead shard's
jobs answer 503 with a ``Retry-After`` hint while the replacement boots
(the jobs themselves died with the process; after the respawn the shard
answers 404 for them, which is the honest terminal state).

Shutdown is **draining**: the router stops accepting, each shard is
asked to quiesce over ``POST /internal/drain`` (queued and running jobs
finish), and only then are the worker processes stopped.
"""

from __future__ import annotations

import json
import multiprocessing
import re
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

from repro.api.fingerprints import payload_fingerprint
from repro.cluster.auth import AuthError, Authenticator, credential_from_headers
from repro.cluster.backends import _parse_spec, write_peers_file
from repro.telemetry.prometheus import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    merge_prometheus,
)
from repro.trace.tracer import TRACE_HEADER

#: How long the router waits for one forwarded request; must exceed the
#: gateway's 60 s result long-poll cap.
_FORWARD_TIMEOUT_SECONDS = 120.0

#: End-to-end headers relayed to the shard: trace propagation, the
#: compile-deadline hint and the API credential (shards re-check key
#: *validity*; the router already charged the rate limits).  Everything
#: else stops at the router.
_FORWARDED_HEADERS = (TRACE_HEADER, "X-Repro-Deadline", "Authorization",
                      "X-API-Key")

#: Event-stream resources are relayed incrementally, not buffered.
_EVENTS_PATH = re.compile(r"^/v1/jobs/(?P<job_id>[^/]+)/events$")

#: Per-backend store statistics summed across shards in /metrics.
_STORE_SUMMED = ("total_bytes", "entries", "hits", "misses", "puts",
                 "evictions", "corrupted", "peer_hits", "peer_misses",
                 "peer_errors")

#: Submission resources routed by body fingerprint (prefix match for the
#: suite-compile resource).
_BODY_ROUTED = ("/v1/jobs", "/v1/batch", "/v1/circuits/validate", "/v1/suite/")

#: Service counters summed across shards in the aggregated /metrics.
_SUMMED_COUNTERS = ("submitted", "deduplicated", "completed", "failed",
                    "cancelled", "queue_depth", "busy_workers", "workers",
                    "worker_crashes", "degraded")

#: Job ids are ``s<shard>[g<generation>]-...``; generation 0 keeps the
#: plain ``s<shard>-`` form so pre-respawn ids stay valid.
_JOB_ID_SHARD = re.compile(r"^s(\d+)(?:g\d+)?-.")

#: How often the health monitor polls shard process liveness.
_HEALTH_INTERVAL_SECONDS = 0.5

#: ``Retry-After`` hint while a dead shard's replacement boots.
_SHARD_RETRY_AFTER_SECONDS = 2.0


def _shard_main(index: int, host: str, ready, config: Dict,
                job_prefix: str) -> None:
    """Worker-process entry point: serve one gateway on a free port."""
    from repro.server.app import build_server

    server = build_server(
        host=host,
        port=0,
        workers=config["workers"],
        store=config["store"],
        durations=config["durations"],
        max_pending=config["max_pending"],
        job_prefix=job_prefix,
        # The router is the charging edge; shards only re-check key
        # validity so one request never pays its rate limit twice.
        auth=config.get("auth"),
        enforce_limits=False,
    )
    ready.put((index, server.port))
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


class ShardRouter:
    """A fingerprint-hash HTTP router over N worker server processes."""

    def __init__(
        self,
        shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store: Optional[str] = None,
        durations: str = "D0",
        max_pending: int = 256,
        auth=None,
    ) -> None:
        if shards < 1:
            raise ValueError("the router needs at least one shard")
        if store is not None and not isinstance(store, str):
            raise TypeError(
                "the sharded store must be a directory path or a "
                "'dir:'/'replicated:' spec string (each worker process "
                "opens its own store backend over it)"
            )
        self.shards = shards
        self.host = host
        self.store = store
        # A replicated store spec makes each shard keep a *private*
        # local tier under <root>/s<k> and peer-fetch misses over HTTP;
        # the router publishes the peer map once every port is known.
        self._store_root: Optional[str] = None
        if store is not None:
            scheme, root, _ = _parse_spec(store)
            if scheme == "replicated":
                self._store_root = root
        # The router is the charging edge of the key set; the shards it
        # spawns get the same keys in validity-only mode.
        self._auth = Authenticator.from_spec(auth, enforce_limits=True)
        self._config = {
            "workers": workers,
            "store": store,
            "durations": durations,
            "max_pending": max_pending,
            "auth": self._auth.key_config() if self._auth.enabled else None,
        }
        self._requested_port = port
        self._processes: Dict[int, multiprocessing.Process] = {}
        self._shard_ports: Dict[int, int] = {}
        self._generations: Dict[int, int] = {}
        self._respawns: Dict[int, int] = {}
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._context = multiprocessing.get_context()
        self._ready = None  # The shard-port announcement queue.
        self._monitor_thread: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._respawn_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------
    def _spawn_shard(self, index: int) -> multiprocessing.Process:
        """Start the worker process for one shard (current generation)."""
        generation = self._generations.get(index, 0)
        prefix = f"s{index}-" if generation == 0 else f"s{index}g{generation}-"
        process = self._context.Process(
            target=_shard_main,
            args=(index, self.host, self._ready, self._config, prefix),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        self._processes[index] = process
        return process

    def start(self, boot_timeout: float = 60.0) -> "ShardRouter":
        """Spawn the shard processes and start routing."""
        if self._started:
            raise RuntimeError("ShardRouter is already started")
        self._ready = self._context.Queue()
        for index in range(self.shards):
            self._spawn_shard(index)
        deadline = time.monotonic() + boot_timeout
        while len(self._shard_ports) < self.shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.shutdown(drain=False)
                raise TimeoutError(
                    f"only {len(self._shard_ports)} of {self.shards} shards "
                    f"came up within {boot_timeout}s"
                )
            try:
                index, port = self._ready.get(timeout=min(remaining, 1.0))
            except Exception:  # queue.Empty (multiprocessing re-exports it)
                continue
            self._shard_ports[index] = port
        self._publish_peers()

        router = self
        handler = type("_BoundRouterHandler", (_RouterHandler,),
                       {"router": router})
        self._server = ThreadingHTTPServer((self.host, self._requested_port),
                                           handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-shard-router", daemon=True)
        self._thread.start()
        self._started = True
        self._monitor_stop.clear()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="repro-shard-monitor", daemon=True)
        self._monitor_thread.start()
        return self

    # -- supervision -----------------------------------------------------
    def _monitor_loop(self) -> None:
        """Watch shard liveness; respawn whatever died."""
        while not self._monitor_stop.wait(_HEALTH_INTERVAL_SECONDS):
            for index, process in list(self._processes.items()):
                if not process.is_alive():
                    self._respawn_shard(index)

    def _respawn_shard(self, index: int, boot_timeout: float = 60.0) -> bool:
        """Replace a dead shard process; ``True`` once the new one serves.

        The replacement mints job ids under a bumped generation prefix
        (``s<index>g<n>-``), so ids of the dead generation can never
        collide with new ones.
        """
        with self._respawn_lock:
            process = self._processes.get(index)
            if (not self._started or process is None or process.is_alive()):
                return False
            process.join(timeout=1.0)
            self._shard_ports.pop(index, None)
            self._generations[index] = self._generations.get(index, 0) + 1
            self._respawns[index] = self._respawns.get(index, 0) + 1
            self._spawn_shard(index)
            deadline = time.monotonic() + boot_timeout
            while index not in self._shard_ports:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                try:
                    announced, port = self._ready.get(
                        timeout=min(remaining, 1.0))
                except Exception:  # queue.Empty
                    continue
                self._shard_ports[announced] = port
            self._publish_peers()
            return True

    def _publish_peers(self) -> None:
        """Refresh the replicated store's peer map (node -> base URL).

        Shard ports are OS-assigned, so the peers file can only be
        written once they are known — and must be rewritten whenever a
        respawn moves one.  Backends re-read it on mtime change.
        """
        if self._store_root is None:
            return
        write_peers_file(self._store_root, {
            f"s{index}": self.shard_url(index)
            for index in sorted(self._shard_ports)
        })

    def respawns(self) -> Dict[int, int]:
        """Per-shard respawn counts so far (a snapshot)."""
        return dict(self._respawns)

    def live_shards(self) -> List[int]:
        """Indices of shards whose process is alive and port known."""
        return [index for index in sorted(self._shard_ports)
                if (process := self._processes.get(index)) is not None
                and process.is_alive()]

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("ShardRouter is not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def shard_url(self, index: int) -> str:
        return f"http://{self.host}:{self._shard_ports[index]}"

    def shutdown(self, drain: bool = True, timeout: float = 120.0) -> None:
        """Stop routing, drain every shard, then stop the processes."""
        # The monitor must stop first, or it would dutifully respawn the
        # very shards this is terminating.
        self._started = False
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=10)
            self._monitor_thread = None
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if drain:
            for index in list(self._shard_ports):
                try:
                    self._forward_to_shard(
                        index, "POST", "/internal/drain",
                        json.dumps({"timeout": timeout}).encode(),
                        timeout=timeout + 10,
                    )
                except OSError:
                    pass  # Shard already gone; terminate below.
        for process in self._processes.values():
            process.terminate()
        for process in self._processes.values():
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5)
        self._processes = {}
        self._shard_ports = {}

    def __enter__(self) -> "ShardRouter":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=True)

    # -- routing ---------------------------------------------------------
    def shard_for_body(self, body: bytes, path: str = "") -> int:
        """Stable shard index for a submission (body fingerprint hash).

        The resource path salts the digest so e.g. two suite-compile
        requests with empty bodies but different benchmark names spread
        over different shards.
        """
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = body.hex()
        digest = payload_fingerprint([path, payload])
        return int(digest[:16], 16) % self.shards

    def shard_for_job(self, job_id: str) -> Optional[int]:
        """Shard index encoded in a job id (``s<k>[g<gen>]-...``), or ``None``."""
        match = _JOB_ID_SHARD.match(job_id)
        if match is None:
            return None
        index = int(match.group(1))
        # A valid-but-currently-dead shard still resolves: the routing
        # layer answers 503 + Retry-After for it while the replacement
        # process boots, not 404.
        return index if index < self.shards else None

    def _forward_to_shard(self, index: int, method: str, path: str,
                          body: Optional[bytes] = None,
                          timeout: float = _FORWARD_TIMEOUT_SECONDS,
                          headers: Optional[Dict[str, str]] = None,
                          ) -> Tuple[int, bytes]:
        url = self.shard_url(index) + path
        request_headers = dict(headers or {})
        if body:
            request_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=body, method=method, headers=request_headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    @staticmethod
    def _relayed_headers(headers) -> Dict[str, str]:
        """The end-to-end headers a client request carries to its shard."""
        relayed: Dict[str, str] = {}
        if headers is not None:
            for name in _FORWARDED_HEADERS:
                value = headers.get(name)
                if value is not None:
                    relayed[name] = value
        return relayed

    @staticmethod
    def _shard_down_answer(detail: str) -> Tuple[int, bytes]:
        """503 + retry hint while a shard's replacement process boots."""
        return 503, json.dumps({
            "error": detail,
            "retry": True,
            "retry_after": _SHARD_RETRY_AFTER_SECONDS,
        }).encode()

    def authorize(self, headers) -> Optional[Tuple[int, bytes]]:
        """Edge auth decision: ``None`` admits, else the rejection answer.

        The router charges each request's rate limit and quota exactly
        once here; the shard it forwards to re-checks only validity.
        """
        if not self._auth.enabled:
            return None
        credential = (credential_from_headers(headers)
                      if headers is not None else None)
        try:
            self._auth.authenticate(credential)
        except AuthError as error:
            payload: Dict[str, object] = {"error": str(error),
                                          "key": error.key_name}
            if error.retry_after is not None:
                payload["retry_after"] = error.retry_after
            if error.status == 429:
                payload["retry"] = True
            return error.status, json.dumps(payload).encode()
        return None

    def route(self, method: str, path: str, query: str, body: bytes,
              headers=None) -> Tuple[int, bytes, str]:
        """Route one request; returns ``(status, body bytes, content type)``.

        ``headers`` (a mapping, e.g. the handler's message object) feeds
        the end-to-end relay: trace propagation, deadline and credential
        headers travel to the shard, everything else stops here.
        """
        if path.startswith("/v1/"):
            rejected = self.authorize(headers)
            if rejected is not None:
                return rejected[0], rejected[1], "application/json"
        if path == "/metrics" and "format=prometheus" in (query or ""):
            status, answer = self._aggregate_prometheus()
            return status, answer, PROMETHEUS_CONTENT_TYPE
        status, answer = self._route_json(method, path, query, body,
                                          self._relayed_headers(headers))
        return status, answer, "application/json"

    def _route_json(self, method: str, path: str, query: str, body: bytes,
                    relayed: Dict[str, str]) -> Tuple[int, bytes]:
        target = path if not query else f"{path}?{query}"
        if path in ("/healthz", "/metrics"):
            return self._aggregate(path)
        if path.startswith("/internal/"):
            # The quiesce hook is the router's own business, never remote.
            return 404, json.dumps({"error": "no such resource"}).encode()
        if path.startswith("/v1/jobs/"):
            job_id = path.split("/")[3]
            index = self.shard_for_job(job_id)
            if index is None:
                return 404, json.dumps(
                    {"error": f"unknown job {job_id!r}"}).encode()
            # Job ids are shard-affine: a dead shard's jobs cannot fail
            # over, so answer 503 until the replacement is up (which
            # will then report them 404 — they died with the process).
            if index not in self._shard_ports:
                return self._shard_down_answer(
                    f"shard {index} is restarting; job {job_id!r} state "
                    "is unavailable")
            try:
                return self._forward_to_shard(index, method, target,
                                              body or None, headers=relayed)
            except OSError:
                return self._shard_down_answer(
                    f"shard {index} is unreachable")
        if method == "POST" and any(path == p or (p.endswith("/") and
                                                  path.startswith(p))
                                    for p in _BODY_ROUTED):
            preferred = self.shard_for_body(body, path)
            return self._forward_failover(preferred, method, target, body,
                                          relayed)
        # Shard-agnostic reads (e.g. GET /v1/suite): any shard can answer.
        return self._forward_failover(0, method, target, body, relayed)

    def _forward_failover(self, preferred: int, method: str, target: str,
                          body: bytes,
                          headers: Optional[Dict[str, str]] = None,
                          ) -> Tuple[int, bytes]:
        """Forward to ``preferred``, failing over to any live shard.

        Cache affinity is best-effort: a submission whose home shard is
        mid-respawn lands on a survivor rather than bouncing back to the
        client (it only costs a possible duplicate compilation).
        """
        candidates = [preferred] + [index for index in self.live_shards()
                                    if index != preferred]
        for index in candidates:
            if index not in self._shard_ports:
                continue
            try:
                return self._forward_to_shard(index, method, target,
                                              body or None, headers=headers)
            except OSError:
                continue
        return self._shard_down_answer("no shard is currently available")

    def _aggregate_prometheus(self) -> Tuple[int, bytes]:
        """Fan the Prometheus scrape out and concatenate shard documents.

        Every shard self-labels its samples with ``shard="s<k>"``, so the
        merge only needs to deduplicate HELP/TYPE headers per family.
        """
        documents: List[str] = []
        status = 200
        for index in sorted(self._shard_ports):
            try:
                shard_status, raw = self._forward_to_shard(
                    index, "GET", "/metrics?format=prometheus")
            except OSError:
                status = 502
                continue
            if shard_status != 200:
                status = 502
                continue
            documents.append(raw.decode("utf-8", "replace"))
        return status, merge_prometheus(documents).encode("utf-8")

    def _aggregate(self, path: str) -> Tuple[int, bytes]:
        """Fan ``/healthz`` or ``/metrics`` out to every shard and merge."""
        documents: Dict[str, object] = {}
        status = 200
        for index in sorted(self._shard_ports):
            try:
                shard_status, raw = self._forward_to_shard(index, "GET", path)
                document = json.loads(raw.decode("utf-8"))
            except (OSError, ValueError):
                shard_status, document = 502, {"error": "shard unreachable"}
            if shard_status != 200:
                status = 502
            documents[f"s{index}"] = document
        if path == "/healthz":
            live = self.live_shards()
            if len(live) < self.shards:
                status = 502
            merged: Dict[str, object] = {
                "status": "ok" if status == 200 else "degraded",
                "shards": self.shards,
                "live": len(live),
                "respawns": {f"s{k}": n for k, n in sorted(self._respawns.items())},
                "per_shard": documents,
            }
        else:
            totals: Dict[str, float] = {}
            stores: Dict[str, Dict[str, float]] = {}
            for document in documents.values():
                service = document.get("service") if isinstance(document, dict) else None
                if not isinstance(service, dict):
                    continue
                for counter in _SUMMED_COUNTERS:
                    value = service.get(counter)
                    if isinstance(value, (int, float)):
                        totals[counter] = totals.get(counter, 0) + value
                # Per-backend store statistics: shards sharing one
                # local-dir double-report the same bytes, but replicated
                # backends own private tiers, so the per-backend sums
                # (and peer hit/miss counters) are the cluster truth.
                l2 = service.get("l2")
                if isinstance(l2, dict):
                    backend = str(l2.get("backend", "local_dir"))
                    bucket = stores.setdefault(backend, {"shards": 0})
                    bucket["shards"] += 1
                    for field in _STORE_SUMMED:
                        value = l2.get(field)
                        if isinstance(value, (int, float)):
                            bucket[field] = bucket.get(field, 0) + value
            merged = {
                "shards": self.shards,
                "aggregate": totals,
                "stores": stores,
                "per_shard": documents,
            }
        return status, json.dumps(merged).encode()


class _RouterHandler(BaseHTTPRequestHandler):
    """Thin relay: read the request, ask the router, stream the answer."""

    protocol_version = "HTTP/1.1"
    router: ShardRouter

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802
        self._relay("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._relay("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._relay("DELETE")

    def _relay(self, method: str) -> None:
        parsed = urlparse(self.path)
        if method == "GET" and _EVENTS_PATH.match(parsed.path):
            # Event streams must flow through incrementally — buffering
            # the whole response would hold every event until the job
            # ended and defeat the stream.
            self._relay_stream(parsed)
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0:  # Malformed/negative: never block on read(-1).
            answer = json.dumps({"error": "invalid Content-Length header"}).encode()
            self.close_connection = True
            self.send_response(400)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(answer)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(answer)
            return
        body = self.rfile.read(length) if length else b""
        content_type = "application/json"
        try:
            status, answer, content_type = self.router.route(
                method, parsed.path, parsed.query, body, self.headers)
        except OSError as error:
            status = 502
            answer = json.dumps({"error": f"shard unreachable: {error}"}).encode()
        except Exception as error:  # noqa: BLE001 - the router must answer
            status = 500
            answer = json.dumps(
                {"error": f"{type(error).__name__}: {error}"}).encode()
        retry_after: Optional[float] = None
        if status in (429, 503):
            try:
                retry_after = float(json.loads(answer).get("retry_after"))
            except (TypeError, ValueError):
                retry_after = None
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(answer)))
            if retry_after is not None:
                self.send_header("Retry-After",
                                 str(max(1, int(-(-retry_after // 1)))))
            self.end_headers()
            self.wfile.write(answer)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _send_buffered(self, status: int, answer: bytes,
                       retry_after: Optional[float] = None) -> None:
        """One JSON answer on the streaming path (errors before commit)."""
        self.close_connection = True
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(answer)))
            if retry_after is not None:
                self.send_header("Retry-After",
                                 str(max(1, int(-(-retry_after // 1)))))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(answer)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _relay_stream(self, parsed) -> None:
        """Relay ``GET /v1/jobs/{id}/events`` chunk-by-chunk.

        Edge auth applies exactly as on buffered routes; the shard's
        SSE bytes are then copied through as they arrive (``read1``
        returns whatever the socket has) with a flush per chunk.
        """
        router = self.router
        rejected = router.authorize(self.headers)
        if rejected is not None:
            status, answer = rejected
            retry_after = None
            try:
                retry_after = float(json.loads(answer).get("retry_after"))
            except (TypeError, ValueError):
                pass
            self._send_buffered(status, answer, retry_after)
            return
        job_id = _EVENTS_PATH.match(parsed.path).group("job_id")
        index = router.shard_for_job(job_id)
        if index is None:
            self._send_buffered(404, json.dumps(
                {"error": f"unknown job {job_id!r}"}).encode())
            return
        if index not in router._shard_ports:
            status, answer = router._shard_down_answer(
                f"shard {index} is restarting; job {job_id!r} events are "
                "unavailable")
            self._send_buffered(status, answer,
                                _SHARD_RETRY_AFTER_SECONDS)
            return
        target = parsed.path if not parsed.query else \
            f"{parsed.path}?{parsed.query}"
        request = urllib.request.Request(
            router.shard_url(index) + target,
            headers=router._relayed_headers(self.headers))
        try:
            response = urllib.request.urlopen(
                request, timeout=_FORWARD_TIMEOUT_SECONDS)
        except urllib.error.HTTPError as error:
            self._send_buffered(error.code, error.read())
            return
        except OSError:
            status, answer = router._shard_down_answer(
                f"shard {index} is unreachable")
            self._send_buffered(status, answer, _SHARD_RETRY_AFTER_SECONDS)
            return
        self.close_connection = True
        try:
            with response:
                self.send_response(response.status)
                self.send_header(
                    "Content-Type",
                    response.headers.get("Content-Type",
                                         "text/event-stream"))
                self.send_header("Cache-Control", "no-store")
                self.send_header("Connection", "close")
                self.end_headers()
                self.wfile.flush()
                while True:
                    chunk = response.read1(8192)
                    if not chunk:
                        break
                    self.wfile.write(chunk)
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # Either side went away; the job keeps running.
