"""Multi-process sharding: N gateway workers behind a hash router.

:class:`ShardRouter` spawns ``shards`` worker *processes*, each running a
full :class:`repro.server.ReproServer` (its own ``CompilationService``,
worker threads and in-process L1 cache) on a loopback port, and fronts
them with one routing HTTP server:

* **Submissions** (``POST /v1/jobs``, ``/v1/batch``, suite compiles,
  validation) are routed by the :func:`repro.api.payload_fingerprint`
  of the request body — byte-identical submissions always land on the
  same worker, so repeats hit that worker's L1 cache and concurrent
  duplicates coalesce onto one in-flight compilation.
* **Job lookups** route by the job id itself: every shard mints ids
  under its own prefix (``s0-j1``, ``s1-j1``, ...), so ``GET
  /v1/jobs/s1-j7`` needs no routing table.
* **``/healthz`` and ``/metrics``** fan out to every shard and come back
  aggregated (per-shard documents plus summed counters).

All shards share one :class:`repro.service.PersistentResultStore`
directory as their L2 tier.  The store's writes are atomic
(``os.replace``) and its entries content-addressed, so cross-process
sharing needs no extra coordination: the per-shard locks serialize
writers within a process and concurrent processes at worst redundantly
write the same bytes.

Shutdown is **draining**: the router stops accepting, each shard is
asked to quiesce over ``POST /internal/drain`` (queued and running jobs
finish), and only then are the worker processes stopped.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

from repro.api.fingerprints import payload_fingerprint

#: How long the router waits for one forwarded request; must exceed the
#: gateway's 60 s result long-poll cap.
_FORWARD_TIMEOUT_SECONDS = 120.0

#: Submission resources routed by body fingerprint (prefix match for the
#: suite-compile resource).
_BODY_ROUTED = ("/v1/jobs", "/v1/batch", "/v1/circuits/validate", "/v1/suite/")

#: Service counters summed across shards in the aggregated /metrics.
_SUMMED_COUNTERS = ("submitted", "deduplicated", "completed", "failed",
                    "cancelled", "queue_depth", "busy_workers", "workers")


def _shard_main(index: int, host: str, ready, config: Dict) -> None:
    """Worker-process entry point: serve one gateway on a free port."""
    from repro.server.app import build_server

    server = build_server(
        host=host,
        port=0,
        workers=config["workers"],
        store=config["store"],
        durations=config["durations"],
        max_pending=config["max_pending"],
        job_prefix=f"s{index}-",
    )
    ready.put((index, server.port))
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


class ShardRouter:
    """A fingerprint-hash HTTP router over N worker server processes."""

    def __init__(
        self,
        shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store: Optional[str] = None,
        durations: str = "D0",
        max_pending: int = 256,
    ) -> None:
        if shards < 1:
            raise ValueError("the router needs at least one shard")
        if store is not None and not isinstance(store, str):
            raise TypeError(
                "the sharded store must be a directory path (each worker "
                "process opens its own PersistentResultStore over it)"
            )
        self.shards = shards
        self.host = host
        self.store = store
        self._config = {
            "workers": workers,
            "store": store,
            "durations": durations,
            "max_pending": max_pending,
        }
        self._requested_port = port
        self._processes: List[multiprocessing.Process] = []
        self._shard_ports: Dict[int, int] = {}
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # -- lifecycle -------------------------------------------------------
    def start(self, boot_timeout: float = 60.0) -> "ShardRouter":
        """Spawn the shard processes and start routing."""
        if self._started:
            raise RuntimeError("ShardRouter is already started")
        context = multiprocessing.get_context()
        ready = context.Queue()
        for index in range(self.shards):
            process = context.Process(
                target=_shard_main,
                args=(index, self.host, ready, self._config),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        deadline = time.monotonic() + boot_timeout
        while len(self._shard_ports) < self.shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.shutdown(drain=False)
                raise TimeoutError(
                    f"only {len(self._shard_ports)} of {self.shards} shards "
                    f"came up within {boot_timeout}s"
                )
            try:
                index, port = ready.get(timeout=min(remaining, 1.0))
            except Exception:  # queue.Empty (multiprocessing re-exports it)
                continue
            self._shard_ports[index] = port

        router = self
        handler = type("_BoundRouterHandler", (_RouterHandler,),
                       {"router": router})
        self._server = ThreadingHTTPServer((self.host, self._requested_port),
                                           handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-shard-router", daemon=True)
        self._thread.start()
        self._started = True
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("ShardRouter is not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def shard_url(self, index: int) -> str:
        return f"http://{self.host}:{self._shard_ports[index]}"

    def shutdown(self, drain: bool = True, timeout: float = 120.0) -> None:
        """Stop routing, drain every shard, then stop the processes."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        if drain:
            for index in list(self._shard_ports):
                try:
                    self._forward_to_shard(
                        index, "POST", "/internal/drain",
                        json.dumps({"timeout": timeout}).encode(),
                        timeout=timeout + 10,
                    )
                except OSError:
                    pass  # Shard already gone; terminate below.
        for process in self._processes:
            process.terminate()
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5)
        self._processes = []
        self._shard_ports = {}
        self._started = False

    def __enter__(self) -> "ShardRouter":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=True)

    # -- routing ---------------------------------------------------------
    def shard_for_body(self, body: bytes, path: str = "") -> int:
        """Stable shard index for a submission (body fingerprint hash).

        The resource path salts the digest so e.g. two suite-compile
        requests with empty bodies but different benchmark names spread
        over different shards.
        """
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = body.hex()
        digest = payload_fingerprint([path, payload])
        return int(digest[:16], 16) % self.shards

    def shard_for_job(self, job_id: str) -> Optional[int]:
        """Shard index encoded in a job id (``s<k>-...``), or ``None``."""
        if not job_id.startswith("s"):
            return None
        prefix, _, rest = job_id.partition("-")
        if not rest:
            return None
        try:
            index = int(prefix[1:])
        except ValueError:
            return None
        return index if index in self._shard_ports else None

    def _forward_to_shard(self, index: int, method: str, path: str,
                          body: Optional[bytes] = None,
                          timeout: float = _FORWARD_TIMEOUT_SECONDS,
                          ) -> Tuple[int, bytes]:
        url = self.shard_url(index) + path
        request = urllib.request.Request(
            url, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def route(self, method: str, path: str, query: str,
              body: bytes) -> Tuple[int, bytes]:
        """Route one request; returns ``(status, JSON body bytes)``."""
        target = path if not query else f"{path}?{query}"
        if path in ("/healthz", "/metrics"):
            return self._aggregate(path)
        if path.startswith("/internal/"):
            # The quiesce hook is the router's own business, never remote.
            return 404, json.dumps({"error": "no such resource"}).encode()
        if path.startswith("/v1/jobs/"):
            job_id = path.split("/")[3]
            index = self.shard_for_job(job_id)
            if index is None:
                return 404, json.dumps(
                    {"error": f"unknown job {job_id!r}"}).encode()
            return self._forward_to_shard(index, method, target, body or None)
        if method == "POST" and any(path == p or (p.endswith("/") and
                                                  path.startswith(p))
                                    for p in _BODY_ROUTED):
            index = self.shard_for_body(body, path)
            return self._forward_to_shard(index, method, target, body or None)
        # Shard-agnostic reads (e.g. GET /v1/suite): any shard can answer.
        return self._forward_to_shard(0, method, target, body or None)

    def _aggregate(self, path: str) -> Tuple[int, bytes]:
        """Fan ``/healthz`` or ``/metrics`` out to every shard and merge."""
        documents: Dict[str, object] = {}
        status = 200
        for index in sorted(self._shard_ports):
            try:
                shard_status, raw = self._forward_to_shard(index, "GET", path)
                document = json.loads(raw.decode("utf-8"))
            except (OSError, ValueError):
                shard_status, document = 502, {"error": "shard unreachable"}
            if shard_status != 200:
                status = 502
            documents[f"s{index}"] = document
        if path == "/healthz":
            merged: Dict[str, object] = {
                "status": "ok" if status == 200 else "degraded",
                "shards": self.shards,
                "per_shard": documents,
            }
        else:
            totals: Dict[str, float] = {}
            for document in documents.values():
                service = document.get("service") if isinstance(document, dict) else None
                if not isinstance(service, dict):
                    continue
                for counter in _SUMMED_COUNTERS:
                    value = service.get(counter)
                    if isinstance(value, (int, float)):
                        totals[counter] = totals.get(counter, 0) + value
            merged = {
                "shards": self.shards,
                "aggregate": totals,
                "per_shard": documents,
            }
        return status, json.dumps(merged).encode()


class _RouterHandler(BaseHTTPRequestHandler):
    """Thin relay: read the request, ask the router, stream the answer."""

    protocol_version = "HTTP/1.1"
    router: ShardRouter

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802
        self._relay("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._relay("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._relay("DELETE")

    def _relay(self, method: str) -> None:
        parsed = urlparse(self.path)
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0:  # Malformed/negative: never block on read(-1).
            answer = json.dumps({"error": "invalid Content-Length header"}).encode()
            self.close_connection = True
            self.send_response(400)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(answer)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(answer)
            return
        body = self.rfile.read(length) if length else b""
        try:
            status, answer = self.router.route(method, parsed.path,
                                               parsed.query, body)
        except OSError as error:
            status = 502
            answer = json.dumps({"error": f"shard unreachable: {error}"}).encode()
        except Exception as error:  # noqa: BLE001 - the router must answer
            status = 500
            answer = json.dumps(
                {"error": f"{type(error).__name__}: {error}"}).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(answer)))
            self.end_headers()
            self.wfile.write(answer)
        except (BrokenPipeError, ConnectionResetError):
            pass
