"""The networked compilation gateway: a JSON REST API over the service.

:func:`build_server` wires a :class:`repro.service.CompilationService`
behind a ``ThreadingHTTPServer`` speaking plain JSON over HTTP — no
dependencies beyond the standard library.  Resources:

==========================================  ===============================
``POST /v1/jobs``                           submit one compilation (circuit
                                            as QASM source or ``to_dict()``
                                            JSON; technique or portfolio)
``GET /v1/jobs/{id}``                       job status + report
``GET /v1/jobs/{id}/result``                adapted circuit (JSON + QASM),
                                            cost, contenders; long-polls
                                            with ``?timeout=SECONDS``
``GET /v1/jobs/{id}/events``                server-sent event stream of the
                                            job's lifecycle (the primary
                                            result path; heartbeats keep
                                            idle streams alive)
``DELETE /v1/jobs/{id}``                    cancel
``POST /v1/batch``                          submit a workload manifest
``GET /v1/suite``                           bundled-benchmark index
``POST /v1/suite/{name}/compile``           compile a bundled benchmark
``POST /v1/circuits/validate``              parse + echo a circuit (wire-
                                            format round-trip check)
``GET /healthz``                            liveness + job counts
``GET /metrics``                            request counters, latency
                                            histograms, service statistics
                                            (``?format=prometheus`` for
                                            text exposition)
``POST /internal/drain``                    quiesce hook (sharding router)
``GET /internal/store/{digest}``            raw persistent-store entry
                                            (peer replication; see
                                            :mod:`repro.cluster.backends`)
==========================================  ===============================

With API keys configured (``build_server(auth=...)`` or the
``REPRO_API_KEYS`` environment variable) every ``/v1/*`` resource
requires ``Authorization: Bearer <key>`` or ``X-API-Key``; rejected
requests get 401/403/429 with ``Retry-After`` per
:mod:`repro.cluster.auth`, and saturated submissions are shed by
priority class per :mod:`repro.cluster.shedding`.

Submissions carry the circuit either as OpenQASM 2.0 *source text*
(never a server-side path — the gateway refuses path lookups from the
wire) or as the exact ``QuantumCircuit.to_dict()`` JSON; results come
back as the full ``AdaptationResult.to_dict()`` payload plus an OpenQASM
export, so :class:`repro.server.ReproClient` reconstructs real
:class:`repro.core.AdaptationResult` objects on the other side.

The server shuts down *draining*: new submissions are rejected with 503
while queued and running jobs finish (``CompilationService.drain``), then
the worker pool winds down.
"""

from __future__ import annotations

import json
import math
import re
import select
import socket
import threading
import time
from collections import OrderedDict
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.api.registry import UnknownTechniqueError
from repro.circuits.circuit import QuantumCircuit
from repro.cluster.auth import AuthError, Authenticator, credential_from_headers
from repro.cluster.backends import resolve_store_backend
from repro.cluster.events import TERMINAL_EVENTS, JobEventBroker
from repro.cluster.shedding import LoadShedder, ShedError, SheddingPolicy
from repro.hardware import spin_qubit_target
from repro.hardware.target import Target
from repro.interop import QasmError, QasmExportError, circuit_to_qasm, qasm_to_circuit
from repro.resilience.faults import active_fault_plan
from repro.service.scheduler import (
    CompilationService,
    JobStatus,
    ServiceSaturatedError,
)
from repro.service.store import PersistentResultStore
from repro.telemetry.instruments import (
    EVENT_STREAMS_ACTIVE,
    HTTP_ERRORS,
    HTTP_LATENCY,
    LONGPOLL_ACTIVE,
    SERVER_JOBS_TRACKED,
    SERVER_UPTIME,
    record_http_request,
)
from repro.telemetry.prometheus import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.telemetry.registry import REGISTRY
from repro.telemetry.resources import start_resource_sampler
from repro.trace.metrics import (
    PASS_METRICS,
    enable_pass_metrics,
    snapshot_histogram_family,
)
from repro.trace.tracer import TRACE_HEADER, current_tracer
from repro.workloads.manifest import parse_manifest

#: Hard cap on how long one ``GET .../result?timeout=`` request blocks
#: server-side; clients long-poll in a loop for longer waits.
MAX_RESULT_WAIT_SECONDS = 60.0

#: Request bodies above this size are rejected with 413.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Server-side bounds on one ``POST /internal/drain`` wait: the endpoint
#: is reachable by anyone who can reach the port, so it must never pin a
#: handler thread indefinitely.
DEFAULT_DRAIN_WAIT_SECONDS = 60.0
MAX_DRAIN_WAIT_SECONDS = 600.0

#: Upper bucket bounds (milliseconds) of the request-latency histograms.
LATENCY_BUCKETS_MS = (1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)

#: ``Retry-After`` hint on 503 responses (queue full / shutting down).
RETRY_AFTER_SECONDS = 1.0

#: Request header carrying the compile deadline in seconds (equivalent
#: to the ``timeout`` field of the submission body, which wins if both
#: are given).
DEADLINE_HEADER = "X-Repro-Deadline"

#: Shape of a valid ``X-Repro-Trace`` value (``"pid:span"``).
_REMOTE_PARENT_RE = re.compile(r"^\d+:\d+$")

#: How often a waiting long-poll re-checks its client connection; an
#: abandoned ``GET .../result`` frees its handler thread within this.
LONGPOLL_POLL_SECONDS = 1.0

#: Hard cap on one ``GET .../events`` stream; clients reconnect (the
#: broker replays history, so nothing is lost across reconnects).
MAX_EVENT_STREAM_SECONDS = 600.0

#: Idle heartbeat interval on event streams.
EVENT_HEARTBEAT_SECONDS = 15.0

SSE_CONTENT_TYPE = "text/event-stream"


def _percentile(values, fraction: float) -> float:
    """Linear-interpolated percentile of a sample list.

    Shared by the perf/chaos benchmark harnesses (which historically
    imported it from here); ``fraction`` is in ``[0, 1]``.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


class _ClientGone(Exception):
    """The request's client disconnected mid-wait; answer nobody."""


class ApiError(Exception):
    """An error with an HTTP status and a JSON body.

    ``retry_after`` (seconds) makes the response carry a ``Retry-After``
    header — the backpressure contract 503s use so clients pace their
    retries instead of hammering a saturated or restarting server.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None, **extra: object) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.payload: Dict[str, object] = {"error": message, **extra}
        if retry_after is not None:
            self.payload["retry_after"] = retry_after


# ---------------------------------------------------------------------------
# Request metrics
# ---------------------------------------------------------------------------
class RequestMetrics:
    """Per-route request counters and latency stats over the telemetry
    registry.

    Historically this class kept its own reservoir of recent latencies
    and reported them as ``p50_ms``/``p95_ms`` — *lifetime*-sounding keys
    computed from a recency-biased sample.  The stats now come from the
    registry's ``repro_http_*`` families: percentile keys carry an
    explicit window label (``_lifetime`` interpolated from the full
    histogram, plus a ``windows`` sub-dict with true 1/5/15-minute
    percentiles from the sliding ring).
    """

    def observe(self, route: str, status: int, seconds: float) -> None:
        record_http_request(route, status, seconds)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-route counters, histogram and latency stats."""
        errors: Dict[Tuple[str, str], int] = {}
        for sample in HTTP_ERRORS.snapshot()["samples"]:
            labels = sample["labels"]
            errors[(labels["route"], labels["kind"])] = int(sample["value"])
        snapshot: Dict[str, Dict[str, object]] = {}
        for route, block in snapshot_histogram_family(HTTP_LATENCY, "route").items():
            block = dict(block)
            # The percentile keys say what they measure: lifetime
            # interpolation vs the windows sub-dict's 1m/5m/15m rings.
            block["p50_ms_lifetime"] = block.pop("p50_ms")
            block["p95_ms_lifetime"] = block.pop("p95_ms")
            block["server_errors"] = errors.get((route, "server"), 0)
            block["client_errors"] = errors.get((route, "client"), 0)
            snapshot[route] = block
        return snapshot


# ---------------------------------------------------------------------------
# Gateway jobs
# ---------------------------------------------------------------------------
class _GatewayJob:
    """One HTTP-visible job: a service handle or a portfolio future."""

    def __init__(self, job_id: str, name: str, kind: str, label: str) -> None:
        self.id = job_id
        self.name = name
        self.kind = kind  # "technique" | "portfolio"
        self.label = label
        self.handle = None  # JobHandle (technique jobs)
        self.future = None  # Future (portfolio jobs)
        self.submitted_at = time.time()

    def status(self) -> str:
        if self.handle is not None:
            return self.handle.status().value
        future = self.future
        if future is None or not future.done():
            if future is not None and future.running():
                return JobStatus.RUNNING.value
            return JobStatus.QUEUED.value
        if future.cancelled():
            return JobStatus.CANCELLED.value
        return (JobStatus.FAILED.value if future.exception() is not None
                else JobStatus.DONE.value)

    def done(self) -> bool:
        waiter = self.handle if self.handle is not None else self.future
        return waiter is not None and waiter.done()

    def wait(self, timeout: Optional[float]):
        waiter = self.handle if self.handle is not None else self.future
        return waiter.result(timeout=timeout)

    def cancel(self) -> bool:
        waiter = self.handle if self.handle is not None else self.future
        return bool(waiter.cancel())


# ---------------------------------------------------------------------------
# The gateway
# ---------------------------------------------------------------------------
class CompilationGateway:
    """HTTP-facing facade over one :class:`CompilationService`.

    Owns the job table (string job ids -> service handles), circuit and
    target decoding, the request metrics, and the draining shutdown.
    ``job_prefix`` namespaces the ids; the sharding router gives every
    worker process a distinct prefix (``s0-``, ``s1-``, ...) so a job id
    alone routes status lookups back to the right shard.
    """

    def __init__(
        self,
        service: CompilationService,
        durations: str = "D0",
        job_prefix: str = "",
        max_jobs: int = 10000,
        auth: Optional[Authenticator] = None,
        shedding: Union[LoadShedder, SheddingPolicy, bool, None] = True,
    ) -> None:
        self.service = service
        self.durations = durations
        self.job_prefix = job_prefix
        self.max_jobs = max_jobs
        self.metrics = RequestMetrics()
        self.auth = auth if auth is not None else Authenticator()
        if isinstance(shedding, LoadShedder):
            self.shedder: Optional[LoadShedder] = shedding
        elif isinstance(shedding, SheddingPolicy):
            self.shedder = LoadShedder(service.saturation, shedding)
        elif shedding:
            self.shedder = LoadShedder(service.saturation)
        else:
            self.shedder = None
        # Job-event streaming: the scheduler's lifecycle hook feeds the
        # broker; SSE handlers subscribe per job.  Technique jobs use the
        # service job id as the channel key, so coalesced gateway jobs
        # share one channel; portfolio jobs are published by the gateway
        # itself under their gateway id.
        self.broker = JobEventBroker()
        service.add_listener(self._on_service_event)
        # /metrics serves per-pipeline-pass histograms alongside the
        # per-route ones; the registry aggregates in-process regardless
        # of whether JSONL tracing is on.  enable_pass_metrics() turns on
        # the whole telemetry registry; the resource sampler keeps
        # RSS/CPU/FD gauges fresh between scrapes.
        enable_pass_metrics()
        start_resource_sampler()
        REGISTRY.register_collector("gateway", self._collect_telemetry)
        self._jobs: "OrderedDict[str, _GatewayJob]" = OrderedDict()
        self._lock = threading.Lock()
        self._next_id = 0
        self._started_at = time.time()
        self._closed = False
        # Portfolio racing blocks one thread per request on the service's
        # futures; its own small pool keeps that off the HTTP threads.
        self._portfolio_pool = ThreadPoolExecutor(
            max_workers=max(4, service.workers),
            thread_name_prefix="repro-gateway-portfolio",
        )

    # -- auth / admission ------------------------------------------------
    def authorize(self, headers, shed: bool = False):
        """Admit one request: authenticate, then (on submissions) shed.

        Returns the matched :class:`repro.cluster.ApiKey` (``None`` when
        auth is not configured).  Raises :class:`ApiError` with the
        mapped status — 401/403/429 from auth, 503 from the shedder —
        and ``retry_after`` so clients pace themselves.
        """
        try:
            key = self.auth.authenticate(credential_from_headers(headers))
        except AuthError as error:
            extra: Dict[str, object] = {"key": error.key_name}
            if error.status == 429:
                extra["retry"] = True
            raise ApiError(error.status, str(error),
                           retry_after=error.retry_after, **extra) from None
        # Shedding is *per-key* admission: anonymous deployments keep the
        # plain ServiceSaturatedError contract (503, Retry-After 1) so a
        # keyless gateway behaves exactly as before the cluster layer.
        if shed and key is not None and self.shedder is not None:
            try:
                self.shedder.admit(key)
            except ShedError as error:
                raise ApiError(503, str(error), retry=True,
                               retry_after=error.retry_after,
                               shed=True) from None
        return key

    # -- job events ------------------------------------------------------
    def _on_service_event(self, event: str, info: Dict[str, object]) -> None:
        """Scheduler lifecycle hook -> broker channel per service job."""
        self.broker.publish(("svc", info["job_id"]), event, info)

    def _event_channel(self, job: _GatewayJob) -> tuple:
        if job.handle is not None:
            return ("svc", job.handle.job_id)
        return ("gw", job.id)

    def _publish_portfolio_event(self, job: _GatewayJob, event: str,
                                 **extra: object) -> None:
        self.broker.publish(("gw", job.id), event, {
            "job_id": job.id, "event": event, "technique": job.label,
            "status": job.status(), **extra,
        })

    def job_events(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        is_alive=None,
    ) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Handle ``GET /v1/jobs/{id}/events``: the job's event stream.

        Yields ``(event, payload)`` pairs — history first, then live —
        ending after the terminal event.  Payload job ids are rewritten
        to the gateway id (the service's internal id stays visible as
        ``service_job_id``).  A job that finished before its channel
        existed (gateway restart, evicted channel) gets a synthesized
        terminal event instead of a hung stream.
        """
        # Unknown-job lookup happens *here*, not inside the generator:
        # the 404 must fire before the handler commits SSE headers.
        job = self._job(job_id)
        return self._job_event_iter(job, timeout, is_alive)

    def _job_event_iter(self, job: _GatewayJob, timeout, is_alive):
        channel = self._event_channel(job)
        if job.done() and not any(
                event in TERMINAL_EVENTS
                for event, _ in self.broker.history(channel)):
            status = job.status()
            terminal = status if status in TERMINAL_EVENTS else "done"
            yield terminal, {**self.job_summary(job), "event": terminal,
                             "synthesized": True}
            return
        cap = MAX_EVENT_STREAM_SECONDS if timeout is None else max(
            0.0, min(float(timeout), MAX_EVENT_STREAM_SECONDS))
        for event, payload in self.broker.stream(
                channel,
                heartbeat_seconds=EVENT_HEARTBEAT_SECONDS,
                poll_seconds=LONGPOLL_POLL_SECONDS,
                is_alive=is_alive,
                timeout=cap):
            out = dict(payload)
            if job.handle is not None and "job_id" in out:
                out["service_job_id"] = out["job_id"]
            out["job_id"] = job.id
            out.setdefault("event", event)
            yield event, out

    # -- peer replication ------------------------------------------------
    def store_entry(self, digest: str) -> str:
        """Handle ``GET /internal/store/{digest}``: the raw entry document.

        Serves only the *local* tier (``read_raw`` never peer-fetches),
        so replication can never recurse through a ring of nodes.
        """
        store = self.service.store
        if store is None:
            from repro.api.cache import persistent_store

            store = persistent_store()
        reader = getattr(store, "read_raw", None)
        if reader is None:
            raise ApiError(404, "this server has no persistent store")
        document = reader(digest)
        if document is None:
            raise ApiError(404, f"no store entry {digest!r}")
        return document

    # -- decoding --------------------------------------------------------
    def parse_circuit(self, payload: Dict[str, object]) -> QuantumCircuit:
        """Decode the submission's circuit: QASM source or ``to_dict`` JSON.

        Server-side file paths are deliberately *not* accepted: a remote
        client must not be able to make the gateway read local files.
        """
        spec = payload.get("circuit", payload.get("qasm"))
        if spec is None:
            raise ApiError(400, "the submission needs a 'circuit' "
                                "(QASM source string or circuit JSON)")
        if isinstance(spec, str):
            try:
                return qasm_to_circuit(spec)
            except QasmError as error:
                raise ApiError(400, f"invalid QASM circuit: {error}") from None
        if isinstance(spec, dict):
            try:
                return QuantumCircuit.from_dict(spec)
            except (KeyError, TypeError, ValueError) as error:
                raise ApiError(
                    400, f"invalid circuit JSON: {type(error).__name__}: {error}"
                ) from None
        raise ApiError(400, "'circuit' must be a QASM source string or a "
                            "QuantumCircuit.to_dict() object")

    def resolve_target(self, spec, circuit: QuantumCircuit) -> Target:
        """Build the spin-qubit target a submission asks for.

        ``None`` sizes the default target to the circuit; a string picks
        the duration calibration (``"D0"``/``"D1"``); an object may set
        ``num_qubits``, ``durations`` and ``include_diabatic_cz``.
        """
        width = max(2, circuit.num_qubits)
        if spec is None:
            return spin_qubit_target(width, self.durations)
        if isinstance(spec, str):
            if spec not in ("D0", "D1"):
                raise ApiError(400, f"unknown target calibration {spec!r}; "
                                    "expected 'D0' or 'D1'")
            return spin_qubit_target(width, spec)
        if isinstance(spec, dict):
            unknown = set(spec) - {"num_qubits", "durations", "include_diabatic_cz"}
            if unknown:
                raise ApiError(400, f"unknown target key(s) {sorted(unknown)}")
            try:
                num_qubits = int(spec.get("num_qubits", width))
                target = spin_qubit_target(
                    num_qubits,
                    str(spec.get("durations", self.durations)),
                    include_diabatic_cz=bool(spec.get("include_diabatic_cz", True)),
                )
            except (TypeError, ValueError) as error:
                raise ApiError(400, f"invalid target: {error}") from None
            if target.num_qubits < circuit.num_qubits:
                raise ApiError(
                    400,
                    f"target has {target.num_qubits} qubits but the circuit "
                    f"needs {circuit.num_qubits}",
                )
            return target
        raise ApiError(400, "'target' must be null, 'D0'/'D1' or an object")

    @staticmethod
    def _resilience_settings(payload: Dict[str, object]):
        """Decode a submission's ``timeout``/``on_deadline``/``fallback``."""
        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ApiError(400, f"invalid timeout {timeout!r}") from None
            if timeout < 0:
                raise ApiError(400, "'timeout' must be >= 0 seconds")
        on_deadline = payload.get("on_deadline")
        if on_deadline is not None and on_deadline not in ("raise", "degrade"):
            raise ApiError(400, f"invalid on_deadline {on_deadline!r}; "
                                "expected 'raise' or 'degrade'")
        fallback = payload.get("fallback")
        if fallback is not None and not isinstance(fallback, (bool, str, list)):
            raise ApiError(400, "'fallback' must be a bool, a technique key "
                                "or a list of technique keys")
        if isinstance(fallback, list):
            fallback = [str(key) for key in fallback]
        return timeout, on_deadline, fallback

    # -- submission ------------------------------------------------------
    def _new_job(self, name: str, kind: str, label: str) -> _GatewayJob:
        with self._lock:
            self._next_id += 1
            job = _GatewayJob(f"{self.job_prefix}j{self._next_id}",
                              name, kind, label)
            self._jobs[job.id] = job
            # Bound the table: oldest *finished* jobs fall off first.
            if len(self._jobs) > self.max_jobs:
                for job_id, old in list(self._jobs.items()):
                    if len(self._jobs) <= self.max_jobs:
                        break
                    if old.done():
                        del self._jobs[job_id]
        return job

    def submit_payload(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Handle ``POST /v1/jobs``: decode, enqueue, return the job stub."""
        if not isinstance(payload, dict):
            raise ApiError(400, "the request body must be a JSON object")
        circuit = self.parse_circuit(payload)
        name = str(payload.get("name") or circuit.name)
        return self.submit_circuit(circuit, payload, name=name)

    def submit_circuit(self, circuit: QuantumCircuit,
                       payload: Dict[str, object], name: str) -> Dict[str, object]:
        """Enqueue an already-decoded circuit under ``payload``'s settings."""
        if self._closed:
            raise ApiError(503, "the server is shutting down",
                           retry_after=RETRY_AFTER_SECONDS)
        target = self.resolve_target(payload.get("target"), circuit)
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ApiError(400, "'options' must be an object")
        use_cache = bool(payload.get("use_cache", True))
        timeout, on_deadline, fallback = self._resilience_settings(payload)
        portfolio = payload.get("portfolio")
        technique = payload.get("technique")
        if portfolio is not None and technique is not None:
            raise ApiError(400, "give either 'technique' or 'portfolio', not both")

        if portfolio is not None:
            if timeout is not None or on_deadline is not None or fallback is not None:
                raise ApiError(400, "deadlines ('timeout'/'on_deadline'/"
                                    "'fallback') apply to technique jobs, "
                                    "not portfolios")
            if isinstance(portfolio, str):
                portfolio = [key.strip() for key in portfolio.split(",") if key.strip()]
            if not isinstance(portfolio, list) or not portfolio:
                raise ApiError(400, "'portfolio' must be a non-empty list of "
                                    "technique keys")
            policy = str(payload.get("policy", "combined"))
            job = self._new_job(name, "portfolio",
                                "+".join(str(key) for key in portfolio))
            job.future = self._portfolio_pool.submit(
                self.service.compile_portfolio, circuit, target,
                [str(key) for key in portfolio],
                policy=policy, use_cache=use_cache, **options,
            )
            # The service's lifecycle hook doesn't see portfolio races
            # (they fan out to technique jobs internally), so the gateway
            # publishes the portfolio job's own channel.
            self._publish_portfolio_event(job, "queued")
            job.future.add_done_callback(
                lambda future, job=job: self._publish_portfolio_event(
                    job, self._portfolio_terminal(future)))
        else:
            key = str(technique or "sat_p")
            try:
                handle = self.service.submit(
                    circuit, target, key,
                    use_cache=use_cache, block=False, timeout=timeout,
                    on_deadline=on_deadline, fallback=fallback, **options,
                )
            except ServiceSaturatedError as error:
                raise ApiError(503, str(error), retry=True,
                               retry_after=RETRY_AFTER_SECONDS) from None
            except UnknownTechniqueError as error:
                raise ApiError(
                    400, f"unknown technique {key!r}",
                    available=sorted(error.known),
                ) from None
            except (TypeError, ValueError) as error:
                raise ApiError(400, f"invalid submission: {error}") from None
            job = self._new_job(name, "technique", handle.technique)
            job.handle = handle
        return self.job_summary(job)

    @staticmethod
    def _portfolio_terminal(future) -> str:
        if future.cancelled():
            return "cancelled"
        return "failed" if future.exception() is not None else "done"

    def submit_batch(self, payload) -> Dict[str, object]:
        """Handle ``POST /v1/batch``: a workload manifest over the wire."""
        if self._closed:
            raise ApiError(503, "the server is shutting down",
                           retry_after=RETRY_AFTER_SECONDS)
        try:
            workloads, defaults = parse_manifest(payload, allow_qasm_paths=False)
        except (TypeError, ValueError, KeyError) as error:
            raise ApiError(400, f"invalid manifest: {error}") from None
        if not workloads:
            raise ApiError(400, "the manifest contains no workloads")
        settings = {
            "target": defaults.get("target"),
            "technique": defaults.get("technique"),
            "portfolio": defaults.get("portfolio"),
            "policy": defaults.get("policy", "combined"),
            "options": defaults.get("options") or {},
            "use_cache": defaults.get("use_cache", True),
            "timeout": defaults.get("timeout"),
            "on_deadline": defaults.get("on_deadline"),
            "fallback": defaults.get("fallback"),
        }
        if settings["technique"] is None and settings["portfolio"] is None:
            settings["technique"] = "sat_p"
        # Per-workload submit errors (full queue, circuit wider than the
        # manifest's target, ...) must not abort the batch mid-way: jobs
        # already enqueued would be orphaned with their ids never
        # returned.  Every accepted job id and every rejection comes back.
        jobs: List[Dict[str, object]] = []
        errors: List[Dict[str, object]] = []
        for name, circuit in workloads:
            try:
                jobs.append(self.submit_circuit(circuit, settings, name=name))
            except ApiError as error:
                errors.append({"name": name, "status": error.status,
                               **error.payload})
        return {"jobs": jobs, "errors": errors, "count": len(jobs)}

    def submit_suite(self, name: str, payload: Dict[str, object]) -> Dict[str, object]:
        """Handle ``POST /v1/suite/{name}/compile``."""
        from repro.interop import suite_circuit

        try:
            circuit = suite_circuit(name)
        except KeyError as error:
            raise ApiError(404, str(error.args[0]) if error.args else
                           f"unknown suite benchmark {name!r}") from None
        if not isinstance(payload, dict):
            raise ApiError(400, "the request body must be a JSON object")
        return self.submit_circuit(circuit, payload,
                                   name=str(payload.get("name") or name))

    # -- lookup ----------------------------------------------------------
    def _job(self, job_id: str) -> _GatewayJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"unknown job {job_id!r}")
        return job

    def job_summary(self, job: _GatewayJob) -> Dict[str, object]:
        summary = {
            "job_id": job.id,
            "name": job.name,
            "kind": job.kind,
            "technique": job.label,
            "status": job.status(),
            "submitted_at": job.submitted_at,
        }
        if job.handle is not None:
            # Technique jobs expose the service's lifecycle stamps, so
            # callers can split queue wait from compile time.
            summary["timing"] = job.handle.timing()
        return summary

    def job_status(self, job_id: str) -> Dict[str, object]:
        """Handle ``GET /v1/jobs/{id}``: summary + report once finished."""
        job = self._job(job_id)
        summary = self.job_summary(job)
        if job.done():
            try:
                result = job.wait(timeout=0)
            except CancelledError:
                pass
            except Exception as error:  # noqa: BLE001 - surfaced to the client
                summary["error"] = f"{type(error).__name__}: {error}"
            else:
                if result.report is not None:
                    summary["report"] = result.report.to_dict()
        return summary

    def job_result(self, job_id: str, timeout: Optional[float],
                   is_alive=None) -> Tuple[int, Dict[str, object]]:
        """Handle ``GET /v1/jobs/{id}/result`` with long-poll semantics.

        Returns ``(202, status stub)`` while the job is still pending
        after ``timeout`` seconds (capped server-side); 410 for cancelled
        jobs, 422 for failed compilations, 200 with the full payload on
        success.

        The wait runs in short slices, probing ``is_alive`` between
        them: an abandoned long-poll frees its handler thread within
        :data:`LONGPOLL_POLL_SECONDS` instead of blocking out the full
        timeout (the job itself keeps running).
        """
        job = self._job(job_id)
        wait = MAX_RESULT_WAIT_SECONDS if timeout is None else max(
            0.0, min(float(timeout), MAX_RESULT_WAIT_SECONDS))
        deadline = time.monotonic() + wait
        LONGPOLL_ACTIVE.inc()
        try:
            while True:
                remaining = deadline - time.monotonic()
                try:
                    result = job.wait(
                        timeout=min(LONGPOLL_POLL_SECONDS,
                                    max(0.0, remaining)))
                    break
                except (FutureTimeoutError, TimeoutError):
                    if remaining <= 0:
                        return 202, self.job_summary(job)
                    if is_alive is not None and not is_alive():
                        raise _ClientGone() from None
        except CancelledError:
            raise ApiError(410, f"job {job_id} was cancelled",
                           job_id=job_id, job_status="cancelled") from None
        except _ClientGone:
            raise
        except Exception as error:  # noqa: BLE001 - surfaced to the client
            raise ApiError(
                422, f"compilation failed: {type(error).__name__}: {error}",
                job_id=job_id, job_status="failed",
            ) from None
        finally:
            LONGPOLL_ACTIVE.dec()
        payload = self.job_summary(job)
        payload["result"] = result.to_dict()
        payload["cost"] = result.cost.to_dict()
        if result.report is not None and result.report.contenders:
            payload["contenders"] = result.report.contenders
        try:
            payload["qasm"] = circuit_to_qasm(result.adapted_circuit)
        except QasmExportError:
            payload["qasm"] = None
        return 200, payload

    def cancel_job(self, job_id: str) -> Dict[str, object]:
        """Handle ``DELETE /v1/jobs/{id}``."""
        job = self._job(job_id)
        cancelled = job.cancel()
        summary = self.job_summary(job)
        summary["cancelled"] = cancelled
        return summary

    # -- suite index, validation, health, metrics ------------------------
    def suite_index(self) -> Dict[str, object]:
        from repro.interop import load_suite

        benchmarks = []
        for entry in load_suite():
            metadata = dict(entry.metadata())
            metadata["name"] = entry.name
            metadata["description"] = entry.description
            benchmarks.append(metadata)
        return {"benchmarks": benchmarks, "count": len(benchmarks)}

    def validate_circuit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Parse a submitted circuit and echo its canonical wire form.

        The returned ``circuit`` is the exact ``to_dict()`` of what the
        server decoded — the bit-exact round-trip contract the property
        tests pin down — plus the QASM export and headline metadata.
        """
        if not isinstance(payload, dict):
            raise ApiError(400, "the request body must be a JSON object")
        circuit = self.parse_circuit(payload)
        try:
            qasm = circuit_to_qasm(circuit)
        except QasmExportError:
            qasm = None
        return {
            "circuit": circuit.to_dict(),
            "qasm": qasm,
            "name": circuit.name,
            "num_qubits": circuit.num_qubits,
            "gates": len(circuit.instructions),
        }

    def healthz(self) -> Dict[str, object]:
        with self._lock:
            jobs = list(self._jobs.values())
        by_status: Dict[str, int] = {}
        for job in jobs:
            status = job.status()
            by_status[status] = by_status.get(status, 0) + 1
        return {
            "status": "draining" if self._closed else "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self._started_at,
            "jobs": {"total": len(jobs), **by_status},
        }

    def _collect_telemetry(self) -> None:
        """Scrape-time collector: gauges only the gateway knows."""
        SERVER_UPTIME.set(time.time() - self._started_at)
        SERVER_JOBS_TRACKED.set(len(self._jobs))

    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` document: service stats + request telemetry."""
        from repro.golden import quality_summary

        return {
            "server": {
                "version": __version__,
                "uptime_seconds": time.time() - self._started_at,
                "job_prefix": self.job_prefix,
                "jobs_tracked": len(self._jobs),
            },
            "auth": {
                "enabled": self.auth.enabled,
                "keys": len(self.auth),
                "enforce_limits": self.auth.enforce_limits,
            },
            "shedding": (self.shedder.snapshot()
                         if self.shedder is not None else None),
            "events": {"channels": self.broker.channels()},
            # service.statistics() is JSON-safe by contract (regression-
            # tested) and the local sections are plain numbers/strings,
            # so nothing needs a coercion pass here.
            "service": self.service.statistics(),
            "requests": self.metrics.snapshot(),
            "passes": PASS_METRICS.snapshot(),
            # The raw registry view the JSON blocks above are carved
            # from: every family, with windowed rates/percentiles.
            "telemetry": REGISTRY.collect(),
            # Last golden-quality run: verdict counts + worst regression
            # (in-process run if any, else the BENCH_quality.json named
            # by REPRO_QUALITY_REPORT).  Never raises by contract.
            "quality": quality_summary(),
        }

    def prometheus_document(self) -> str:
        """``/metrics?format=prometheus``: the registry in text format.

        Sharded deployments self-label: the job prefix (``s0-``) becomes
        a ``shard`` label on every sample so the router can concatenate
        shard documents under one HELP/TYPE header per family.
        """
        shard = self.job_prefix.rstrip("-")
        extra = {"shard": shard} if shard else None
        return render_prometheus(REGISTRY.collect(), extra_labels=extra)

    def drain(self, timeout: Optional[float]) -> Dict[str, object]:
        """Handle ``POST /internal/drain``: quiesce the whole gateway.

        Outstanding *portfolio* jobs are awaited first — a pool-queued
        portfolio race may not have reached ``service.submit`` yet, so
        draining only the service queue could report idle while accepted
        jobs still wait to start (and the sharding router would then
        terminate the process under them).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        with self._lock:
            portfolios = [job.future for job in self._jobs.values()
                          if job.kind == "portfolio" and job.future is not None]
        for future in portfolios:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                future.result(timeout=remaining)
            except (FutureTimeoutError, TimeoutError):
                drained = False
                break
            except (CancelledError, Exception):  # noqa: BLE001 - terminal is terminal
                pass
        if drained:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            drained = self.service.drain(timeout=remaining)
        return {"drained": drained, "service": self.service.statistics()}

    # -- lifecycle -------------------------------------------------------
    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Reject new work, optionally drain in-flight jobs, stop the pool."""
        self._closed = True
        self.service.remove_listener(self._on_service_event)
        if REGISTRY.get_collector("gateway") == self._collect_telemetry:
            REGISTRY.unregister_collector("gateway")
        if drain:
            self.service.drain(timeout=timeout)
        self._portfolio_pool.shutdown(wait=drain)
        self.service.shutdown(wait=drain, cancel_pending=not drain)


# ---------------------------------------------------------------------------
# HTTP plumbing
# ---------------------------------------------------------------------------
#: (method, path regex, gateway dispatch name, metrics label).
_ROUTES: List[Tuple[str, "re.Pattern[str]", str, str]] = [
    ("GET", re.compile(r"^/healthz$"), "healthz", "GET /healthz"),
    ("GET", re.compile(r"^/metrics$"), "metrics", "GET /metrics"),
    ("POST", re.compile(r"^/v1/jobs$"), "submit", "POST /v1/jobs"),
    ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[^/]+)$"), "status",
     "GET /v1/jobs/{id}"),
    ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[^/]+)/result$"), "result",
     "GET /v1/jobs/{id}/result"),
    ("GET", re.compile(r"^/v1/jobs/(?P<job_id>[^/]+)/events$"), "events",
     "GET /v1/jobs/{id}/events"),
    ("DELETE", re.compile(r"^/v1/jobs/(?P<job_id>[^/]+)$"), "cancel",
     "DELETE /v1/jobs/{id}"),
    ("POST", re.compile(r"^/v1/batch$"), "batch", "POST /v1/batch"),
    ("GET", re.compile(r"^/v1/suite$"), "suite", "GET /v1/suite"),
    ("POST", re.compile(r"^/v1/suite/(?P<name>[^/]+)/compile$"),
     "suite_compile", "POST /v1/suite/{name}/compile"),
    ("POST", re.compile(r"^/v1/circuits/validate$"), "validate",
     "POST /v1/circuits/validate"),
    ("POST", re.compile(r"^/internal/drain$"), "drain", "POST /internal/drain"),
    ("GET", re.compile(r"^/internal/store/(?P<digest>[^/]+)$"), "store_entry",
     "GET /internal/store/{digest}"),
]

#: Actions that stay reachable without an API key even when auth is on:
#: ops probes and node-internal endpoints (deployments firewall
#: ``/internal/*`` and the metrics port; API keys protect ``/v1/*``).
_AUTH_EXEMPT = frozenset({"healthz", "metrics", "drain", "store_entry"})

#: Actions that enqueue new work and therefore pass the load shedder.
_SHED_ACTIONS = frozenset({"submit", "batch", "suite_compile"})


class _TextResponse:
    """A non-JSON response body (Prometheus exposition) + content type."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


class _EventStream:
    """A server-sent event response: an iterator of (event, payload)."""

    __slots__ = ("events",)

    def __init__(self, events: Iterator[Tuple[str, Dict[str, object]]]) -> None:
        self.events = events


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning server's gateway."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-server/{__version__}"

    #: The owning ReproServer sets this per server class copy.
    gateway: CompilationGateway

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # Telemetry lives in /metrics, not on stderr.

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- internals -------------------------------------------------------
    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ApiError(400, "invalid Content-Length header") from None
        if length < 0:
            # rfile.read(-1) would block until client EOF — a held-open
            # connection would pin this handler thread forever.
            raise ApiError(400, "invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ApiError(400, f"request body is not valid JSON: {error}") from None

    def _connection_alive(self) -> bool:
        """Probe whether the request's client socket is still open.

        A waiting GET has nothing left to send, so readability here
        means either EOF (client closed — ``recv`` peeks ``b""``) or
        stray pipelined bytes (treated as alive; the next request will
        deal with them).  Errors count as dead: the wait should end.
        """
        try:
            readable, _, _ = select.select([self.connection], [], [], 0)
            if not readable:
                return True
            return bool(self.connection.recv(1, socket.MSG_PEEK))
        except (OSError, ValueError):
            return False

    def _query_timeout(self, query: Dict[str, List[str]]) -> Optional[float]:
        values = query.get("timeout")
        if not values:
            return None
        try:
            return float(values[0])
        except ValueError:
            raise ApiError(400, f"invalid timeout {values[0]!r}") from None

    def _with_deadline_header(self, payload):
        """Fold an ``X-Repro-Deadline`` header into a submission body.

        The body's own ``timeout`` field wins when both are present.
        """
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None or not isinstance(payload, dict):
            return payload
        try:
            deadline = float(raw)
        except ValueError:
            raise ApiError(
                400, f"invalid {DEADLINE_HEADER} header {raw!r}") from None
        payload.setdefault("timeout", deadline)
        return payload

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        parsed = urlparse(self.path)
        label = f"{method} <unmatched>"
        status, payload = 500, {"error": "internal error"}
        retry_after: Optional[float] = None
        tracer = current_tracer()
        begin_fields: Dict[str, object] = {"method": method}
        # A caller's propagation header ("pid:span") stitches its span
        # tree onto this request's; the structural parent stays local so
        # per-process trace invariants hold.  Malformed values (anyone
        # can set a header) are dropped, not trusted.
        remote = self.headers.get(TRACE_HEADER)
        if remote and _REMOTE_PARENT_RE.match(remote):
            begin_fields["remote_parent"] = remote
        request_token = tracer.begin("http.request", "server", **begin_fields)
        try:
            matched = None
            path_exists = False
            for route_method, pattern, action, route_label in _ROUTES:
                match = pattern.match(parsed.path)
                if match is None:
                    continue
                path_exists = True
                if route_method == method:
                    matched = (action, route_label, match)
                    break
            if matched is None:
                # All unmatched paths share the one "<unmatched>" metrics
                # label — a scanner probing thousands of distinct URLs
                # must not grow one _RouteStats per path.
                raise ApiError(405 if path_exists else 404,
                               f"no such resource: {method} {parsed.path}")
            action, label, match = matched
            query = parse_qs(parsed.query)
            if action not in _AUTH_EXEMPT:
                self.gateway.authorize(self.headers,
                                       shed=action in _SHED_ACTIONS)
            status, payload = self._handle(action, match, query)
        except ApiError as error:
            status, payload = error.status, error.payload
            retry_after = error.retry_after
        except (BrokenPipeError, _ClientGone):
            # Client went away mid-request; nothing to answer.
            tracer.end(request_token, route=label, status=0)
            self.close_connection = True
            return
        except Exception as error:  # noqa: BLE001 - the server must answer
            status = 500
            payload = {"error": f"{type(error).__name__}: {error}"}
        plan = active_fault_plan()
        if plan is not None:
            # Fault injection: delay and/or drop this response.  The
            # abort closes the socket without answering — the client sees
            # a connection error mid-read, the retry territory its
            # resilience tests exercise.
            for spec in plan.delay("http.response"):
                if spec.action == "abort":
                    tracer.end(request_token, route=label, status=0)
                    self.close_connection = True
                    try:
                        self.connection.close()
                    except OSError:
                        pass
                    return
        tracer.end(request_token, route=label, status=status)
        self._respond(status, payload, retry_after=retry_after)
        self.gateway.metrics.observe(label, status,
                                     time.perf_counter() - started)

    def _handle(self, action: str, match, query) -> Tuple[int, Dict[str, object]]:
        gateway = self.gateway
        if action == "healthz":
            return 200, gateway.healthz()
        if action == "metrics":
            if "prometheus" in (query.get("format") or ()):
                return 200, _TextResponse(gateway.prometheus_document(),
                                          PROMETHEUS_CONTENT_TYPE)
            return 200, gateway.metrics_snapshot()
        if action == "submit":
            return 202, gateway.submit_payload(
                self._with_deadline_header(self._read_json()))
        if action == "status":
            return 200, gateway.job_status(match.group("job_id"))
        if action == "result":
            return gateway.job_result(match.group("job_id"),
                                      self._query_timeout(query),
                                      is_alive=self._connection_alive)
        if action == "events":
            return 200, _EventStream(gateway.job_events(
                match.group("job_id"),
                timeout=self._query_timeout(query),
                is_alive=self._connection_alive))
        if action == "store_entry":
            return 200, _TextResponse(
                gateway.store_entry(match.group("digest")),
                "application/json")
        if action == "cancel":
            return 200, gateway.cancel_job(match.group("job_id"))
        if action == "batch":
            return 202, gateway.submit_batch(
                self._with_deadline_header(self._read_json()))
        if action == "suite":
            return 200, gateway.suite_index()
        if action == "suite_compile":
            return 202, gateway.submit_suite(
                match.group("name"),
                self._with_deadline_header(self._read_json()))
        if action == "validate":
            return 200, gateway.validate_circuit(self._read_json())
        if action == "drain":
            body = self._read_json()
            timeout = body.get("timeout") if isinstance(body, dict) else None
            try:
                wait = (float(timeout) if timeout is not None
                        else DEFAULT_DRAIN_WAIT_SECONDS)
            except (TypeError, ValueError):
                raise ApiError(400, f"invalid drain timeout {timeout!r}") from None
            return 200, gateway.drain(
                max(0.0, min(wait, MAX_DRAIN_WAIT_SECONDS)))
        raise ApiError(500, f"unrouted action {action!r}")  # pragma: no cover

    def _respond(self, status: int, payload,
                 retry_after: Optional[float] = None) -> None:
        if isinstance(payload, _EventStream):
            self._respond_sse(payload.events)
            return
        if isinstance(payload, _TextResponse):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        if status >= 400:
            # Error paths may answer before the request body was read
            # (404/405 routing, 413 oversize); leftover body bytes would
            # be parsed as the next request line on a kept-alive
            # connection, so errors always close it.
            self.close_connection = True
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                # Integer seconds per RFC 9110 (rounded up, so a client
                # honoring the header never retries early).
                self.send_header("Retry-After",
                                 str(max(1, int(-(-retry_after // 1)))))
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # Client went away; the job (if any) keeps running.

    def _respond_sse(self, events) -> None:
        """Write one server-sent event stream and close the connection.

        No ``Content-Length`` — the stream's length is unknown — so the
        connection cannot be kept alive afterwards.  Heartbeats go out
        as SSE comment lines (``: heartbeat``); every frame is flushed
        immediately so subscribers see events as they happen.
        """
        self.close_connection = True
        EVENT_STREAMS_ACTIVE.inc()
        try:
            self.send_response(200)
            self.send_header("Content-Type", SSE_CONTENT_TYPE)
            self.send_header("Cache-Control", "no-store")
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.flush()
            for event, payload in events:
                if event == "heartbeat":
                    frame = f": heartbeat {payload.get('elapsed_seconds', 0):.0f}\n\n"
                else:
                    frame = (f"event: {event}\n"
                             f"data: {json.dumps(payload)}\n\n")
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # Subscriber went away; the job keeps running.
        finally:
            EVENT_STREAMS_ACTIVE.dec()


class ReproServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one :class:`CompilationGateway`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 gateway: CompilationGateway) -> None:
        handler = type("_BoundHandler", (_Handler,), {"gateway": gateway})
        super().__init__(address, handler)
        self.gateway = gateway
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start_background(self) -> "ReproServer":
        """Run ``serve_forever`` on a daemon thread and return ``self``."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-server", daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Draining shutdown: close the listener, finish in-flight jobs.

        New connections stop being accepted first; queued and running
        compilations then finish (unless ``drain=False``, which cancels
        what it can) and the service's worker pool exits.
        """
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.gateway.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=True)


def build_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 4,
    store: Union[PersistentResultStore, str, None] = None,
    durations: str = "D0",
    max_pending: int = 256,
    job_prefix: str = "",
    service: Optional[CompilationService] = None,
    trace: Optional[str] = None,
    auth=None,
    enforce_limits: bool = True,
    shedding: Union[LoadShedder, SheddingPolicy, bool, None] = True,
) -> ReproServer:
    """Assemble service + gateway + HTTP server (not yet serving).

    ``port=0`` binds an OS-assigned free port (see ``server.port``).
    Pass an existing ``service`` to serve it directly; otherwise one is
    created with ``workers``/``max_pending``/``store`` (``store``
    accepts a backend instance or a ``dir:``/``replicated:`` spec
    string, see :func:`repro.cluster.resolve_store_backend`).

    ``auth`` is an :class:`repro.cluster.Authenticator`, a key-config
    dict/JSON/path, or ``None`` (falls back to ``$REPRO_API_KEYS``; with
    nothing configured the server is open).  ``enforce_limits=False``
    makes this gateway validate keys without charging rate limits — the
    mode shards behind a charging router run in.  ``shedding`` tunes the
    saturation-tied admission policy (``False`` disables it).

    ``trace`` enables structured JSONL event tracing into the given path
    for the server's lifetime (see :mod:`repro.trace`).  Call
    ``start_background()`` (tests, embedding) or ``serve_forever()``
    (CLI) on the returned server, and ``stop()`` to shut down draining.
    """
    # A shard prefix ("s0-", "s0g2-" after a respawn) names the node in
    # the cluster's peers file; generation suffixes are not identity.
    shard_match = re.match(r"^(s\d+)", job_prefix)
    node = shard_match.group(1) if shard_match else (job_prefix.rstrip("-") or None)
    if service is None:
        service = CompilationService(
            workers=workers, max_pending=max_pending,
            store=resolve_store_backend(store, node=node), trace=trace)
    elif trace is not None:
        from repro.trace.tracer import start_tracing

        start_tracing(trace)
    authenticator = Authenticator.from_spec(auth, enforce_limits=enforce_limits)
    gateway = CompilationGateway(service, durations=durations,
                                 job_prefix=job_prefix,
                                 auth=authenticator, shedding=shedding)
    return ReproServer((host, port), gateway)
