"""A blocking HTTP client mirroring the local compilation API.

:class:`ReproClient` speaks the gateway's JSON protocol with nothing but
``urllib``::

    from repro.server import ReproClient

    client = ReproClient("http://127.0.0.1:8000")
    result = client.compile(circuit, technique="sat_p")   # AdaptationResult
    job = client.submit(qasm_text, technique="direct")    # async
    print(job.status())
    result = job.result(timeout=60)

Results come back as real :class:`repro.core.AdaptationResult` objects
(rebuilt from the wire payload's exact ``to_dict()`` form), so code
written against :func:`repro.compile` ports by swapping the call site.

Transient transport failures (connection refused/reset, 502/503) are
retried with exponential backoff; every HTTP error status maps to a
typed :class:`ServerError` subclass carrying the decoded error payload.
"""

from __future__ import annotations

import json
import os
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Union
from urllib.parse import quote

from repro.circuits.circuit import QuantumCircuit
from repro.core.adapter import AdaptationResult
from repro.hardware.target import Target
from repro.trace.tracer import TRACE_HEADER, current_tracer

#: Per-request cap on the server-side long-poll slice (the server caps at
#: 60 s; staying under it keeps one HTTP round trip per slice).
_POLL_SLICE_SECONDS = 30.0


class ServerError(RuntimeError):
    """Base error for every non-2xx gateway response.

    ``status`` is the HTTP status code (``None`` for transport-level
    failures) and ``payload`` the decoded JSON error body, when any.
    """

    def __init__(self, message: str, status: Optional[int] = None,
                 payload: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class BadRequestError(ServerError):
    """400: the submission itself was malformed."""


class AuthenticationError(ServerError):
    """401: the request carried no API key, or an unknown one."""


class PermissionDeniedError(ServerError):
    """403: the API key is recognized but not allowed (e.g. expired)."""


class RateLimitedError(ServerError):
    """429: the key is over its rate limit or daily quota.

    Retried automatically (honoring ``Retry-After``) when the server
    marks it transient and the retry budget allows.
    """


class JobNotFoundError(ServerError):
    """404: unknown job id or resource."""


class JobCancelledError(ServerError):
    """410: the job was cancelled before producing a result."""


class CompilationFailedError(ServerError):
    """422: the compilation ran and failed; the message carries the cause."""


class ServerSaturatedError(ServerError):
    """503: the job queue is full or the server is draining."""


class ServerUnavailableError(ServerError):
    """The server could not be reached (after retries)."""


_STATUS_ERRORS = {
    400: BadRequestError,
    401: AuthenticationError,
    403: PermissionDeniedError,
    404: JobNotFoundError,
    405: BadRequestError,
    410: JobCancelledError,
    413: BadRequestError,
    422: CompilationFailedError,
    429: RateLimitedError,
    503: ServerSaturatedError,
}

def _error_for(status: int, payload: Dict[str, object]) -> ServerError:
    message = str(payload.get("error") or f"server returned HTTP {status}")
    cls = _STATUS_ERRORS.get(status, ServerError)
    return cls(message, status=status, payload=payload)


class RemoteJob:
    """Client-side handle to one server-side job (compare ``JobHandle``)."""

    def __init__(self, client: "ReproClient", summary: Dict[str, object]) -> None:
        self._client = client
        self.job_id = str(summary["job_id"])
        self.name = summary.get("name")
        self.technique = summary.get("technique")
        self.kind = summary.get("kind", "technique")

    def status(self) -> str:
        """Current lifecycle state string (``queued``/``running``/...)."""
        return str(self._client.job_status(self.job_id)["status"])

    def done(self) -> bool:
        return self.status() in ("done", "failed", "cancelled")

    def result(self, timeout: Optional[float] = None) -> AdaptationResult:
        """Block for the :class:`AdaptationResult` (long-polling)."""
        return self._client.result(self.job_id, timeout=timeout)

    def stream(self, timeout: Optional[float] = None):
        """Yield ``(event, payload)`` lifecycle tuples as they happen."""
        return self._client.stream(self.job_id, timeout=timeout)

    def wait(self, timeout: Optional[float] = None) -> AdaptationResult:
        """Block for the result by *streaming* events instead of polling."""
        return self._client.wait(self.job_id, timeout=timeout)

    def cancel(self) -> bool:
        return self._client.cancel(self.job_id)

    def __repr__(self) -> str:
        return f"RemoteJob(id={self.job_id!r}, technique={self.technique!r})"


class ReproClient:
    """Blocking JSON-over-HTTP client for :mod:`repro.server`.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8000"`` (trailing slash tolerated).
    timeout:
        Socket timeout per HTTP request, seconds.
    retries:
        How many times a *transient* failure (connection refused/reset,
        502/503/504) is retried before giving up.
    backoff:
        Initial retry delay in seconds; doubles per attempt.  A 503
        carrying a ``Retry-After`` header overrides the backoff for that
        attempt — the server knows its own recovery horizon better.
    max_retry_seconds:
        Hard cap on the total wall-clock one request may spend retrying
        (sleeps included); the last transient error is raised once the
        cap would be exceeded.
    api_key:
        Credential sent as ``Authorization: Bearer <key>`` on every
        request.  Defaults to ``$REPRO_API_KEY`` when unset; pass
        ``api_key=""`` to force anonymous requests.
    """

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 3, backoff: float = 0.2,
                 max_retry_seconds: float = 60.0,
                 api_key: Optional[str] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_retry_seconds = max_retry_seconds
        if api_key is None:
            api_key = os.environ.get("REPRO_API_KEY") or None
        self.api_key = api_key or None

    # -- transport -------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[object] = None,
                 timeout: Optional[float] = None) -> Dict[str, object]:
        status, body = self._request_status(method, path, payload, timeout)
        return body

    def _request_status(self, method: str, path: str,
                        payload: Optional[object] = None,
                        timeout: Optional[float] = None):
        """One HTTP exchange with retries; returns ``(status, json body)``.

        POSTs are retried too.  With caching on (the default) that is
        harmless: identical submissions coalesce onto one in-flight job
        or hit the cache, so the work runs once even if the first
        response was lost.  With ``use_cache=False`` a retry after a
        lost *response* (connection reset mid-reply) can enqueue a
        second, uncollected compilation — set ``retries=0`` on the
        client if that matters more than robustness to flaky networks.
        """
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # When this process traces, the exchange gets a client-layer span
        # and its identity rides the propagation header so the gateway's
        # request span records us as its remote parent.
        tracer = current_tracer()
        token = None
        if tracer.enabled:
            token = tracer.begin("client.request", "client",
                                 method=method, path=path.split("?", 1)[0])
            headers[TRACE_HEADER] = f"{os.getpid()}:{token[0]}"
        final_status: Optional[int] = None
        try:
            delay = self.backoff
            started = time.monotonic()
            last_error: Optional[ServerError] = None
            for attempt in range(self.retries + 1):
                request = urllib.request.Request(url, data=data, headers=headers,
                                                 method=method)
                retry_after: Optional[float] = None
                try:
                    with urllib.request.urlopen(
                        request, timeout=timeout or self.timeout
                    ) as response:
                        final_status = response.status
                        return response.status, self._decode(response.read())
                except urllib.error.HTTPError as error:
                    body = self._decode(error.read())
                    final_status = error.code
                    # 502/504 (routing-layer trouble) always retries; 503
                    # and 429 only when the server marked them transient
                    # (full queue, token bucket refilling) — a draining
                    # server or an exhausted daily quota will never come
                    # back for this request.
                    retryable = error.code in (502, 504) or (
                        error.code in (429, 503) and bool(
                            body.get("retry") or body.get("retry_after"))
                    )
                    if retryable:
                        last_error = _error_for(error.code, body)
                        retry_after = self._retry_after(error, body)
                    else:
                        raise _error_for(error.code, body) from None
                except (urllib.error.URLError, ConnectionError,
                        socket.timeout, TimeoutError) as error:
                    reason = getattr(error, "reason", error)
                    last_error = ServerUnavailableError(
                        f"cannot reach {url}: {reason}")
                if attempt < self.retries:
                    pause = delay if retry_after is None else retry_after
                    # Bound the total retry wall-clock: when the next sleep
                    # would blow the cap, surface the last error instead.
                    elapsed = time.monotonic() - started
                    if elapsed + pause > self.max_retry_seconds:
                        break
                    time.sleep(pause)
                    delay *= 2
            raise last_error  # type: ignore[misc]
        finally:
            if token is not None:
                tracer.end(token, status=final_status)

    @staticmethod
    def _retry_after(error: urllib.error.HTTPError,
                     body: Dict[str, object]) -> Optional[float]:
        """The server's retry hint: ``Retry-After`` header or JSON field."""
        raw = error.headers.get("Retry-After") if error.headers else None
        if raw is None:
            raw = body.get("retry_after")
        try:
            seconds = float(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        return max(0.0, seconds)

    @staticmethod
    def _decode(raw: bytes) -> Dict[str, object]:
        if not raw:
            return {}
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {"error": raw[:512].decode("utf-8", "replace")}
        return decoded if isinstance(decoded, dict) else {"value": decoded}

    # -- payload helpers -------------------------------------------------
    @staticmethod
    def _circuit_payload(circuit: Union[QuantumCircuit, str, dict]) -> object:
        """Normalize a circuit argument to its wire form.

        ``QuantumCircuit`` travels as its exact ``to_dict()`` JSON; a
        string travels as QASM *source* (the server never reads paths);
        a dict is assumed to already be wire-form circuit JSON.
        """
        if isinstance(circuit, QuantumCircuit):
            return circuit.to_dict()
        if isinstance(circuit, (str, dict)):
            return circuit
        raise TypeError(
            f"cannot send {type(circuit).__name__} over the wire; expected "
            "a QuantumCircuit, QASM source text or circuit JSON"
        )

    @staticmethod
    def _target_payload(target) -> object:
        """Normalize a target argument to its wire form."""
        if target is None or isinstance(target, (str, dict)):
            return target
        if isinstance(target, Target):
            # The spin-qubit targets serialize by calibration name
            # ("spin-D0"); anything else has no wire form yet.
            match = target.name.rsplit("-", 1)
            if len(match) == 2 and match[1] in ("D0", "D1"):
                return {"num_qubits": target.num_qubits, "durations": match[1]}
            raise TypeError(
                f"target {target.name!r} has no wire form; pass a "
                "{'num_qubits': ..., 'durations': ...} object instead"
            )
        raise TypeError(f"cannot send {type(target).__name__} as a target")

    # -- the mirrored API ------------------------------------------------
    def submit(
        self,
        circuit: Union[QuantumCircuit, str, dict],
        target=None,
        technique: Optional[str] = None,
        *,
        portfolio: Optional[Sequence[str]] = None,
        policy: Optional[str] = None,
        use_cache: bool = True,
        name: Optional[str] = None,
        deadline: Optional[float] = None,
        on_deadline: Optional[str] = None,
        fallback: Union[None, bool, str, Sequence[str]] = None,
        **options: object,
    ) -> RemoteJob:
        """Enqueue one compilation; returns a :class:`RemoteJob` handle.

        ``deadline`` is the *server-side* compile budget in seconds
        (``compile(timeout=...)`` semantics); ``on_deadline="degrade"``
        with an optional ``fallback`` ladder makes the server fall back
        to cheaper techniques instead of failing the job.
        """
        payload: Dict[str, object] = {
            "circuit": self._circuit_payload(circuit),
            "target": self._target_payload(target),
            "use_cache": use_cache,
        }
        if portfolio is not None:
            payload["portfolio"] = list(portfolio)
            if policy is not None:
                payload["policy"] = policy
        else:
            payload["technique"] = technique or "sat_p"
        if options:
            payload["options"] = dict(options)
        if name is not None:
            payload["name"] = name
        if deadline is not None:
            payload["timeout"] = float(deadline)
        if on_deadline is not None:
            payload["on_deadline"] = on_deadline
        if fallback is not None:
            payload["fallback"] = (list(fallback)
                                   if isinstance(fallback, (list, tuple))
                                   else fallback)
        return RemoteJob(self, self._request("POST", "/v1/jobs", payload))

    def job_status(self, job_id: str) -> Dict[str, object]:
        """The server's status document for one job."""
        return self._request("GET", f"/v1/jobs/{quote(job_id, safe='')}")

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> AdaptationResult:
        """Block until the job finishes; long-polls the result resource.

        Raises :class:`CompilationFailedError` /
        :class:`JobCancelledError` on terminal failure and
        ``TimeoutError`` when ``timeout`` elapses first.
        """
        payload = self.result_payload(job_id, timeout=timeout)
        return AdaptationResult.from_dict(payload["result"])

    def result_payload(self, job_id: str,
                       timeout: Optional[float] = None) -> Dict[str, object]:
        """The raw result document (circuit JSON + QASM + cost + contenders)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        path = f"/v1/jobs/{quote(job_id, safe='')}/result"
        while True:
            wait = _POLL_SLICE_SECONDS
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            status, payload = self._request_status(
                "GET", f"{path}?timeout={wait:.3f}",
                timeout=max(self.timeout, wait + 30.0),
            )
            if status == 200:
                return payload
            # 202: still pending after the server-side slice.
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload.get('status', 'pending')} "
                    f"after {timeout} seconds"
                )

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; ``True`` when the cancellation took effect."""
        payload = self._request("DELETE", f"/v1/jobs/{quote(job_id, safe='')}")
        return bool(payload.get("cancelled"))

    # -- job-event streaming ---------------------------------------------
    def stream(self, job_id: str, timeout: Optional[float] = None):
        """Follow one job's lifecycle over Server-Sent Events.

        Yields ``(event, payload)`` tuples — ``queued``, ``running``,
        ``dedup`` and finally one of ``done``/``failed``/``cancelled``
        (or ``timeout`` when the server-side stream cap elapses first).
        Heartbeat comments are consumed silently; the generator returns
        after the first terminal event.
        """
        path = f"/v1/jobs/{quote(job_id, safe='')}/events"
        if timeout is not None:
            path += f"?timeout={max(0.0, timeout):.3f}"
        headers = {"Accept": "text/event-stream"}
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        request = urllib.request.Request(self.base_url + path, headers=headers)
        # The socket timeout only needs to outlive the server's heartbeat
        # cadence (15 s), not the whole stream — each frame resets it.
        socket_timeout = max(self.timeout, 60.0)
        try:
            response = urllib.request.urlopen(request, timeout=socket_timeout)
        except urllib.error.HTTPError as error:
            raise _error_for(error.code, self._decode(error.read())) from None
        except (urllib.error.URLError, ConnectionError,
                socket.timeout, TimeoutError) as error:
            reason = getattr(error, "reason", error)
            raise ServerUnavailableError(
                f"cannot reach {self.base_url + path}: {reason}") from None
        with response:
            event: Optional[str] = None
            data: List[str] = []
            for raw_line in response:
                line = raw_line.decode("utf-8", "replace").rstrip("\r\n")
                if not line:
                    # Blank line terminates one SSE frame.
                    if event is not None:
                        payload: Dict[str, object] = {}
                        if data:
                            try:
                                decoded = json.loads("\n".join(data))
                            except json.JSONDecodeError:
                                decoded = {}
                            if isinstance(decoded, dict):
                                payload = decoded
                        yield event, payload
                        if event in ("done", "failed", "cancelled"):
                            return
                    event, data = None, []
                elif line.startswith(":"):
                    continue  # heartbeat / comment
                elif line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data.append(line[len("data:"):].strip())

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> AdaptationResult:
        """Block for a job's result by streaming its events.

        The event stream replaces long-polling as the primary wait path:
        one held connection instead of repeated result requests.  When
        the server caps a stream (or a connection drops mid-stream) the
        client reconnects until the deadline; the result document itself
        is fetched once a terminal event arrives.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still pending after {timeout} seconds")
            terminal = None
            for event, _payload in self.stream(job_id, timeout=remaining):
                if event in ("done", "failed", "cancelled"):
                    terminal = event
                    break
            if terminal is not None:
                # Terminal state reached: the result document is ready
                # (or raises the matching typed error) without waiting.
                return self.result(job_id, timeout=30.0)
            # Stream ended without a terminal event (server-side cap or
            # dropped connection) — reconnect within the deadline.

    def compile(
        self,
        circuit: Union[QuantumCircuit, str, dict],
        target=None,
        technique: str = "sat_p",
        *,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        on_deadline: Optional[str] = None,
        fallback: Union[None, bool, str, Sequence[str]] = None,
        use_cache: bool = True,
        **options: object,
    ) -> AdaptationResult:
        """Synchronous mirror of :func:`repro.compile` over HTTP.

        ``timeout`` bounds the client-side wait for the result;
        ``deadline`` is the server-side compile budget (and implies a
        result wait of ``2 * deadline + 30`` seconds when ``timeout`` is
        not given — room for the degradation ladder's grace rungs).
        """
        job = self.submit(circuit, target, technique,
                          use_cache=use_cache, deadline=deadline,
                          on_deadline=on_deadline, fallback=fallback,
                          **options)
        if timeout is None and deadline is not None:
            timeout = 2.0 * deadline + 30.0
        return job.result(timeout=timeout)

    def compile_portfolio(
        self,
        circuit: Union[QuantumCircuit, str, dict],
        target=None,
        techniques: Optional[Sequence[str]] = None,
        *,
        policy: str = "combined",
        timeout: Optional[float] = None,
        use_cache: bool = True,
        **options: object,
    ) -> AdaptationResult:
        """Mirror of ``CompilationService.compile_portfolio`` over HTTP."""
        from repro.service.portfolio import DEFAULT_PORTFOLIO

        job = self.submit(
            circuit, target,
            portfolio=list(techniques or DEFAULT_PORTFOLIO),
            policy=policy, use_cache=use_cache, **options,
        )
        return job.result(timeout=timeout)

    def submit_batch(self, manifest) -> List[RemoteJob]:
        """POST a workload manifest; returns one handle per workload.

        Raises :class:`BadRequestError` when any workload was rejected —
        the error's ``payload`` still carries the accepted ``jobs`` stubs
        (they are already running server-side) next to the ``errors``
        list, so a caller that wants partial results can recover them.
        """
        payload = self._request("POST", "/v1/batch", manifest)
        if payload.get("errors"):
            rejected = ", ".join(
                f"{e.get('name')}: {e.get('error')}" for e in payload["errors"])
            raise BadRequestError(
                f"{len(payload['errors'])} workload(s) were rejected "
                f"({rejected}); {len(payload['jobs'])} accepted jobs are "
                "in the error payload", status=400, payload=payload)
        return [RemoteJob(self, stub) for stub in payload["jobs"]]

    def compile_suite(self, benchmark: str, technique: str = "sat_p",
                      *, target=None, timeout: Optional[float] = None,
                      use_cache: bool = True,
                      deadline: Optional[float] = None,
                      on_deadline: Optional[str] = None,
                      fallback: Union[None, bool, str, Sequence[str]] = None,
                      **options: object) -> AdaptationResult:
        """Compile one bundled suite benchmark server-side.

        ``deadline``/``on_deadline``/``fallback`` carry the same
        server-side budget semantics as :meth:`submit`.
        """
        payload: Dict[str, object] = {"technique": technique,
                                      "target": self._target_payload(target),
                                      "use_cache": use_cache}
        if deadline is not None:
            payload["timeout"] = float(deadline)
        if on_deadline is not None:
            payload["on_deadline"] = on_deadline
        if fallback is not None:
            payload["fallback"] = (list(fallback)
                                   if isinstance(fallback, (list, tuple))
                                   else fallback)
        if options:
            payload["options"] = dict(options)
        stub = self._request(
            "POST", f"/v1/suite/{quote(benchmark, safe='')}/compile", payload)
        return RemoteJob(self, stub).result(timeout=timeout)

    def suite(self) -> List[Dict[str, object]]:
        """The server's bundled-benchmark index."""
        return list(self._request("GET", "/v1/suite")["benchmarks"])

    def validate_circuit(
        self, circuit: Union[QuantumCircuit, str, dict]
    ) -> Dict[str, object]:
        """Round-trip a circuit through the server's wire decoder."""
        return self._request("POST", "/v1/circuits/validate",
                             {"circuit": self._circuit_payload(circuit)})

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def wait_until_ready(self, timeout: float = 30.0,
                         poll_interval: float = 0.1) -> Dict[str, object]:
        """Poll ``/healthz`` until the server answers (e.g. after boot)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ServerError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_interval)

    def __repr__(self) -> str:
        return f"ReproClient(base_url={self.base_url!r})"
