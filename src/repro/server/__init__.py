"""The networked compilation gateway: HTTP API, client, sharding.

Serve the compilation stack over plain HTTP (standard library only)::

    python -m repro.server --port 8000 --workers 4 --store .repro-store

and talk to it from anywhere::

    from repro.server import ReproClient

    client = ReproClient("http://127.0.0.1:8000")
    result = client.compile(qasm_text, technique="sat_p")
    print(result.cost.gate_fidelity_product)

Pieces:

* :func:`build_server` / :class:`ReproServer` — a ``ThreadingHTTPServer``
  JSON REST API over :class:`repro.service.CompilationService` (jobs,
  batches, bundled-suite compiles, health and metrics);
* :class:`ReproClient` — a blocking ``urllib`` client mirroring the
  local ``compile``/``submit``/``compile_portfolio`` API with retries
  and typed :class:`ServerError` subclasses;
* :class:`ShardRouter` — N server processes behind a fingerprint-hash
  router sharing one persistent result store;
* :mod:`repro.cluster` — the multi-node building blocks the server
  composes: pluggable/replicated store backends, API-key auth with
  rate limits, the job-event broker and the load shedder;
* ``python -m repro.server`` — the serving CLI;
* ``benchmarks/perf/server_load.py`` — the load harness recording
  cold/warm requests-per-second and latency percentiles.
"""

from repro.server.app import (
    ApiError,
    CompilationGateway,
    ReproServer,
    RequestMetrics,
    build_server,
)
from repro.server.client import (
    AuthenticationError,
    BadRequestError,
    CompilationFailedError,
    JobCancelledError,
    JobNotFoundError,
    PermissionDeniedError,
    RateLimitedError,
    RemoteJob,
    ReproClient,
    ServerError,
    ServerSaturatedError,
    ServerUnavailableError,
)
from repro.server.sharding import ShardRouter

__all__ = [
    "build_server",
    "ReproServer",
    "CompilationGateway",
    "RequestMetrics",
    "ApiError",
    "ReproClient",
    "RemoteJob",
    "ServerError",
    "BadRequestError",
    "AuthenticationError",
    "PermissionDeniedError",
    "RateLimitedError",
    "JobNotFoundError",
    "JobCancelledError",
    "CompilationFailedError",
    "ServerSaturatedError",
    "ServerUnavailableError",
    "ShardRouter",
]
