"""Serving CLI: ``python -m repro.server [options]``.

Boot the HTTP compilation gateway::

    python -m repro.server --port 8000 --workers 4 --store .repro-store

or a sharded deployment (N worker processes behind the hash router,
sharing the persistent store)::

    python -m repro.server --port 8000 --shards 4 --workers 2 \
        --store .repro-store

The process prints one ``repro.server listening on http://...`` line
once it accepts traffic (scripts wait for it), serves until interrupted,
and shuts down *draining* — queued and running jobs finish first.
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from typing import List, Optional


def _raise_interrupt(signum, frame):  # noqa: ARG001 - signal API
    raise KeyboardInterrupt


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve the compilation stack over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8000,
                        help="port to listen on; 0 picks a free port "
                             "(default 8000)")
    parser.add_argument("--workers", type=int, default=4,
                        help="compilation worker threads per shard (default 4)")
    parser.add_argument("--shards", type=int, default=1,
                        help="worker *processes* behind the fingerprint-hash "
                             "router; 1 serves in-process (default 1)")
    parser.add_argument("--store", default=None, metavar="SPEC",
                        help="persistent result store: a directory path, "
                             "'dir:PATH', or 'replicated:PATH?peers=...' for "
                             "the peer-fetching multi-node backend (created "
                             "if missing)")
    parser.add_argument("--auth-keys", default=None, metavar="SPEC",
                        help="API keys: a JSON file path or inline JSON "
                             "({'keys': [{'key': ..., 'name': ..., 'rate': "
                             "...}]}); unset serves anonymously (or from "
                             "$REPRO_API_KEYS when exported)")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="job-queue bound per shard before submissions "
                             "get 503 (default 256)")
    parser.add_argument("--target", default="D0", choices=["D0", "D1"],
                        help="default spin-qubit duration calibration for "
                             "submissions that name no target (default D0)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write structured JSONL trace events to PATH "
                             "(see python -m repro.trace); shards append to "
                             "the same file")
    args = parser.parse_args(argv)

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2

    # SIGTERM (docker stop, CI cleanup) gets the same draining shutdown
    # as Ctrl-C.
    try:
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except (OSError, ValueError):  # pragma: no cover - exotic platforms
        pass

    if args.trace:
        # Through the environment (not start_tracing directly) so shard
        # subprocesses inherit it and append to the same trace file.
        import os

        from repro.trace import start_tracing

        os.environ["REPRO_TRACE"] = args.trace
        start_tracing(args.trace)

    if args.shards > 1:
        from repro.server.sharding import ShardRouter

        router = ShardRouter(
            shards=args.shards,
            host=args.host,
            port=args.port,
            workers=args.workers,
            store=args.store,
            durations=args.target,
            max_pending=args.max_pending,
            auth=args.auth_keys,
        )
        router.start()
        print(f"repro.server listening on {router.url} "
              f"(shards={args.shards}, workers={args.workers}/shard"
              f"{', store=' + args.store if args.store else ''})",
              flush=True)
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("draining...", flush=True)
            router.shutdown(drain=True)
        return 0

    from repro.server.app import build_server

    server = build_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store=args.store,
        durations=args.target,
        max_pending=args.max_pending,
        auth=args.auth_keys,
    )
    print(f"repro.server listening on {server.url} "
          f"(workers={args.workers}"
          f"{', store=' + args.store if args.store else ''})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...", flush=True)
        server.stop(drain=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
