"""Target descriptions: native gates, their costs, connectivity and coherence."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx


@dataclass(frozen=True)
class GateProperties:
    """Calibration data of one native gate: duration (ns) and fidelity."""

    duration: float
    fidelity: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("gate duration must be non-negative")
        if not 0 < self.fidelity <= 1:
            raise ValueError("gate fidelity must lie in (0, 1]")

    @property
    def error(self) -> float:
        """The gate error ``1 - fidelity``."""
        return 1.0 - self.fidelity

    @property
    def log_fidelity(self) -> float:
        """Natural log of the fidelity (additive cost used by the SMT model)."""
        return math.log(self.fidelity)


def linear_coupling_map(num_qubits: int) -> List[Tuple[int, int]]:
    """Return the nearest-neighbour (chain) coupling map used by spin devices."""
    return [(i, i + 1) for i in range(num_qubits - 1)]


@dataclass
class Target:
    """A hardware modality: native gate set with costs, topology, coherence.

    Parameters
    ----------
    name:
        Human-readable target name.
    num_qubits:
        Number of physical qubits.
    single_qubit_gates:
        Properties of the (arbitrary SU(2)) single-qubit gate.
    two_qubit_gates:
        Mapping from native two-qubit gate name to its properties.
    coupling_map:
        Iterable of connected qubit pairs (assumed symmetric).  ``None``
        means all-to-all connectivity.
    t1, t2:
        Relaxation and dephasing times in nanoseconds.
    """

    name: str
    num_qubits: int
    single_qubit_gates: GateProperties
    two_qubit_gates: Dict[str, GateProperties]
    coupling_map: Optional[Sequence[Tuple[int, int]]] = None
    t1: float = 2.9e6
    t2: float = 2900.0

    #: Names treated as the (arbitrary SU(2)) single-qubit gate of a target.
    SINGLE_QUBIT_GATE_NAMES = frozenset(
        {
            "u1", "u2", "u3", "rz", "rx", "ry", "h", "x", "y", "z",
            "s", "sdg", "t", "tdg", "sx", "sxdg", "id", "su2",
        }
    )

    # ------------------------------------------------------------------
    def gate_properties(self, name: str, num_qubits: int = 1) -> GateProperties:
        """Look up the properties of a gate by name."""
        if name in self.two_qubit_gates:
            return self.two_qubit_gates[name]
        if num_qubits == 1 and name in self.SINGLE_QUBIT_GATE_NAMES:
            return self.single_qubit_gates
        raise KeyError(f"gate {name!r} is not native to target {self.name!r}")

    def supports(self, name: str) -> bool:
        """Return True when ``name`` is a native gate of this target."""
        return name in self.two_qubit_gates or name in self.SINGLE_QUBIT_GATE_NAMES

    def basis_two_qubit_gates(self) -> List[str]:
        """Names of the native two-qubit gates."""
        return list(self.two_qubit_gates)

    # ------------------------------------------------------------------
    def coupling_graph(self) -> nx.Graph:
        """Return the connectivity graph."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        if self.coupling_map is None:
            for i in range(self.num_qubits):
                for j in range(i + 1, self.num_qubits):
                    graph.add_edge(i, j)
        else:
            graph.add_edges_from(self.coupling_map)
        return graph

    def are_connected(self, qubit_a: int, qubit_b: int) -> bool:
        """Return True when a two-qubit gate can act directly on the pair."""
        if self.coupling_map is None:
            return True
        pairs = {frozenset(pair) for pair in self.coupling_map}
        return frozenset((qubit_a, qubit_b)) in pairs

    def with_num_qubits(self, num_qubits: int) -> "Target":
        """Return a copy of this target resized to ``num_qubits`` (chain topology)."""
        coupling = None if self.coupling_map is None else linear_coupling_map(num_qubits)
        return Target(
            name=self.name,
            num_qubits=num_qubits,
            single_qubit_gates=self.single_qubit_gates,
            two_qubit_gates=dict(self.two_qubit_gates),
            coupling_map=coupling,
            t1=self.t1,
            t2=self.t2,
        )

    def idle_survival_probability(self, idle_duration: float) -> float:
        """Probability that a qubit state survives ``idle_duration`` ns of idling.

        Follows Eq. (7) of the paper: ``exp(-d / T)`` with ``T`` the coherence
        time of the modality (T2 is used, being the limiting time scale).
        """
        if idle_duration <= 0:
            return 1.0
        return math.exp(-idle_duration / self.t2)
