"""Physics of two-qubit gates in semiconducting spin qubits (Section II).

The dynamics of a pair of exchange-coupled electron spins in a double
quantum dot are governed by the effective Hamiltonian

    H = Ez_avg (Sz1 + Sz2) + (dEz / 2) (Sz1 - Sz2) + J(eps) (S1 . S2 - 1/4)

in the {|uu>, |ud>, |du>, |dd>} basis, where ``J(eps)`` is the
detuning-dependent exchange coupling and ``dEz`` the Zeeman-energy
difference between the dots.  Depending on which of ``J`` and ``dEz``
dominates, the platform natively realizes swap-like gates (J >> dEz,
Fig. 1a) or CPHASE/CROT gates (dEz >> J, Fig. 1b).

This module reproduces the eigenenergy diagrams of Fig. 1 and derives
protocol-level gate durations (pi / J for the swap, pi / Rabi frequency for
CROT, phase-accumulation time for CPHASE) that qualitatively reproduce the
ordering of durations in Table I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Planck constant is set to 1: energies are given in (angular) GHz = 1/ns.


def exchange_coupling(
    detuning: float, tunnel_coupling: float, charging_energy: float
) -> float:
    """Exchange coupling J(eps) of a double dot in the Hubbard model.

    ``J = 2 t_c^2 (1/(U - eps) + 1/(U + eps))``, diverging as the detuning
    approaches the charging energy (the (1,1)-(0,2) charge transition).
    """
    if abs(detuning) >= charging_energy:
        raise ValueError("detuning must stay below the charging energy")
    return 2 * tunnel_coupling**2 * (
        1.0 / (charging_energy - detuning) + 1.0 / (charging_energy + detuning)
    )


@dataclass
class SpinPair:
    """A pair of exchange-coupled spin qubits.

    Parameters
    ----------
    zeeman_average:
        Average Zeeman splitting ``Ez`` (GHz).
    zeeman_difference:
        Zeeman-energy difference ``dEz`` between the two dots (GHz).
    tunnel_coupling:
        Interdot tunnel coupling ``t_c`` (GHz).
    charging_energy:
        On-site charging energy ``U`` (GHz).
    """

    zeeman_average: float = 20.0
    zeeman_difference: float = 0.1
    tunnel_coupling: float = 1.0
    charging_energy: float = 100.0

    # ------------------------------------------------------------------
    def exchange(self, detuning: float) -> float:
        """Exchange coupling at the given detuning."""
        return exchange_coupling(detuning, self.tunnel_coupling, self.charging_energy)

    def hamiltonian(self, detuning: float) -> np.ndarray:
        """Effective 4x4 Hamiltonian in the {uu, ud, du, dd} basis."""
        exchange = self.exchange(detuning)
        ez = self.zeeman_average
        dez = self.zeeman_difference
        hamiltonian = np.zeros((4, 4))
        hamiltonian[0, 0] = ez
        hamiltonian[3, 3] = -ez
        hamiltonian[1, 1] = dez / 2 - exchange / 2
        hamiltonian[2, 2] = -dez / 2 - exchange / 2
        hamiltonian[1, 2] = exchange / 2
        hamiltonian[2, 1] = exchange / 2
        return hamiltonian

    def eigenenergies(self, detuning: float) -> np.ndarray:
        """Sorted eigenenergies of the effective Hamiltonian."""
        return np.sort(np.linalg.eigvalsh(self.hamiltonian(detuning)))

    # ------------------------------------------------------------------
    def antiparallel_splitting(self, detuning: float) -> float:
        """Energy splitting of the antiparallel (|ud>, |du>) subspace."""
        energies = np.linalg.eigvalsh(self.hamiltonian(detuning)[1:3, 1:3])
        return float(energies[1] - energies[0])

    def swap_gate_duration(self, detuning: float) -> float:
        """Duration (ns) of a swap: half a precession period, ``pi / J``."""
        exchange = self.exchange(detuning)
        if exchange <= 0:
            raise ValueError("swap requires a positive exchange coupling")
        return math.pi / (2 * math.pi * exchange)

    def cphase_gate_duration(self, detuning: float) -> float:
        """Duration (ns) of a CPHASE: accumulate a pi conditional phase.

        In the dEz >> J regime the antiparallel states shift by roughly
        J/2 relative to the parallel ones, so a pi phase accumulates after
        ``pi / (2 pi * J/2)`` nanoseconds (an adiabatic ramp lengthens this
        in practice).
        """
        exchange = self.exchange(detuning)
        if exchange <= 0:
            raise ValueError("cphase requires a positive exchange coupling")
        return math.pi / (2 * math.pi * exchange / 2)

    def crot_gate_duration(self, rabi_frequency: float) -> float:
        """Duration (ns) of a CROT: a pi rotation at the given Rabi frequency (GHz)."""
        if rabi_frequency <= 0:
            raise ValueError("rabi frequency must be positive")
        return 0.5 / rabi_frequency

    def crot_addressability(self, detuning: float) -> float:
        """Frequency difference (GHz) between the two conditional transitions.

        Selective driving of one transition (the CROT mechanism) requires
        this difference -- approximately the exchange coupling -- to exceed
        the Rabi frequency.
        """
        energies = np.linalg.eigvalsh(self.hamiltonian(detuning))
        # Transition frequencies |dd> -> |ud'> and |du'> -> |uu>.
        lower = energies[1] - energies[0]
        upper = energies[3] - energies[2]
        return float(abs(upper - lower))


def swap_regime_pair() -> SpinPair:
    """Parameters in the J >> dEz regime (Fig. 1a, swap protocol)."""
    return SpinPair(
        zeeman_average=20.0,
        zeeman_difference=0.01,
        tunnel_coupling=2.0,
        charging_energy=100.0,
    )


def crot_regime_pair() -> SpinPair:
    """Parameters in the dEz >> J regime (Fig. 1b, CPHASE/CROT protocols)."""
    return SpinPair(
        zeeman_average=20.0,
        zeeman_difference=1.0,
        tunnel_coupling=0.3,
        charging_energy=100.0,
    )


def eigenenergies_vs_detuning(
    pair: SpinPair, detunings: Sequence[float]
) -> Dict[str, List[float]]:
    """Sweep the detuning and collect the four eigenenergies (Fig. 1 data).

    Returns a mapping with the detuning values and one energy branch per key
    ``E0`` ... ``E3`` (sorted ascending at each detuning).
    """
    branches: Dict[str, List[float]] = {"detuning": list(map(float, detunings))}
    for index in range(4):
        branches[f"E{index}"] = []
    for detuning in detunings:
        energies = pair.eigenenergies(detuning)
        for index in range(4):
            branches[f"E{index}"].append(float(energies[index]))
    return branches
