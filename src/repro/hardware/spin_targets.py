"""Concrete targets: the Table I spin-qubit calibrations and an IBM-like source.

Table I of the paper lists, for the semiconducting spin-qubit platform of
Petit et al. (2022), the fidelity of each native operation and two duration
calibrations: D0 (as measured on the device) and D1 (a projection for scaled
up devices with different materials / driving).
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.target import GateProperties, Target, linear_coupling_map

#: Gate fidelities from Table I (shared by the D0 and D1 calibrations).
TABLE1_FIDELITY: Dict[str, float] = {
    "su2": 0.999,
    "cz": 0.999,
    "cz_d": 0.99,
    "crot": 0.994,
    "swap_d": 0.99,
    "swap_c": 0.999,
}

#: Gate durations in nanoseconds, calibration D0 (Table I).
TABLE1_DURATION_D0: Dict[str, float] = {
    "su2": 30.0,
    "cz": 152.0,
    "cz_d": 67.0,
    "crot": 660.0,
    "swap_d": 19.0,
    "swap_c": 89.0,
}

#: Gate durations in nanoseconds, calibration D1 (Table I).
TABLE1_DURATION_D1: Dict[str, float] = {
    "su2": 30.0,
    "cz": 151.0,
    "cz_d": 7.0,
    "crot": 660.0,
    "swap_d": 9.0,
    "swap_c": 13.0,
}

#: Coherence times assumed in the evaluation (Section V.B): T2 = 2900 ns and
#: a T1 three orders of magnitude larger.
SPIN_T2_NS = 2900.0
SPIN_T1_NS = 2900.0 * 1000.0


def spin_qubit_target(
    num_qubits: int = 4,
    durations: str = "D0",
    include_diabatic_cz: bool = True,
) -> Target:
    """Build the semiconducting spin-qubit target of Table I.

    Parameters
    ----------
    num_qubits:
        Number of qubits (chain connectivity).
    durations:
        ``"D0"`` or ``"D1"``, selecting the Table I duration column.
    include_diabatic_cz:
        Whether the diabatic CZ realization is part of the native gate set
        (the paper's worked example excludes it, the evaluation includes it).
    """
    if durations not in ("D0", "D1"):
        raise ValueError("durations must be 'D0' or 'D1'")
    table = TABLE1_DURATION_D0 if durations == "D0" else TABLE1_DURATION_D1
    two_qubit = {}
    for name in ("cz", "cz_d", "crot", "swap_d", "swap_c"):
        if name == "cz_d" and not include_diabatic_cz:
            continue
        two_qubit[name] = GateProperties(table[name], TABLE1_FIDELITY[name])
    return Target(
        name=f"spin-{durations}",
        num_qubits=num_qubits,
        single_qubit_gates=GateProperties(table["su2"], TABLE1_FIDELITY["su2"]),
        two_qubit_gates=two_qubit,
        coupling_map=linear_coupling_map(num_qubits),
        t1=SPIN_T1_NS,
        t2=SPIN_T2_NS,
    )


def ibm_like_source_target(num_qubits: int = 4) -> Target:
    """An IBM-superconducting-like source modality (CNOT + SU(2) basis).

    Used as the source basis of the adaptation examples: the input circuits
    are expressed with CX/CZ/SWAP and arbitrary single-qubit gates.  The
    costs are representative published values for transmon devices and only
    matter for reporting the source-side costs, not for the adaptation.
    """
    return Target(
        name="ibm-like",
        num_qubits=num_qubits,
        single_qubit_gates=GateProperties(35.0, 0.9997),
        two_qubit_gates={
            "cx": GateProperties(300.0, 0.99),
            "cz": GateProperties(300.0, 0.99),
            "swap": GateProperties(900.0, 0.97),
        },
        coupling_map=linear_coupling_map(num_qubits),
        t1=100_000.0,
        t2=120_000.0,
    )
