"""Hardware-modality models: gate properties, targets and spin-qubit physics.

The central object is the :class:`Target`: the set of native gates of a
hardware modality together with their durations and fidelities, the qubit
connectivity and the coherence times.  Two calibrations of the
semiconducting spin-qubit device of the paper (Table I, columns D0 and D1)
and an IBM-like superconducting source target are provided.

:mod:`repro.hardware.spin_physics` models the two-spin effective
Hamiltonian underlying the platform and reproduces the eigenenergy diagrams
of Fig. 1 as well as protocol-level gate durations.
"""

from repro.hardware.target import GateProperties, Target, linear_coupling_map
from repro.hardware.spin_targets import (
    TABLE1_FIDELITY,
    TABLE1_DURATION_D0,
    TABLE1_DURATION_D1,
    ibm_like_source_target,
    spin_qubit_target,
)
from repro.hardware.spin_physics import (
    SpinPair,
    exchange_coupling,
    eigenenergies_vs_detuning,
    swap_regime_pair,
    crot_regime_pair,
)

__all__ = [
    "GateProperties",
    "Target",
    "linear_coupling_map",
    "TABLE1_FIDELITY",
    "TABLE1_DURATION_D0",
    "TABLE1_DURATION_D1",
    "ibm_like_source_target",
    "spin_qubit_target",
    "SpinPair",
    "exchange_coupling",
    "eigenenergies_vs_detuning",
    "swap_regime_pair",
    "crot_regime_pair",
]
