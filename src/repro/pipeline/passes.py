"""The named compilation passes and the shared pass context.

The paper's adaptation flow (Fig. 2: preprocess -> rule evaluation -> SMT
model -> extraction) is decomposed into eight reorderable passes:

``route`` -> ``preprocess`` -> ``evaluate_rules`` -> ``solve`` -> ``apply``
-> ``merge_1q`` -> ``verify`` -> ``analyze_cost``

Each pass reads and writes the mutable :class:`PassContext`; the
:class:`repro.pipeline.Pipeline` wraps every pass with wall-time and size
instrumentation.  Technique-specific behaviour (which rules to evaluate,
how to select substitutions) is injected through small strategy objects so
all eight techniques of the evaluation share one pass sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.core.model import AdaptationModel, ModelSolution
from repro.core.preprocessing import PreprocessedCircuit, preprocess
from repro.core.rules import (
    KakDecompositionRule,
    Substitution,
    SubstitutionRule,
    evaluate_rules,
    standard_rules,
)
from repro.hardware.target import Target
from repro.synthesis.single_qubit import merge_single_qubit_runs
from repro.transpiler.cost import CircuitCost, analyze_cost
from repro.transpiler.routing import route_circuit

#: Maximum circuit width for which the unitary-equivalence check runs.
VERIFY_MAX_QUBITS = 6


def route_if_needed(circuit: QuantumCircuit, target: Target) -> QuantumCircuit:
    """Route ``circuit`` onto the target topology when it does not comply."""
    needs_routing = any(
        len(instruction.qubits) == 2 and not target.are_connected(*instruction.qubits)
        for instruction in circuit.instructions
    )
    if not needs_routing and circuit.num_qubits <= target.num_qubits:
        return circuit
    return route_circuit(circuit, target)


@dataclass
class PassContext:
    """Mutable state threaded through the pipeline passes."""

    circuit: QuantumCircuit
    target: Target
    technique: str
    options: Mapping[str, object] = field(default_factory=dict)

    # Populated by the passes as the compilation progresses ----------------
    routed: Optional[QuantumCircuit] = None
    preprocessed: Optional[PreprocessedCircuit] = None
    rules: List[SubstitutionRule] = field(default_factory=list)
    substitutions: List[Substitution] = field(default_factory=list)
    chosen: List[Substitution] = field(default_factory=list)
    solution: Optional[ModelSolution] = None
    objective_value: Optional[float] = None
    solver_statistics: Dict[str, object] = field(default_factory=dict)
    adapted: Optional[QuantumCircuit] = None
    cost: Optional[CircuitCost] = None
    baseline_cost: Optional[CircuitCost] = None

    def option(self, name: str, default: object = None) -> object:
        """Read one compile option with a default."""
        return self.options.get(name, default)


class Pass:
    """Base class of a named, instrumented pipeline stage."""

    name = "pass"

    def run(self, context: PassContext) -> None:
        """Execute the stage, mutating ``context``."""
        raise NotImplementedError

    def counters(self, context: PassContext) -> Dict[str, float]:
        """Stage-specific size counters recorded after :meth:`run`."""
        return {}


# ---------------------------------------------------------------------------
# Substitution-selection strategies (the technique-specific part of `solve`)
# ---------------------------------------------------------------------------
class SmtSelection:
    """Globally optimal selection through the OMT model (SAT_F/R/P)."""

    def __init__(self, objective: str) -> None:
        self.objective = objective

    def __call__(self, context: PassContext) -> None:
        rounds = context.option("max_improvement_rounds")
        model = AdaptationModel(
            context.preprocessed,
            context.substitutions,
            objective=self.objective,
            max_improvement_rounds=rounds,
            incremental_theory=bool(context.option("incremental_theory", True)),
        )
        solution = model.solve()
        context.solution = solution
        context.chosen = list(solution.chosen_substitutions)
        context.objective_value = solution.objective_value
        context.solver_statistics = dict(solution.statistics)


class GreedySelection:
    """Local, per-template greedy selection (the template baselines)."""

    def __init__(self, objective: str) -> None:
        if objective not in ("fidelity", "idle"):
            raise ValueError("objective must be 'fidelity' or 'idle'")
        self.objective = objective

    def _is_improvement(self, substitution: Substitution) -> bool:
        if self.objective == "fidelity":
            return substitution.log_fidelity_delta > 1e-12
        return substitution.duration_delta < -1e-9

    def _local_score(self, substitution: Substitution) -> float:
        if self.objective == "fidelity":
            return substitution.log_fidelity_delta
        return -substitution.duration_delta

    def __call__(self, context: PassContext) -> None:
        accepted: List[Substitution] = []
        by_block: Dict[int, List[Substitution]] = {}
        for substitution in context.substitutions:
            by_block.setdefault(substitution.block_index, []).append(substitution)
        for block_index in sorted(by_block):
            taken: List[Substitution] = []
            candidates = sorted(by_block[block_index], key=self._local_score, reverse=True)
            for candidate in candidates:
                if not self._is_improvement(candidate):
                    continue
                if any(candidate.conflicts_with(existing) for existing in taken):
                    continue
                taken.append(candidate)
            accepted.extend(taken)
        context.chosen = accepted
        # Non-SMT strategies report their own counters, so
        # result.statistics (and BENCH_perf.json's solver_statistics) is
        # never silently empty for heuristic techniques.
        context.solver_statistics = {
            "selection": "greedy",
            "objective": self.objective,
            "candidates": len(context.substitutions),
            "accepted": len(accepted),
            "blocks": len(by_block),
        }


class SelectAll:
    """Accept every candidate substitution (per-block KAK resynthesis)."""

    def __call__(self, context: PassContext) -> None:
        context.chosen = list(context.substitutions)
        context.solver_statistics = {
            "selection": "all",
            "candidates": len(context.substitutions),
            "accepted": len(context.chosen),
            "reason": "every candidate is accepted; no solver runs",
        }


class SelectNone:
    """Accept nothing; the reference translation is used as-is (direct)."""

    def __call__(self, context: PassContext) -> None:
        context.chosen = []
        context.solver_statistics = {
            "selection": "none",
            "candidates": len(context.substitutions),
            "accepted": 0,
            "reason": "direct translation selects no substitutions",
        }


# ---------------------------------------------------------------------------
# Rule factories (the technique-specific part of `evaluate_rules`)
# ---------------------------------------------------------------------------
def sat_rules(context: PassContext) -> List[SubstitutionRule]:
    """Fig. 3 rule set, overridable through the ``rules`` option."""
    rules = context.option("rules")
    return list(rules) if rules is not None else standard_rules()


def template_rules(context: PassContext) -> List[SubstitutionRule]:
    """Fig. 3 rule set without KAK (template optimization uses identities)."""
    rules = context.option("rules")
    return list(rules) if rules is not None else standard_rules(include_kak=False)


class KakRules:
    """Only the KAK resynthesis rule with the requested CZ realization."""

    def __init__(self, cz_gate: str) -> None:
        self.cz_gate = cz_gate

    def __call__(self, context: PassContext) -> List[SubstitutionRule]:
        return [KakDecompositionRule(self.cz_gate)]


def no_rules(context: PassContext) -> List[SubstitutionRule]:
    """Direct translation evaluates no substitution rules."""
    return []


# ---------------------------------------------------------------------------
# The eight passes
# ---------------------------------------------------------------------------
class RoutePass(Pass):
    """Route the input circuit onto the target topology when necessary."""

    name = "route"

    def run(self, context: PassContext) -> None:
        context.routed = route_if_needed(context.circuit, context.target)

    def counters(self, context: PassContext) -> Dict[str, float]:
        return {
            "gates_in": float(len(context.circuit)),
            "gates_out": float(len(context.routed)),
        }


class PreprocessPass(Pass):
    """Block partition, reference translation and reference costs (Fig. 2a)."""

    name = "preprocess"

    def run(self, context: PassContext) -> None:
        context.preprocessed = preprocess(context.routed, context.target)

    def counters(self, context: PassContext) -> Dict[str, float]:
        return {"blocks": float(len(context.preprocessed.blocks))}


class EvaluateRulesPass(Pass):
    """Match the substitution rules, producing candidate substitutions."""

    name = "evaluate_rules"

    def __init__(self, rules_factory) -> None:
        self.rules_factory = rules_factory

    def run(self, context: PassContext) -> None:
        context.rules = list(self.rules_factory(context))
        context.substitutions = (
            list(evaluate_rules(context.preprocessed, context.rules))
            if context.rules
            else []
        )

    def counters(self, context: PassContext) -> Dict[str, float]:
        return {
            "rules": float(len(context.rules)),
            "candidates": float(len(context.substitutions)),
        }


class SolvePass(Pass):
    """Select substitutions via the injected strategy (SMT, greedy, ...)."""

    name = "solve"

    def __init__(self, selection) -> None:
        self.selection = selection

    def run(self, context: PassContext) -> None:
        self.selection(context)

    def counters(self, context: PassContext) -> Dict[str, float]:
        counters = {"chosen": float(len(context.chosen))}
        for key in ("improvement_rounds", "theory_checks", "sat_conflicts",
                    "candidates", "accepted"):
            value = context.solver_statistics.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                counters[key] = float(value)
        return counters


class ApplyPass(Pass):
    """Apply chosen substitutions; other gates take the reference translation."""

    name = "apply"

    def __init__(self, reference_when_empty: bool = False) -> None:
        self.reference_when_empty = reference_when_empty

    def run(self, context: PassContext) -> None:
        from repro.core.adapter import apply_substitutions

        if self.reference_when_empty and not context.chosen:
            context.adapted = context.preprocessed.reference_circuit()
        else:
            context.adapted = apply_substitutions(context.preprocessed, context.chosen)

    def counters(self, context: PassContext) -> Dict[str, float]:
        return {"gates_out": float(len(context.adapted))}


class MergeSingleQubitPass(Pass):
    """Merge adjacent single-qubit gates (no-op unless the option is set)."""

    name = "merge_1q"

    def run(self, context: PassContext) -> None:
        if context.option("merge_single_qubit_gates", False):
            context.adapted = merge_single_qubit_runs(context.adapted)

    def counters(self, context: PassContext) -> Dict[str, float]:
        return {
            "enabled": float(bool(context.option("merge_single_qubit_gates", False))),
            "gates_out": float(len(context.adapted)),
        }


class VerifyPass(Pass):
    """Check unitary equivalence against the routed input (small circuits)."""

    name = "verify"

    def run(self, context: PassContext) -> None:
        self._checked = False
        if not context.option("verify", False):
            return
        if context.routed.num_qubits > VERIFY_MAX_QUBITS:
            return
        self._checked = True
        if not allclose_up_to_global_phase(
            circuit_unitary(context.adapted), circuit_unitary(context.routed), atol=1e-6
        ):
            raise RuntimeError("adapted circuit is not equivalent to the input circuit")

    def counters(self, context: PassContext) -> Dict[str, float]:
        return {"checked": float(getattr(self, "_checked", False))}


class AnalyzeCostPass(Pass):
    """Cost the adapted circuit and the reference baseline on the target.

    ``baseline_is_self`` marks the technique that *is* the reference
    (direct translation): its baseline cost is its own cost, keeping the
    invariant that direct's fidelity/idle deltas are exactly zero even
    when single-qubit merging changed the circuit.
    """

    name = "analyze_cost"

    def __init__(self, baseline_is_self: bool = False) -> None:
        self.baseline_is_self = baseline_is_self

    def run(self, context: PassContext) -> None:
        context.cost = analyze_cost(context.adapted, context.target)
        if self.baseline_is_self:
            context.baseline_cost = context.cost
        else:
            context.baseline_cost = analyze_cost(
                context.preprocessed.reference_circuit(), context.target
            )

    def counters(self, context: PassContext) -> Dict[str, float]:
        return {
            "two_qubit_gates": float(context.cost.two_qubit_gate_count),
            "gates": float(context.cost.gate_count),
        }
